//! `sweeper` — command-line front end to the simulator.
//!
//! Compose a machine configuration, a workload, and a load pattern from
//! flags, without writing a driver program:
//!
//! ```text
//! sweeper run     --rate 20 --workload kvs --ddio 2 --sweeper
//! sweeper run     --rate 20 --profiler --perfetto trace.json
//! sweeper peak    --workload kvs --buffers 2048 --channels 3
//! sweeper sweep   --lo 5 --hi 60 --points 8 --workload l3fwd --jobs 8
//! sweeper trace   --rate 20 --events 65536 > memtrace.csv
//! sweeper figures
//! sweeper figure fig5 --jobs 8 --profile fast
//! sweeper info
//! ```
//!
//! All rates are in Mrps. Run `sweeper help` for the full flag list.

use std::process::ExitCode;

use sweeper::bench::{run_figure, FigContext};
use sweeper::core::experiment::{Experiment, ExperimentConfig, PeakCriteria};
use sweeper::core::fleet::Fleet;
use sweeper::core::loadsweep::{LoadPoint, LoadSweep, RateGrid};
use sweeper::core::profile::RunProfile;
use sweeper::core::report::{emit, text_report, CsvSink, ReportStyle};
use sweeper::core::scenario::{Scenario, ScenarioWorkload};
use sweeper::core::server::{
    FlightRecorderConfig, RunOptions, RunReport, SamplerConfig, SweeperMode,
};
use sweeper::core::telemetry::{
    check_document, document, outlier_document, perfetto_document, run_document,
    timeseries_document, OutputFormat, Record, RunManifest, Value, LOADSWEEP_SCHEMA,
};
use sweeper::sim::check::{CheckConfig, ViolationKind};
use sweeper::sim::hierarchy::{InjectionPolicy, MachineConfig};
use sweeper::workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use sweeper::workloads::l3fwd::{L3Forwarder, L3fwdConfig};
use sweeper::workloads::synthetic::{Synthetic, SyntheticConfig};

const USAGE: &str = "usage: sweeper <run|peak|sweep|trace|check|figures|figure <NAME>|info|help> [flags] — see `sweeper help`";

const HELP: &str = "\
sweeper — DDIO network-data-leak simulator (MICRO'22 'Sweeper' reproduction)

USAGE:
    sweeper <COMMAND> [FLAGS]

COMMANDS:
    run      simulate one operating point and print its report
    peak     search the peak sustainable throughput under the p99 SLO
    sweep    run a load-latency sweep and print CSV
    trace    simulate one operating point and dump the memory-event trace
             as CSV on stdout (report summary goes to stderr)
    figures  list the paper figures the registry can regenerate
    figure <NAME>  regenerate one figure (table1, fig1..fig10, ablations)
    check [NAME]   run every registered figure configuration (or just NAME)
             through the correctness harness and report pass/fail per
             invariant; nonzero exit on any violation
    info     print the simulated machine (Table I)
    help     show this text

FLAGS (all optional):
    --workload <kvs|l3fwd|synthetic>   workload model        [kvs]
    --policy <dma|ddio|ideal>          injection policy      [ddio]
    --ddio <1..12>                     DDIO LLC ways         [2]
    --sweeper                          enable Sweeper (relinquish on RX)
    --tx-sweep                         enable NIC-driven TX sweeping (§V-D)
    --buffers <N>                      RX ring entries/core  [1024]
    --endpoints <N>                    endpoints per core    [1]
    --packet <BYTES>                   packet size           [1088]
    --channels <3..8>                  DDR4 channels         [4]
    --cores <N>                        active cores          [24]
    --seed <N>                         RNG seed              [0x5eed]
    --requests <N>                     measured requests     [20000]
    --rate <MRPS>                      offered load (run)    [20]
    --lo/--hi <MRPS>, --points <N>     sweep grid            [2..60, 8]
    --jobs <N>                         worker threads for sweep/figure
                                       [SWEEPER_JOBS or all cores]
    --profile <full|fast|smoke>        figure run lengths
                                       [SWEEPER_PROFILE, or fast if
                                       SWEEPER_FAST is set]
    --format <text|json|csv>           output format for run/peak/sweep
                                       (figure: stdout table format) [text]
    --timeseries <PATH>                sample the run and write the time
                                       series (CSV when PATH ends in .csv,
                                       JSON otherwise)
    --sample-every <CYCLES>            sampling period; implies an enabled
                                       sampler                [1000000]
    --trace-spans                      record request-level causal spans
                                       (nic_dma, rx_ring_wait, cpu_read, ...)
    --perfetto <PATH>                  write retained spans as a Chrome-
                                       trace-event JSON (open on
                                       ui.perfetto.dev); implies --trace-spans
                                       (run/peak only)
    --profiler                         attribute simulated cycles and DRAM
                                       accesses per pipeline stage; the tree
                                       rides the run/peak report in every
                                       --format (the name avoids the
                                       run-length --profile flag)
    --flight-recorder                  snapshot the span window around
                                       requests beyond the online latency
                                       quantile into --outliers (run/peak
                                       only); implies span recording
    --flight-quantile <Q>              flight-recorder threshold quantile,
                                       0 < Q < 1               [0.999]
    --outliers <DIR>                   flight-recorder output directory
                                       [results/outliers]
    --events <N>                       span/trace ring capacity [65536]
    --validate                         enable the correctness harness
                                       (shadow-memory oracle + invariant
                                       walks) for run/peak/sweep; violations
                                       go to stderr and fail the exit code
    --walk-every <REQUESTS>            completed requests between invariant
                                       walks in checked mode      [1024]
    --zero-copy                        l3fwd transmits in place
    --scenario <FILE>                  load a key=value scenario file first;
                                       later flags override its values

JSON and CSV exports carry a run manifest (tool version, config summary,
workload, seed, wall time) so artifacts found on disk identify their run.
";

#[derive(Debug, Clone)]
struct Cli {
    command: String,
    /// Positional argument of `figure <NAME>`.
    figure: Option<String>,
    jobs: Option<usize>,
    profile: Option<RunProfile>,
    workload: String,
    policy: InjectionPolicy,
    ddio: u32,
    sweeper: bool,
    tx_sweep: bool,
    buffers: usize,
    endpoints: usize,
    packet: u64,
    channels: usize,
    cores: u16,
    seed: u64,
    requests: u64,
    rate: f64,
    lo: f64,
    hi: f64,
    points: usize,
    validate: bool,
    walk_every: Option<u64>,
    zero_copy: bool,
    scenario: Option<String>,
    format: OutputFormat,
    timeseries: Option<String>,
    sample_every: Option<u64>,
    trace_spans: bool,
    perfetto: Option<String>,
    profiler: bool,
    flight_recorder: bool,
    flight_quantile: Option<f64>,
    outliers: String,
    events: usize,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            command: "help".into(),
            figure: None,
            jobs: None,
            profile: None,
            workload: "kvs".into(),
            policy: InjectionPolicy::Ddio,
            ddio: 2,
            sweeper: false,
            tx_sweep: false,
            buffers: 1024,
            endpoints: 1,
            packet: 1024 + HEADER_BYTES,
            channels: 4,
            cores: 24,
            seed: 0x5eed,
            requests: 20_000,
            rate: 20.0,
            lo: 2.0,
            hi: 60.0,
            points: 8,
            validate: false,
            walk_every: None,
            zero_copy: false,
            scenario: None,
            format: OutputFormat::Text,
            timeseries: None,
            sample_every: None,
            trace_spans: false,
            perfetto: None,
            profiler: false,
            flight_recorder: false,
            flight_quantile: None,
            outliers: "results/outliers".into(),
            events: 65_536,
        }
    }
}

fn apply_scenario(cli: &mut Cli, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let s = Scenario::parse(&text).map_err(|e| e.to_string())?;
    cli.workload = match s.workload {
        ScenarioWorkload::Kvs => "kvs".into(),
        ScenarioWorkload::L3fwd => "l3fwd".into(),
        ScenarioWorkload::Synthetic => "synthetic".into(),
    };
    cli.policy = s.policy;
    cli.ddio = s.ddio_ways;
    cli.sweeper = s.sweeper.is_enabled();
    cli.tx_sweep = s.tx_sweep;
    cli.buffers = s.buffers;
    cli.endpoints = s.endpoints;
    cli.packet = s.packet;
    cli.channels = s.channels;
    cli.cores = s.cores;
    cli.seed = s.seed;
    cli.rate = s.rate_mrps;
    Ok(())
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    // Scenario files apply first so explicit flags override them.
    let mut pos = args.iter().position(|a| a == "--scenario");
    if let Some(i) = pos.take() {
        let path = args
            .get(i + 1)
            .ok_or_else(|| "flag --scenario needs a value".to_string())?;
        apply_scenario(&mut cli, path)?;
    }
    let mut it = args.iter().peekable();
    cli.command = it.next().cloned().unwrap_or_else(|| "help".into());
    if cli.command == "figure" {
        cli.figure = Some(
            it.next()
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .ok_or_else(|| "command `figure` needs a name (see `sweeper figures`)".to_string())?,
        );
    }
    // `check` takes an *optional* positional figure name; peek so a flag in
    // that position is left for the flag loop.
    if cli.command == "check" && it.peek().is_some_and(|a| !a.starts_with("--")) {
        cli.figure = it.next().cloned();
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--workload" => cli.workload = value(flag)?,
            "--policy" => {
                cli.policy = match value(flag)?.as_str() {
                    "dma" => InjectionPolicy::Dma,
                    "ddio" => InjectionPolicy::Ddio,
                    "ideal" => InjectionPolicy::Ideal,
                    other => return Err(format!("unknown policy '{other}'")),
                }
            }
            "--ddio" => cli.ddio = num(&value(flag)?)?,
            "--sweeper" => cli.sweeper = true,
            "--tx-sweep" => cli.tx_sweep = true,
            "--buffers" => cli.buffers = num(&value(flag)?)?,
            "--endpoints" => cli.endpoints = num(&value(flag)?)?,
            "--packet" => cli.packet = num(&value(flag)?)?,
            "--channels" => cli.channels = num(&value(flag)?)?,
            "--cores" => cli.cores = num(&value(flag)?)?,
            "--seed" => cli.seed = num(&value(flag)?)?,
            "--requests" => cli.requests = num(&value(flag)?)?,
            "--rate" => cli.rate = fnum(&value(flag)?)?,
            "--lo" => cli.lo = fnum(&value(flag)?)?,
            "--hi" => cli.hi = fnum(&value(flag)?)?,
            "--points" => cli.points = num(&value(flag)?)?,
            "--jobs" => cli.jobs = Some(num(&value(flag)?)?),
            "--profile" => cli.profile = Some(value(flag)?.parse()?),
            "--validate" => cli.validate = true,
            "--walk-every" => cli.walk_every = Some(num(&value(flag)?)?),
            "--zero-copy" => cli.zero_copy = true,
            "--scenario" => cli.scenario = Some(value(flag)?),
            "--format" => cli.format = value(flag)?.parse()?,
            "--timeseries" => cli.timeseries = Some(value(flag)?),
            "--sample-every" => cli.sample_every = Some(num(&value(flag)?)?),
            "--trace-spans" => cli.trace_spans = true,
            "--perfetto" => cli.perfetto = Some(value(flag)?),
            "--profiler" => cli.profiler = true,
            "--flight-recorder" => cli.flight_recorder = true,
            "--flight-quantile" => cli.flight_quantile = Some(fnum(&value(flag)?)?),
            "--outliers" => cli.outliers = value(flag)?,
            "--events" => cli.events = num(&value(flag)?)?,
            other => return Err(format!("unknown flag '{other}' (see `sweeper help`)")),
        }
    }
    if let Some(q) = cli.flight_quantile {
        if !(q > 0.0 && q < 1.0) {
            return Err(format!("--flight-quantile must be in (0, 1), got {q}"));
        }
        if !cli.flight_recorder {
            return Err("--flight-quantile needs --flight-recorder".to_string());
        }
    }
    if cli.events == 0 {
        return Err("--events must be positive".to_string());
    }
    if cli.walk_every.is_some() && !cli.validate && cli.command != "check" {
        return Err("--walk-every needs --validate (or the check command)".to_string());
    }
    Ok(cli)
}

/// The [`CheckConfig`] this invocation's `--validate`/`check` flags select.
fn check_config(cli: &Cli) -> CheckConfig {
    let mut check = CheckConfig::default();
    if let Some(every) = cli.walk_every {
        check.walk_every_requests = every;
    }
    check
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number '{s}'"))
}

fn fnum(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("invalid number '{s}'"))
}

fn build_experiment(cli: &Cli) -> Result<Experiment, String> {
    let ring_wrap = (cli.cores as u64 * cli.endpoints as u64 * cli.buffers as u64 * 12) / 10;
    let mut cfg = ExperimentConfig::paper_default()
        .injection(cli.policy)
        .ddio_ways(cli.ddio)
        .sweeper(if cli.sweeper {
            SweeperMode::Enabled
        } else {
            SweeperMode::Disabled
        })
        .tx_sweep(cli.tx_sweep)
        .rx_buffers_per_core(cli.buffers)
        .endpoints_per_core(cli.endpoints)
        .packet_bytes(cli.packet)
        .channels(cli.channels)
        .active_cores(cli.cores)
        .seed(cli.seed)
        .run_options(RunOptions {
            warmup_requests: ring_wrap.max(10_000),
            measure_requests: cli.requests,
            max_cycles: 600_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    if cli.timeseries.is_some() || cli.sample_every.is_some() {
        let every = cli.sample_every.unwrap_or(1_000_000);
        cfg = cfg.sampling(SamplerConfig::every(every));
    }
    if cli.trace_spans || cli.perfetto.is_some() {
        cfg = cfg.spans(cli.events);
    }
    if cli.profiler {
        cfg = cfg.profiler();
    }
    if cli.flight_recorder {
        cfg = cfg.flight(FlightRecorderConfig {
            quantile: cli.flight_quantile.unwrap_or(FlightRecorderConfig::default().quantile),
            ..FlightRecorderConfig::default()
        });
    }
    if cli.validate {
        cfg = cfg.check(check_config(cli));
    }
    if cli.command == "trace" {
        cfg = cfg.memtrace(cli.events);
    }
    let exp = match cli.workload.as_str() {
        "kvs" => {
            let item = cli.packet.saturating_sub(HEADER_BYTES).max(64);
            let kvs = KvsConfig::paper_default().with_item_bytes(item);
            Experiment::new(cfg, move || MicaKvs::new(kvs))
        }
        "l3fwd" => {
            let mut l3 = L3fwdConfig::l2_resident();
            if cli.zero_copy {
                l3 = l3.with_zero_copy();
            }
            Experiment::new(cfg, move || L3Forwarder::new(l3))
        }
        "synthetic" => Experiment::new(cfg, || Synthetic::new(SyntheticConfig::balanced())),
        other => return Err(format!("unknown workload '{other}'")),
    };
    Ok(exp)
}

fn print_report(report: &RunReport) {
    print!("{}", text_report(report, ReportStyle::default()));
}

/// Prints the `--validate` verdict for one report to stderr; `false` means
/// the harness saw violations (the caller fails the exit code).
fn check_passed(label: &str, report: &RunReport) -> bool {
    let Some(check) = &report.check else {
        return true;
    };
    if check.passed() {
        eprintln!(
            "validate [{label}]: pass ({} events mirrored, {} walks)",
            check.events, check.walks
        );
        return true;
    }
    eprintln!(
        "validate [{label}]: FAIL — {} violation(s)",
        check.total_violations()
    );
    for (kind, n) in &check.violations {
        if *n > 0 {
            eprintln!("  {n} x {kind}");
        }
    }
    for detail in &check.details {
        eprintln!("  {detail}");
    }
    false
}

/// The manifest attached to this invocation's exports.
fn cli_manifest(cli: &Cli, exp: &Experiment) -> RunManifest {
    let mut m = RunManifest::new()
        .config(exp.config().summary())
        .workload(cli.workload.as_str())
        .seed(cli.seed);
    if let Some(profile) = cli.profile {
        m = m.profile(profile.to_string());
    }
    m
}

/// Prints one run report in the requested `--format`.
fn emit_report(report: &RunReport, format: OutputFormat, manifest: &RunManifest) {
    match format {
        OutputFormat::Text => print_report(report),
        OutputFormat::Json => {
            let doc = run_document(report, ReportStyle::default(), manifest);
            println!("{}", doc.to_json_pretty());
        }
        OutputFormat::Csv => {
            let mut sink = CsvSink::new().with_comments(&manifest.to_comments());
            emit(report, ReportStyle::default(), &mut sink);
            print!("{}", sink.finish());
        }
    }
}

/// Writes the sampled time series to `--timeseries <PATH>` (CSV when the
/// path ends in `.csv`, a JSON document otherwise).
fn write_timeseries(cli: &Cli, report: &RunReport, manifest: &RunManifest) -> Result<(), String> {
    let Some(path) = &cli.timeseries else {
        return Ok(());
    };
    let ts = report
        .timeseries
        .as_ref()
        .ok_or("run produced no time series (sampler was not enabled)")?;
    let out = if path.ends_with(".csv") {
        ts.to_csv_with_comments(&manifest.to_comments())
    } else {
        format!("{}\n", timeseries_document(ts, manifest).to_json_pretty())
    };
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("wrote time series ({} samples) to {path}", ts.len());
    Ok(())
}

/// Writes the `--perfetto` span export and the flight recorder's outlier
/// snapshots (`--outliers <DIR>/<n>.json`), when the flags enabled them.
fn write_observability(cli: &Cli, report: &RunReport, manifest: &RunManifest) -> Result<(), String> {
    if let Some(path) = &cli.perfetto {
        let spans = report
            .spans
            .as_ref()
            .ok_or("run produced no spans (span recording was not enabled)")?;
        let doc = perfetto_document(spans, manifest);
        std::fs::write(path, format!("{}\n", doc.to_json_pretty()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "wrote perfetto trace ({} spans retained of {} recorded) to {path}",
            spans.len(),
            spans.recorded()
        );
    }
    if let Some(outliers) = &report.outliers {
        let dir = std::path::Path::new(&cli.outliers);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for snapshot in outliers {
            let path = dir.join(format!("{}.json", snapshot.seq));
            let doc = outlier_document(snapshot, manifest);
            std::fs::write(&path, format!("{}\n", doc.to_json_pretty()))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        eprintln!(
            "flight recorder captured {} outlier snapshot(s) in {}",
            outliers.len(),
            dir.display()
        );
    }
    Ok(())
}

/// Resolves the fleet/profile context: environment first, flags override.
fn fig_context(cli: &Cli) -> FigContext {
    let mut ctx = FigContext::from_env();
    if let Some(jobs) = cli.jobs {
        ctx.fleet = Fleet::new(jobs);
    }
    if let Some(profile) = cli.profile {
        ctx.profile = profile;
    }
    ctx.format = cli.format;
    ctx
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            // Argument errors are usage errors: one line, a pointer at the
            // help text, and exit status 2 (distinct from runtime failures).
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match cli.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        "info" => {
            let m = MachineConfig::paper_default();
            println!("cores      : {} @ 3.2 GHz", m.cores);
            println!(
                "L1d        : {} KB {}-way, {} cycles",
                m.l1.size_bytes / 1024,
                m.l1.ways,
                m.l1.latency
            );
            println!(
                "L2         : {:.2} MB {}-way, {} cycles",
                m.l2.size_bytes as f64 / 1048576.0,
                m.l2.ways,
                m.l2.latency
            );
            println!(
                "LLC        : {} MB {}-way, {} cycles (+{} NoC), DDIO {} ways",
                m.llc.size_bytes / 1048576,
                m.llc.ways,
                m.llc.latency,
                m.noc_latency,
                m.ddio_ways
            );
            println!(
                "memory     : DDR4-3200, {} channels x {} ranks x {} banks ({:.1} GB/s peak)",
                m.dram.channels,
                m.dram.ranks_per_channel,
                m.dram.banks_per_rank,
                m.dram.peak_bandwidth_gbps()
            );
            ExitCode::SUCCESS
        }
        "run" => match build_experiment(&cli) {
            Ok(exp) => {
                let t = std::time::Instant::now();
                let report = exp.run_at_rate(cli.rate * 1e6);
                let manifest = cli_manifest(&cli, &exp).wall_secs(t.elapsed().as_secs_f64());
                if let Err(e) = write_timeseries(&cli, &report, &manifest)
                    .and_then(|()| write_observability(&cli, &report, &manifest))
                {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                if cli.format == OutputFormat::Text {
                    println!("== {} @ {:.1} Mrps offered ==", cli.workload, cli.rate);
                }
                emit_report(&report, cli.format, &manifest);
                if !check_passed("run", &report) {
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "peak" => match build_experiment(&cli) {
            Ok(exp) => {
                let t = std::time::Instant::now();
                let peak = exp.find_peak(PeakCriteria::default());
                let manifest = cli_manifest(&cli, &exp).wall_secs(t.elapsed().as_secs_f64());
                if let Err(e) = write_timeseries(&cli, &peak.report, &manifest)
                    .and_then(|()| write_observability(&cli, &peak.report, &manifest))
                {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                match cli.format {
                    OutputFormat::Text => {
                        println!(
                            "peak: {:.2} Mrps (SLO = {} cycles = 100 x {:.0}-cycle unloaded service)",
                            peak.throughput_mrps(),
                            peak.slo_cycles,
                            peak.unloaded_service_cycles
                        );
                        print_report(&peak.report);
                    }
                    OutputFormat::Json => {
                        let doc = run_document(&peak.report, ReportStyle::default(), &manifest)
                            .with(
                                "peak",
                                Record::new()
                                    .with("rate_mrps", peak.throughput_mrps())
                                    .with("slo_cycles", peak.slo_cycles)
                                    .with(
                                        "unloaded_service_cycles",
                                        peak.unloaded_service_cycles,
                                    ),
                            );
                        println!("{}", doc.to_json_pretty());
                    }
                    OutputFormat::Csv => {
                        let mut comments = manifest.to_comments();
                        comments.push((
                            "peak_mrps".to_string(),
                            format!("{:.2}", peak.throughput_mrps()),
                        ));
                        let mut sink = CsvSink::new().with_comments(&comments);
                        emit(&peak.report, ReportStyle::default(), &mut sink);
                        print!("{}", sink.finish());
                    }
                }
                if !check_passed("peak", &peak.report) {
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "sweep" => match build_experiment(&cli) {
            Ok(exp) => {
                // A sweep retains per-point summaries, not reports, so
                // there is nothing to export span windows from.
                if cli.perfetto.is_some() || cli.flight_recorder {
                    eprintln!(
                        "error: --perfetto/--flight-recorder need a single-run \
                         command (run, peak); a sweep does not retain per-point reports"
                    );
                    return ExitCode::FAILURE;
                }
                let grid = RateGrid::geometric(cli.lo * 1e6, cli.hi * 1e6, cli.points);
                let fleet = fig_context(&cli).fleet;
                let t = std::time::Instant::now();
                // The parallel path runs the whole grid (no saturation
                // early-exit); keep the sequential path's behavior when a
                // single worker is requested. A validated sweep retains the
                // full per-point reports so each check section can be
                // inspected after the CSV goes out.
                let mut checked_reports: Vec<RunReport> = Vec::new();
                let sweep = if cli.validate {
                    let tasks: Vec<_> = grid
                        .rates()
                        .iter()
                        .map(|&rate| {
                            let exp = &exp;
                            move || exp.run_at_rate(rate)
                        })
                        .collect();
                    checked_reports = fleet.run_tasks(tasks);
                    LoadSweep::from_points(
                        grid.rates()
                            .iter()
                            .zip(&checked_reports)
                            .map(|(&rate, report)| LoadPoint::from_report(rate, report))
                            .collect(),
                    )
                } else if fleet.jobs() > 1 {
                    LoadSweep::run_parallel(&exp, &grid, &fleet)
                } else {
                    LoadSweep::run(&exp, &grid, true)
                };
                let manifest = cli_manifest(&cli, &exp).wall_secs(t.elapsed().as_secs_f64());
                match cli.format {
                    // `text` keeps the historical bare-CSV stdout contract.
                    OutputFormat::Text => print!("{}", sweep.to_csv()),
                    OutputFormat::Csv => {
                        print!("{}", sweep.to_csv_with_comments(&manifest.to_comments()));
                    }
                    OutputFormat::Json => {
                        let doc =
                            document(LOADSWEEP_SCHEMA, &manifest, "sweep", sweep.to_record());
                        println!("{}", doc.to_json_pretty());
                    }
                }
                if let Some(knee) = sweep.knee() {
                    eprintln!("knee at ~{:.1} Mrps offered", knee.offered_rate / 1e6);
                }
                let mut all_pass = true;
                for (&rate, report) in grid.rates().iter().zip(&checked_reports) {
                    let label = format!("{:.1} Mrps", rate / 1e6);
                    all_pass &= check_passed(&label, report);
                }
                if !all_pass {
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "trace" => match build_experiment(&cli) {
            Ok(exp) => {
                let t = std::time::Instant::now();
                let report = exp.run_at_rate(cli.rate * 1e6);
                let manifest = cli_manifest(&cli, &exp).wall_secs(t.elapsed().as_secs_f64());
                if let Err(e) = write_timeseries(&cli, &report, &manifest)
                    .and_then(|()| write_observability(&cli, &report, &manifest))
                {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                let trace = report
                    .memtrace
                    .as_ref()
                    .expect("the trace command always enables memory tracing");
                // The CSV goes to stdout so it pipes cleanly; the run
                // summary goes to stderr.
                print!("{}", trace.to_csv_with_comments(&manifest.to_comments()));
                eprintln!(
                    "traced {} memory events ({} retained) over {} requests at {:.1} Mrps",
                    trace.recorded(),
                    trace.events().len(),
                    report.completed,
                    report.throughput_mrps()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "figures" => {
            println!("{:<10} Table I — simulated machine parameters", "table1");
            for figure in sweeper::bench::figs::registry() {
                println!("{:<10} {}", figure.name(), figure.description());
            }
            ExitCode::SUCCESS
        }
        "figure" => {
            let name = cli.figure.clone().expect("parser enforces the name");
            match run_figure(&name, &fig_context(&cli)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "check" => {
            let ctx = fig_context(&cli);
            let figures: Vec<&'static dyn sweeper::bench::figs::Figure> =
                match cli.figure.as_deref() {
                    Some(name) => match sweeper::bench::figs::find(name) {
                        Some(figure) => vec![figure],
                        None => {
                            eprintln!("error: unknown figure '{name}' (see `sweeper figures`)");
                            return ExitCode::from(2);
                        }
                    },
                    None => sweeper::bench::figs::registry().to_vec(),
                };
            let check = check_config(&cli);
            eprintln!(
                "checked mode: profile {}, walk every {} requests",
                ctx.profile, check.walk_every_requests
            );
            let mut totals = [0u64; ViolationKind::ALL.len()];
            let mut figure_records: Vec<Value> = Vec::new();
            for figure in figures {
                let points = figure.points(ctx.profile);
                let n = points.len();
                let outcomes = ctx.fleet.run_validation(points, check);
                let mut counts = [0u64; ViolationKind::ALL.len()];
                let (mut events, mut walks) = (0u64, 0u64);
                let mut failed: Vec<String> = Vec::new();
                let mut details: Vec<String> = Vec::new();
                for outcome in &outcomes {
                    let Some(c) = &outcome.report.check else {
                        continue;
                    };
                    events += c.events;
                    walks += c.walks;
                    if !c.passed() {
                        failed.push(outcome.label.clone());
                    }
                    for (kind, count) in &c.violations {
                        counts[kind.index()] += count;
                    }
                    for detail in &c.details {
                        if details.len() < 8 {
                            details.push(format!("{}: {detail}", outcome.label));
                        }
                    }
                }
                let total: u64 = counts.iter().sum();
                for (sum, &count) in totals.iter_mut().zip(&counts) {
                    *sum += count;
                }
                if total == 0 {
                    println!(
                        "{:<10} pass  ({n} points, {events} events mirrored, {walks} walks)",
                        figure.name()
                    );
                } else {
                    println!(
                        "{:<10} FAIL  ({total} violations across {} of {n} points)",
                        figure.name(),
                        failed.len()
                    );
                    for detail in &details {
                        println!("    {detail}");
                    }
                }
                let mut violations = Record::new();
                for (kind, &count) in ViolationKind::ALL.iter().zip(&counts) {
                    if count > 0 {
                        violations.push(kind.name(), count);
                    }
                }
                figure_records.push(Value::from(
                    Record::new()
                        .with("figure", figure.name())
                        .with("points", n as u64)
                        .with("events", events)
                        .with("walks", walks)
                        .with("violations_total", total)
                        .with("violations", violations)
                        .with(
                            "failed_points",
                            failed
                                .iter()
                                .map(|label| Value::from(label.as_str()))
                                .collect::<Vec<_>>(),
                        ),
                ));
            }
            println!("per-invariant summary:");
            for (kind, &total) in ViolationKind::ALL.iter().zip(&totals) {
                if total == 0 {
                    println!("  {:<30} pass", kind.name());
                } else {
                    println!("  {:<30} FAIL ({total})", kind.name());
                }
            }
            if cli.format == OutputFormat::Json {
                let manifest = RunManifest::new()
                    .profile(ctx.profile.to_string())
                    .seed(cli.seed);
                let doc = check_document(figure_records, &manifest);
                println!("{}", doc.to_json_pretty());
            }
            if totals.iter().all(|&n| n == 0) {
                println!("check: all invariants pass");
                ExitCode::SUCCESS
            } else {
                eprintln!("check: FAIL");
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("error: unknown command '{other}'");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
