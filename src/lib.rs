//! # Sweeper
//!
//! A full reproduction of *"Patching up Network Data Leaks with Sweeper"*
//! (Vemmou, Cho, Daglis — MICRO 2022), as a Rust workspace.
//!
//! Sweeper is a hardware extension and API that lets networked applications
//! mark *consumed* RX buffers so the cache hierarchy can invalidate their
//! dirty cache blocks **without writing them back to memory**, eliminating
//! the dominant source of "network data leaks" under DDIO and boosting peak
//! sustainable network throughput by up to ~2.6×.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — the microarchitectural substrate (caches, DDIO, coherence,
//!   DDR4 model, statistics),
//! * [`nic`] — the Scale-Out-NUMA-style NIC model (rings, queue pairs,
//!   Poisson traffic generation, injection policies),
//! * [`core`] — the Sweeper mechanism itself (`relinquish`, `clsweep`,
//!   NIC-driven TX sweeping), the server system model, and the experiment
//!   harness,
//! * [`workloads`] — the paper's applications (MICA-style KVS, L3 forwarder
//!   NF, X-Mem) and traffic distributions,
//! * [`bench`] — the figure registry and the parallel harness that
//!   regenerates every table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use sweeper::core::experiment::{Experiment, ExperimentConfig};
//! use sweeper::core::server::SweeperMode;
//! use sweeper::sim::hierarchy::InjectionPolicy;
//! use sweeper::workloads::kvs::{KvsConfig, MicaKvs};
//!
//! let cfg = ExperimentConfig::tiny_for_tests()
//!     .injection(InjectionPolicy::Ddio)
//!     .ddio_ways(2)
//!     .sweeper(SweeperMode::Enabled)
//!     .rx_buffers_per_core(64)
//!     .seed(7);
//! let exp = Experiment::new(cfg, || MicaKvs::new(KvsConfig::small_for_tests()));
//! let report = exp.run_at_rate(1.0e6);
//! assert!(report.completed > 0);
//! // Sweeper suppressed the consumed buffers' writebacks.
//! assert!(report.mem.sweep_saved_writebacks > 0);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper.

pub use sweeper_bench as bench;
pub use sweeper_core as core;
pub use sweeper_nic as nic;
pub use sweeper_sim as sim;
pub use sweeper_workloads as workloads;
