//! Determinism guard: golden snapshots of figure-1-scenario statistics.
//!
//! The hot-path work in `sweeper-sim` (open-addressed directory, `SharerSet`
//! bitmasks, incremental occupancy counters, single-pass insert) is pure
//! optimization — simulated behaviour must not move by even one counter.
//! These tests pin the full statistics fingerprint of representative runs to
//! committed golden files; any divergence (ordering, victim choice, sharer
//! iteration order …) shows up as a byte diff.
//!
//! Regenerate intentionally with `SWEEPER_BLESS=1 cargo test --test
//! golden_fig1` and inspect the diff before committing.

use std::fmt::Write as _;
use std::path::PathBuf;

use sweeper::bench::{kvs_experiment, SystemPoint};
use sweeper::core::profile::RunProfile;
use sweeper::core::report::{text_report, ReportStyle};
use sweeper::core::server::RunReport;

/// Every counter and distribution the simulator produces, serialized to
/// stable text. Broader than `text_report` alone: raw `MemStats` fields and
/// histogram internals are included so a drift that cancels out in derived
/// metrics still fails.
fn fingerprint(report: &RunReport) -> String {
    let mut out = text_report(report, ReportStyle::default());
    let m = &report.mem;
    let _ = writeln!(out, "offered             : {}", report.offered);
    let _ = writeln!(out, "dropped             : {}", report.dropped);
    let _ = writeln!(out, "elapsed_cycles      : {}", report.elapsed_cycles);
    let _ = writeln!(out, "llc hits/misses     : {}/{}", m.llc_hits, m.llc_misses);
    let _ = writeln!(out, "ddio hits/allocs    : {}/{}", m.ddio_hits, m.ddio_allocs);
    let _ = writeln!(
        out,
        "swept/saved_wb      : {}/{}",
        m.swept_blocks, m.sweep_saved_writebacks
    );
    let _ = writeln!(
        out,
        "invalidations/c2c   : {}/{}",
        m.invalidations, m.c2c_transfers
    );
    let _ = writeln!(
        out,
        "dirty dropped nic/? : {}/{}",
        m.dirty_dropped_by_nic_overwrite, m.dirty_dropped_unexpectedly
    );
    let _ = writeln!(
        out,
        "nic evict nic/cpu   : {}/{}",
        m.nic_lines_evicted_by_nic, m.nic_lines_evicted_by_cpu
    );
    let _ = writeln!(out, "block accesses      : {}", m.block_accesses);
    let _ = writeln!(out, "reads by core       : {:?}", m.dram_reads_by_core);
    let _ = writeln!(out, "channel transfers   : {:?}", report.channel_transfers);
    for (name, h) in [
        ("request", &report.request_latency),
        ("service", &report.service_time),
        ("dram", &report.dram_latency),
    ] {
        let _ = writeln!(
            out,
            "hist {name:<7}        : n={} mean={:.6} max={} p50={} p90={} p99={} p999={}",
            h.count(),
            h.mean(),
            h.max(),
            h.percentile(0.5),
            h.percentile(0.9),
            h.percentile(0.99),
            h.percentile(0.999),
        );
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("SWEEPER_BLESS").is_ok_and(|v| !v.is_empty()) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); bless with SWEEPER_BLESS=1", name));
    assert_eq!(
        expected, actual,
        "simulation outputs diverged from golden '{name}' — the hot-path \
         optimizations must be behaviour-preserving (bless only if the change \
         is intentional)"
    );
}

/// The acceptance-criterion scenario: fig1's DDIO-2-way KVS point at fast
/// profile, run at a fixed open-loop rate below its peak.
#[test]
fn fig1_fast_ddio2_stats_match_golden() {
    let report = kvs_experiment(RunProfile::Fast, SystemPoint::ddio(2), 1024, 1024, 4)
        .run_at_rate(15.0e6);
    check_golden("fig1_fast_ddio2", &fingerprint(&report));
}

/// Sweeper-enabled variant: exercises `sweep_block` → `drop_block` → bulk
/// invalidation, the paths most reshaped by the directory rewrite.
#[test]
fn fig1_smoke_ddio2_sweeper_stats_match_golden() {
    let report = kvs_experiment(RunProfile::Smoke, SystemPoint::ddio_sweeper(2), 1024, 512, 4)
        .run_at_rate(15.0e6);
    check_golden("fig1_smoke_ddio2_sweeper", &fingerprint(&report));
}

/// DMA variant: covers the NIC-write invalidate path that bypasses the LLC.
#[test]
fn fig1_smoke_dma_stats_match_golden() {
    let report =
        kvs_experiment(RunProfile::Smoke, SystemPoint::dma(), 1024, 512, 4).run_at_rate(15.0e6);
    check_golden("fig1_smoke_dma", &fingerprint(&report));
}
