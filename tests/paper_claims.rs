//! Integration tests asserting the paper's headline claims end-to-end, at a
//! reduced but paper-shaped scale (full 24-core machine, shortened runs).
//!
//! These are the "does the reproduction reproduce" tests: each corresponds
//! to a claim in the paper's text and exercises the full stack — traffic
//! generation, NIC injection, cache hierarchy, DRAM, Sweeper, and the
//! measurement pipeline.

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::profile::RunProfile;
use sweeper::core::server::{RunOptions, RunReport, SweeperMode};
use sweeper::sim::hierarchy::InjectionPolicy;
use sweeper::sim::stats::TrafficClass;
use sweeper::workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

fn kvs_experiment(policy: InjectionPolicy, ways: u32, sweeper: SweeperMode) -> Experiment {
    let cfg = ExperimentConfig::paper_default()
        .injection(policy)
        .ddio_ways(ways)
        .sweeper(sweeper)
        .rx_buffers_per_core(512)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(RunOptions {
            // The warmup is a physics floor — ≥1.2 wraps of every RX ring
            // (24 cores × 512 buffers ⇒ ~14.8 k requests) so steady-state
            // buffer churn is in effect — and cannot shrink with the
            // profile. 512-deep rings (13 MB aggregate, still ≫ the 6 MB
            // 2-way DDIO allocation) reproduce every claim of the 1024-deep
            // paper scenario at half the warmup cost. The measurement
            // window scales with the profile: Smoke sizing keeps
            // `cargo test -q` quick while 5 000 measured requests still
            // give ~85 000 leak events for the ratio assertions below.
            warmup_requests: 15_000,
            measure_requests: RunProfile::Smoke.scale(15_000, 5_000),
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    cfg.experiment(|| MicaKvs::new(KvsConfig::paper_default()))
}

fn at_moderate_load(policy: InjectionPolicy, ways: u32, sweeper: SweeperMode) -> RunReport {
    kvs_experiment(policy, ways, sweeper).run_at_rate(18.0e6)
}

#[test]
fn consumed_evictions_dominate_premature_at_stable_load() {
    // §IV-A: "virtually all network data leaks are attributed to consumed
    // buffer evictions" at stable operating points.
    let report = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Disabled);
    let counts = report.class_counts();
    assert!(counts[TrafficClass::RxEvct] > 0, "leaks must exist at 2-way DDIO");
    assert!(
        counts[TrafficClass::CpuRxRd] * 10 < counts[TrafficClass::RxEvct],
        "premature ({}) must be negligible vs consumed ({})",
        counts[TrafficClass::CpuRxRd],
        counts[TrafficClass::RxEvct]
    );
}

#[test]
fn sweeper_eliminates_consumed_buffer_evictions() {
    // §VI-A: "Sweeper completely eliminates writebacks of consumed RX
    // buffers" — any residual RX eviction must be premature (== CPU RX Rd).
    let report = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Enabled);
    let counts = report.class_counts();
    assert!(
        counts[TrafficClass::RxEvct] <= counts[TrafficClass::CpuRxRd] + 64,
        "residual RX evictions ({}) must match premature reads ({})",
        counts[TrafficClass::RxEvct],
        counts[TrafficClass::CpuRxRd]
    );
    // And the savings are real: one full packet per request.
    let saved = report.mem.sweep_saved_writebacks as f64 / report.completed as f64;
    assert!(saved > 15.0, "expected ~17 saved writebacks/request, got {saved:.1}");
}

#[test]
fn sweeper_matches_ideal_ddio_access_count() {
    // §VI-A: Sweeper "virtually matches ideal-DDIO's memory access count
    // per KVS request".
    let swept = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Enabled);
    let ideal = at_moderate_load(InjectionPolicy::Ideal, 2, SweeperMode::Disabled);
    // Network-attributed traffic matches ideal's (zero); the residual gap is
    // application data squeezed by the cache capacity network buffers still
    // occupy under real DDIO — the same gap the paper reports (§VI-A:
    // "within 2-18% of ideal-DDIO").
    let net_per_req: f64 = [
        TrafficClass::NicRxWr,
        TrafficClass::NicTxRd,
        TrafficClass::CpuRxRd,
        TrafficClass::RxEvct,
    ]
    .iter()
    .map(|&c| swept.class_counts()[c] as f64 / swept.completed as f64)
    .sum();
    assert!(net_per_req < 1.0, "network traffic {net_per_req:.2}/req should vanish");
    let ratio = swept.total_accesses_per_request() / ideal.total_accesses_per_request();
    assert!(
        ratio < 1.6,
        "sweeper {:.1} acc/req vs ideal {:.1} (ratio {ratio:.2})",
        swept.total_accesses_per_request(),
        ideal.total_accesses_per_request()
    );
}

#[test]
fn sweeper_reduces_memory_bandwidth_at_iso_load() {
    // Abstract: "Sweeper conserves up to 1.3x of memory bandwidth".
    let base = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Disabled);
    let swept = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Enabled);
    assert!(
        base.memory_bandwidth_gbps() > swept.memory_bandwidth_gbps() * 1.3,
        "baseline {:.1} GB/s vs sweeper {:.1} GB/s",
        base.memory_bandwidth_gbps(),
        swept.memory_bandwidth_gbps()
    );
}

#[test]
fn sweeper_reduces_dram_latency_at_iso_throughput() {
    // §VI-B / Figure 6 (right): iso-throughput, Sweeper cuts average DRAM
    // access latency substantially.
    let base = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Disabled);
    let swept = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Enabled);
    assert!(
        (base.throughput_mrps() - swept.throughput_mrps()).abs() < 2.0,
        "iso-throughput comparison requires matched load"
    );
    assert!(
        swept.dram_latency.mean() < base.dram_latency.mean() * 0.8,
        "sweeper DRAM mean {:.0} vs baseline {:.0}",
        swept.dram_latency.mean(),
        base.dram_latency.mean()
    );
}

#[test]
fn ddio_removes_direct_nic_memory_traffic() {
    // §IV-A / Figure 1c: "DDIO completely eliminates memory traffic directly
    // generated by the NIC".
    let dma = at_moderate_load(InjectionPolicy::Dma, 2, SweeperMode::Disabled);
    let ddio = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Disabled);
    let dma_counts = dma.class_counts();
    let ddio_counts = ddio.class_counts();
    assert!(dma_counts[TrafficClass::NicRxWr] > 0);
    assert_eq!(ddio_counts[TrafficClass::NicRxWr], 0);
    assert_eq!(ddio_counts[TrafficClass::NicTxRd], 0);
    // DMA also forces the CPU to fetch every packet from memory.
    assert!(
        dma_counts[TrafficClass::CpuRxRd] as f64 / dma.completed as f64 > 10.0,
        "DMA mode must fetch packets from DRAM"
    );
}

#[test]
fn ideal_ddio_has_zero_network_memory_traffic() {
    // §III: ideal-DDIO has "zero memory traffic due to network data
    // movements".
    let report = at_moderate_load(InjectionPolicy::Ideal, 2, SweeperMode::Disabled);
    let counts = report.class_counts();
    for class in [
        TrafficClass::NicRxWr,
        TrafficClass::NicTxRd,
        TrafficClass::CpuRxRd,
        TrafficClass::RxEvct,
        TrafficClass::TxEvct,
        TrafficClass::CpuTxRdWr,
    ] {
        assert_eq!(counts[class], 0, "{class} must be zero under ideal-DDIO");
    }
}

#[test]
fn more_ddio_ways_reduce_leaks() {
    // §VI-A: "increasing DDIO ways helps reduce such churn".
    let narrow = at_moderate_load(InjectionPolicy::Ddio, 2, SweeperMode::Disabled);
    let wide = at_moderate_load(InjectionPolicy::Ddio, 12, SweeperMode::Disabled);
    assert!(
        wide.class_counts()[TrafficClass::RxEvct] < narrow.class_counts()[TrafficClass::RxEvct],
        "12-way RX evictions must be below 2-way"
    );
}

#[test]
fn dirty_line_conservation_holds_end_to_end() {
    // Modelling invariant: no dirty data is ever dropped outside legitimate
    // NIC full-block overwrites and sweeps.
    for sweeper in [SweeperMode::Disabled, SweeperMode::Enabled] {
        let report = at_moderate_load(InjectionPolicy::Ddio, 2, sweeper);
        assert_eq!(
            report.mem.dirty_dropped_unexpectedly, 0,
            "dirty data lost in {sweeper} run"
        );
    }
}
