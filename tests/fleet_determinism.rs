//! The fleet's hard guarantee: results are a function of the point list
//! alone, never of the worker count — plus the figure-registry contract the
//! binaries rely on.

use sweeper::bench::figs;
use sweeper::core::experiment::ExperimentConfig;
use sweeper::core::fleet::{ExperimentPoint, Fleet, PointOutcome};
use sweeper::core::profile::RunProfile;
use sweeper::core::report::{text_report, ReportStyle};
use sweeper::core::telemetry::{fleet_document, RunManifest};
use sweeper::core::workload::EchoWorkload;

/// A mixed-action point list over the tiny test machine: open-loop points
/// at staggered rates plus closed-loop keep-queued points.
fn points() -> Vec<ExperimentPoint> {
    let mut out = Vec::new();
    for i in 0..6 {
        out.push(ExperimentPoint::at_rate(
            format!("rate#{i}"),
            ExperimentConfig::tiny_for_tests().experiment(|| EchoWorkload::with_think(150)),
            1.5e6 + i as f64 * 2.0e5,
        ));
    }
    for depth in [2usize, 8] {
        out.push(ExperimentPoint::keep_queued(
            format!("kq#{depth}"),
            ExperimentConfig::tiny_for_tests().experiment(|| EchoWorkload::with_think(150)),
            depth,
        ));
    }
    out
}

/// Every aggregate the harness renders, serialized to text — if any counter,
/// histogram, or derived statistic moved, the bytes move.
fn fingerprint(outcomes: &[PointOutcome]) -> String {
    outcomes
        .iter()
        .map(|o| format!("## {}\n{}", o.label, text_report(&o.report, ReportStyle::default())))
        .collect()
}

#[test]
fn fleet_outcomes_are_byte_identical_across_worker_counts() {
    let one = fingerprint(&Fleet::new(1).quiet().run(points()));
    let four = fingerprint(&Fleet::new(4).quiet().run(points()));
    assert!(!one.is_empty());
    assert_eq!(one, four, "--jobs 1 and --jobs 4 must render identically");
}

/// The structured export inherits the guarantee: fleet JSON documents are
/// byte-identical for any worker count (per-point wall time is deliberately
/// excluded from `PointOutcome::to_record`).
#[test]
fn fleet_json_is_byte_identical_across_worker_counts() {
    let manifest = RunManifest::new().profile("test").seed(1);
    let one = fleet_document(&Fleet::new(1).quiet().run(points()), &manifest).to_json_pretty();
    let four = fleet_document(&Fleet::new(4).quiet().run(points()), &manifest).to_json_pretty();
    assert!(one.contains("sweeper.fleet/1"));
    assert!(!one.contains("wall"), "wall time must stay out of fleet JSON");
    assert_eq!(one, four, "fleet JSON must not depend on --jobs");
}

#[test]
fn figure_registry_enumerates_unique_labelled_points() {
    assert!(!figs::registry().is_empty());
    for figure in figs::registry() {
        let points = figure.points(RunProfile::Smoke);
        assert!(
            !points.is_empty(),
            "{} must enumerate at least one point",
            figure.name()
        );
        let labels: std::collections::HashSet<&str> =
            points.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels.len(),
            points.len(),
            "{} has duplicate point labels",
            figure.name()
        );
    }
}
