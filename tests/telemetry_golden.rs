//! Telemetry contract tests: the JSON run document is schema-stable and
//! agrees — value for value — with the text report.
//!
//! The golden snapshot pins the *shape and content* of the export the same
//! way `golden_fig1` pins the text fingerprint: any field rename, reorder,
//! or numeric drift shows up as a byte diff. Regenerate intentionally with
//! `SWEEPER_BLESS=1 cargo test --test telemetry_golden` and inspect the
//! diff before committing. The manifest's `version` field is normalized so
//! routine version bumps don't invalidate the snapshot.

use std::path::PathBuf;

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::report::{json_record, text_report, ReportStyle};
use sweeper::core::server::RunReport;
use sweeper::core::telemetry::{
    run_document, validate_run_document, Record, RunManifest, Value,
};
use sweeper::core::workload::EchoWorkload;

const SEED: u64 = 7;

/// A deterministic run: tiny machine, echo workload, fixed seed.
fn report() -> RunReport {
    let cfg = ExperimentConfig::tiny_for_tests().seed(SEED);
    Experiment::new(cfg, || EchoWorkload::with_think(100)).run_at_rate(1.0e6)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("SWEEPER_BLESS").is_ok_and(|v| !v.is_empty()) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); bless with SWEEPER_BLESS=1"));
    assert_eq!(
        expected, actual,
        "run-report JSON diverged from golden '{name}' — a field rename or \
         reorder is a schema break (bless only if intentional)"
    );
}

/// Replaces the manifest's version value so crate version bumps don't
/// invalidate the snapshot.
fn normalize_version(json: &str) -> String {
    let mut out: String = json
        .lines()
        .map(|l| {
            if let Some(i) = l.find("\"version\": ") {
                let comma = if l.trim_end().ends_with(',') { "," } else { "" };
                format!("{}\"version\": \"<version>\"{comma}", &l[..i])
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    out
}

fn f64_of(rec: &Record, key: &str) -> f64 {
    match rec.get(key) {
        Some(Value::F64(v)) => *v,
        other => panic!("'{key}' should be a float, got {other:?}"),
    }
}

fn u64_of(rec: &Record, key: &str) -> u64 {
    match rec.get(key) {
        Some(Value::U64(v)) => *v,
        other => panic!("'{key}' should be an integer, got {other:?}"),
    }
}

fn record_of<'a>(rec: &'a Record, key: &str) -> &'a Record {
    match rec.get(key) {
        Some(Value::Record(r)) => r,
        other => panic!("'{key}' should be a record, got {other:?}"),
    }
}

/// The value printed for `label` in the text report (labels pad to 20).
fn text_value<'a>(text: &'a str, label: &str) -> &'a str {
    let prefix = format!("{label:<20}: ");
    text.lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .unwrap_or_else(|| panic!("missing '{label}' in text report:\n{text}"))
}

#[test]
fn run_report_json_matches_golden_and_schema() {
    let report = report();
    let manifest = RunManifest::new()
        .profile("test")
        .config("tiny_for_tests")
        .workload("echo")
        .seed(SEED);
    let doc = run_document(&report, ReportStyle::default(), &manifest);
    validate_run_document(&doc).expect("run document must satisfy the schema");
    let json = normalize_version(&format!("{}\n", doc.to_json_pretty()));
    check_golden("run_report", &json);
}

#[test]
fn text_and_json_reports_agree_on_every_shared_scalar() {
    let report = report();
    let text = text_report(&report, ReportStyle::default());
    let rec = json_record(&report, ReportStyle::default());

    assert_eq!(
        text_value(&text, "completed"),
        u64_of(&rec, "completed").to_string()
    );
    assert_eq!(
        text_value(&text, "throughput"),
        format!("{:.2} Mrps", f64_of(&rec, "throughput_mrps"))
    );
    assert_eq!(
        text_value(&text, "goodput ratio"),
        format!("{:.3}", f64_of(&rec, "goodput_ratio"))
    );
    assert_eq!(
        text_value(&text, "drop rate"),
        format!("{:.4}%", f64_of(&rec, "drop_rate") * 100.0)
    );
    assert_eq!(
        text_value(&text, "memory bandwidth"),
        format!("{:.2} GB/s", f64_of(&rec, "memory_bandwidth_gbps"))
    );
    assert_eq!(
        text_value(&text, "accesses/request"),
        format!("{:.2}", f64_of(&rec, "accesses_per_request"))
    );
    let lat = record_of(&rec, "request_latency");
    assert_eq!(
        text_value(&text, "request latency"),
        format!(
            "mean {:.0}  p50 {}  p99 {} cycles",
            f64_of(lat, "mean"),
            u64_of(lat, "p50"),
            u64_of(lat, "p99")
        )
    );
    let dram = record_of(&rec, "dram_latency");
    assert_eq!(
        text_value(&text, "dram read latency"),
        format!(
            "mean {:.0}  p99 {} cycles",
            f64_of(dram, "mean"),
            u64_of(dram, "p99")
        )
    );
}

/// The document is a pure function of the run: two identical runs export
/// byte-identical JSON (the manifest carries no wall-clock time here).
#[test]
fn run_document_is_deterministic() {
    let manifest = RunManifest::new().seed(SEED);
    let a = run_document(&report(), ReportStyle::default(), &manifest).to_json_pretty();
    let b = run_document(&report(), ReportStyle::default(), &manifest).to_json_pretty();
    assert_eq!(a, b);
}
