//! The `sweeper` binary must reject malformed command lines with a one-line
//! error plus usage on stderr and exit code 2 — never a panic backtrace.

use std::process::Command;

fn run(args: &[&str]) -> (std::process::ExitStatus, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sweeper"))
        .args(args)
        .output()
        .expect("spawn sweeper");
    (out.status, String::from_utf8_lossy(&out.stderr).into_owned())
}

fn assert_usage_error(args: &[&str]) {
    let (status, stderr) = run(args);
    assert_eq!(
        status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {stderr}"
    );
    assert!(
        stderr.contains("error:"),
        "{args:?} should print an error line, got: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} should print usage, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} must not panic, got: {stderr}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&["run", "--no-such-flag"]);
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_usage_error(&["frobnicate"]);
}

#[test]
fn flag_missing_its_value_is_a_usage_error() {
    assert_usage_error(&["run", "--rate"]);
}

#[test]
fn non_numeric_value_is_a_usage_error() {
    assert_usage_error(&["run", "--rate", "fast"]);
}

#[test]
fn walk_every_without_validate_is_a_usage_error() {
    assert_usage_error(&["run", "--walk-every", "64"]);
}

#[test]
fn check_rejects_unknown_figure() {
    let (status, stderr) = run(&["check", "no-such-figure"]);
    assert_eq!(status.code(), Some(2), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}
