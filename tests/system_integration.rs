//! Cross-crate integration tests of the system plumbing: determinism,
//! queue-pair flow, collocation hooks, way partitioning, keep-queued load
//! generation, and the OS privacy model — everything below the level of the
//! paper-claim assertions in `paper_claims.rs`.

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::os::{probe_page_recycling, PageZeroMode};
use sweeper::core::server::{RunOptions, SweeperMode};
use sweeper::core::workload::{CoreEnv, TxAction, Workload};
use sweeper::nic::packet::Packet;
use sweeper::sim::cache::WayMask;
use sweeper::sim::hierarchy::{MachineConfig, MemorySystem};
use sweeper::workloads::kvs::{KvsConfig, MicaKvs};
use sweeper::workloads::l3fwd::{L3Forwarder, L3fwdConfig};
use sweeper::workloads::xmem::{Xmem, XmemConfig};

fn quick_opts() -> RunOptions {
    RunOptions {
        warmup_requests: 2_000,
        measure_requests: 6_000,
        max_cycles: 60_000_000_000,
        min_warmup_cycles: 0,
        min_measure_cycles: 0,
    }
}

#[test]
fn paper_scale_runs_are_bit_identical() {
    let run = || {
        let cfg = ExperimentConfig::paper_default()
            .rx_buffers_per_core(512)
            .packet_bytes(1024)
            .seed(1234)
            .run_options(quick_opts());
        Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default())).run_at_rate(8.0e6)
    };
    let a = run();
    let b = run();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
    assert_eq!(a.mem.dram_accesses(), b.mem.dram_accesses());
    assert_eq!(a.dram_latency.mean(), b.dram_latency.mean());
    assert_eq!(a.request_latency.percentile(0.99), b.request_latency.percentile(0.99));
}

#[test]
fn keep_queued_maintains_batching_depth() {
    // §IV-B's load generator: every core's queue holds ≥ D unconsumed
    // packets; completions therefore proceed with zero idle gaps.
    let cfg = ExperimentConfig::paper_default()
        .rx_buffers_per_core(512)
        .packet_bytes(1024)
        .run_options(quick_opts());
    let exp = Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l1_resident()));
    let report = exp.run_keep_queued(50);
    assert!(report.completed >= 6_000);
    assert!(!report.timed_out);
    // Closed loop: offered ≈ completed within one queue depth per core
    // (the warmup-filled queue completes inside the window without being
    // re-offered there).
    assert!(report.offered + 24 * 51 >= report.completed);
    assert!(report.offered <= report.completed + 24 * 51);
}

#[test]
fn collocated_tenants_progress_and_partitions_bind() {
    // Test-sized collocation: an 8-core machine (4 L3fwd + 4 X-Mem) instead
    // of the paper's 24 cuts the event cost ~3× while preserving the
    // capacity contrast. The X-Mem datasets stay at the paper's 2 MB — they
    // must exceed the 1.28 MB private L2 for the LLC partition to matter —
    // so 4 instances × 2 MB = 8 MB thrashes the narrow 2-way partition
    // (6 MB) and fits the wide 10-way one (30 MB).
    let build = |xmem_ways: WayMask| {
        let mut machine = MachineConfig::paper_default();
        machine.cores = 8;
        let cfg = ExperimentConfig::paper_default()
            .with_machine(machine)
            .active_cores(4)
            .rx_buffers_per_core(256)
            .packet_bytes(1024)
            .run_options(RunOptions {
                // X-Mem's cold pass over 2 MB takes ~15 M cycles; capacity
                // effects only appear once it re-reads a warm dataset.
                min_measure_cycles: 18_000_000,
                min_warmup_cycles: 16_000_000,
                ..quick_opts()
            });
        Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l1_resident()))
            .with_background(|| Xmem::new(XmemConfig::paper_default()))
            .with_server_hook(move |server| {
                let mem = server.memory_mut();
                for core in 4..8 {
                    mem.set_cpu_llc_mask(core, xmem_ways);
                }
            })
            .run_keep_queued(8)
    };
    let wide = build(WayMask::range(2, 12));
    let narrow = build(WayMask::range(10, 12));
    assert!(wide.background_iterations > 0);
    assert!(narrow.background_iterations > 0);
    assert!(
        wide.background_mips() > narrow.background_mips() * 1.1,
        "X-Mem with 10 ways ({:.1}) must beat 2 ways ({:.1})",
        wide.background_mips(),
        narrow.background_mips()
    );
}

#[test]
fn tx_sweep_extension_works_at_paper_scale() {
    let run = |tx_sweep: bool| {
        // Overprovisioned TX rings (transmit-side buffer bloat, §V-D): the
        // 25 MB aggregate TX footprint cannot stay cache-resident, so the
        // baseline leaks TX writebacks.
        let cfg = ExperimentConfig::paper_default()
            .rx_buffers_per_core(1024)
            .tx_buffers_per_core(1024)
            .packet_bytes(1024)
            .sweeper(SweeperMode::Enabled)
            .tx_sweep(tx_sweep)
            .run_options(RunOptions {
                warmup_requests: 60_000,
                ..quick_opts()
            });
        Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l2_resident())).run_at_rate(20.0e6)
    };
    let base = run(false);
    let swept = run(true);
    use sweeper::sim::stats::TrafficClass;
    assert_eq!(
        swept.class_counts()[TrafficClass::TxEvct],
        0,
        "NIC-driven TX sweeping must remove TX writebacks"
    );
    assert!(base.class_counts()[TrafficClass::TxEvct] > 0, "baseline must leak TX");
    // Note: sweeping a TX ring that would otherwise stay cache-resident
    // trades writebacks for fresh RFOs, so *total* accesses may rise — the
    // extension pays off when TX buffers would leak (§V-D), which is what
    // the TxEvct assertions capture.
}

#[test]
fn zero_copy_forwarding_sweeps_via_the_work_queue() {
    let run = |sweeper: SweeperMode| {
        let cfg = ExperimentConfig::paper_default()
            .rx_buffers_per_core(1024)
            .packet_bytes(1024)
            .sweeper(sweeper)
            .run_options(RunOptions {
                warmup_requests: 30_000,
                ..quick_opts()
            });
        Experiment::new(cfg, || {
            L3Forwarder::new(L3fwdConfig::l2_resident().with_zero_copy())
        })
        .run_keep_queued(16)
    };
    use sweeper::sim::stats::TrafficClass;
    let base = run(SweeperMode::Disabled);
    let swept = run(SweeperMode::Enabled);
    assert!(base.class_counts()[TrafficClass::RxEvct] > 0);
    // §V-D: the NIC sweeps after transmit; consumed (already-transmitted)
    // buffers stop leaking.
    assert!(
        swept.class_counts()[TrafficClass::RxEvct] * 3
            < base.class_counts()[TrafficClass::RxEvct],
        "NIC-driven sweeping must remove most RX evictions (swept {} vs base {})",
        swept.class_counts()[TrafficClass::RxEvct],
        base.class_counts()[TrafficClass::RxEvct]
    );
    assert!(swept.mem.sweep_saved_writebacks > 0);
}

#[test]
fn os_privacy_mitigations_hold_under_all_policies() {
    for mode in [
        PageZeroMode::CachedStores,
        PageZeroMode::CachedStoresWithClwb,
        PageZeroMode::DmaBypass,
    ] {
        let mut mem = MemorySystem::new(MachineConfig::paper_default());
        let probe = probe_page_recycling(&mut mem, mode);
        assert!(!probe.breached(), "{mode:?} must protect recycled pages");
    }
}

/// A workload that exercises the manual relinquish API from inside the
/// handler (zero-copy stacks manage lifetimes themselves).
struct ManualSweep;

impl Workload for ManualSweep {
    fn name(&self) -> &str {
        "manual-sweep"
    }
    fn setup(&mut self, _mem: &mut MemorySystem) {}
    fn handle_packet(&mut self, packet: &Packet, env: &mut CoreEnv<'_>) -> TxAction {
        env.read(packet.addr, packet.bytes);
        env.compute(100);
        // Application-managed relinquish instead of the engine's automatic
        // one (Sweeper mode stays Disabled in the config).
        env.relinquish(packet.addr, packet.bytes);
        TxAction::None
    }
}

#[test]
fn manual_relinquish_matches_engine_sweeping() {
    let cfg = ExperimentConfig::paper_default()
        .rx_buffers_per_core(1024)
        .packet_bytes(1024)
        .run_options(RunOptions {
            warmup_requests: 30_000,
            ..quick_opts()
        });
    let report = Experiment::new(cfg, || ManualSweep).run_at_rate(20.0e6);
    use sweeper::sim::stats::TrafficClass;
    assert!(report.mem.sweep_saved_writebacks > 0);
    assert!(
        report.class_counts()[TrafficClass::RxEvct]
            <= report.class_counts()[TrafficClass::CpuRxRd] + 64
    );
}

#[test]
fn run_reports_are_internally_consistent() {
    let cfg = ExperimentConfig::paper_default()
        .rx_buffers_per_core(512)
        .packet_bytes(512)
        .run_options(quick_opts());
    let report =
        Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default().with_item_bytes(512)))
            .run_at_rate(10.0e6);
    // Breakdown sums to the total.
    let sum: f64 = report.accesses_per_request().iter().map(|(_, v)| v).sum();
    assert!((sum - report.total_accesses_per_request()).abs() < 1e-9);
    // Bandwidth is consistent with the access count and window.
    let bytes = report.mem.dram_bytes() as f64;
    let secs = report.elapsed_cycles as f64 / 3.2e9;
    assert!((report.memory_bandwidth_gbps() - bytes / secs / 1e9).abs() < 1e-6);
    // Channel counters agree with the class totals.
    let channel_total: u64 = report.channel_transfers.iter().map(|(r, w)| r + w).sum();
    assert_eq!(channel_total, report.mem.dram_accesses());
    // Latency percentiles are ordered.
    let h = &report.request_latency;
    assert!(h.percentile(0.5) <= h.percentile(0.99));
    assert!(h.percentile(0.99) <= h.max());
}
