//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use, with
//! deterministic, seedable case generation and no external dependencies
//! beyond the workspace's own `rand` shim. Differences from upstream:
//!
//! * **No shrinking.** A failing case prints its case index; cases are a
//!   pure function of `(test name, case index)`, so re-running the test
//!   reproduces the failure exactly.
//! * **Case count** defaults to 64 and is overridable with the standard
//!   `PROPTEST_CASES` environment variable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
            Self::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The per-case random source handed to strategies.
pub type TestRng = SmallRng;

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic RNG for one case of one named test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index, keeps every
    // (test, case) pair on an independent stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37_79B9))
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of `elem` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`]; API-compatible with `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything the tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let total = $crate::cases();
            for case in 0..total {
                let mut rng =
                    $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {case}/{total}: {msg}\n\
                             (cases are deterministic; re-running reproduces this input)",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #[test]
        fn ranges_are_respected(v in 10u64..20, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths_obey_bounds(xs in crate::collection::vec(0u8..4, 2..9)) {
            prop_assert!((2..9).contains(&xs.len()));
            for x in xs {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v < 20 || (101..111).contains(&v), "v = {v}");
        }

        #[test]
        fn assume_skips_instead_of_failing(v in 0u64..10) {
            prop_assume!(v != 3);
            prop_assert!(v != 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1_000_000, any::<bool>());
        let a = s.generate(&mut crate::case_rng("t", 5));
        let b = s.generate(&mut crate::case_rng("t", 5));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::case_rng("t", 6));
        assert_ne!(a, c);
    }
}
