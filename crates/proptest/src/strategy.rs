//! Value-generation strategies: ranges, tuples, `map`, unions, and `any`.

use crate::TestRng;
use rand::Rng;

/// Something that can generate values of one type from a [`TestRng`].
///
/// Object-safe for a fixed `Value`, so heterogeneous strategies can be
/// unified through [`Strategy::boxed`] / [`Union`] (what `prop_oneof!`
/// expands to).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (API-compatible with proptest's
    /// `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between equally-typed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics on an empty alternative list.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Self(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.gen::<u64>() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.gen::<u64>() >> 56) as u8
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T` (API-compatible with `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
