//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! exact API subset the workspace uses — `rngs::SmallRng`, [`SeedableRng`],
//! and the [`Rng`] extension methods `gen` / `gen_range` — with no external
//! dependencies. The generator is xoshiro256++ seeded through splitmix64,
//! the same algorithm the real rand 0.8 uses for `SmallRng` on 64-bit
//! targets, so statistical quality is equivalent (streams are not
//! guaranteed bit-compatible with upstream and nothing in the workspace
//! relies on that).

/// Core trait of anything that produces random `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via splitmix64 state expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the subset of
/// `rand::distributions::Standard` the workspace uses).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the
    /// convention of rand's `Standard` for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire's multiply-shift maps a raw u64 uniformly onto
                // [0, span); the bias is < 2^-64 per draw, irrelevant for
                // simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly over its domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The generators module, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_is_half_open_and_covers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01, "low tail unreached: {lo}");
        assert!(hi > 0.99, "high tail unreached: {hi}");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(0u64..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        for _ in 0..1_000 {
            let v: u16 = rng.gen_range(3u16..5);
            assert!((3..5).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn rotations_match_reference_vector() {
        // First outputs of xoshiro256++ seeded via splitmix64(0), from the
        // reference implementation.
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.gen::<u64>();
        let second = rng.gen::<u64>();
        assert_ne!(first, second);
        // Self-consistency: re-seeding reproduces the stream.
        let mut again = SmallRng::seed_from_u64(0);
        assert_eq!(again.gen::<u64>(), first);
        assert_eq!(again.gen::<u64>(), second);
    }
}
