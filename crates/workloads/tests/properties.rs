//! Property-based tests for the workload models: zipf sampler statistics,
//! KVS trace well-formedness, and spiky-decorator behaviour.

use proptest::collection::vec;
use proptest::prelude::*;

use sweeper_core::workload::{CoreEnv, Op, TxAction, Workload};
use sweeper_nic::packet::{Packet, PacketId};
use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::engine::SimRng;
use sweeper_sim::hierarchy::{MachineConfig, MemorySystem};
use sweeper_workloads::dist::Zipf;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs};
use sweeper_workloads::l3fwd::{L3Forwarder, L3fwdConfig};

proptest! {
    /// Zipf samples always land in [1, n], for arbitrary n and exponent.
    #[test]
    fn zipf_range_is_respected(n in 1u64..500_000, s in 0.01f64..2.5, seed in any::<u64>()) {
        prop_assume!((s - 1.0).abs() > 1e-3);
        let zipf = Zipf::new(n, s);
        let mut rng = SimRng::seeded(seed);
        for _ in 0..200 {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Higher exponents concentrate more mass on rank 1.
    #[test]
    fn zipf_skew_is_monotone_in_exponent(seed in any::<u64>()) {
        let count_rank1 = |s: f64| {
            let zipf = Zipf::new(1000, s);
            let mut rng = SimRng::seeded(seed);
            (0..20_000).filter(|_| zipf.sample(&mut rng) == 1).count()
        };
        let mild = count_rank1(0.4);
        let heavy = count_rank1(1.4);
        prop_assert!(heavy > mild, "heavy {heavy} vs mild {mild}");
    }

    /// KVS traces are well-formed for any packet size ≥ the header: at
    /// least one RX-buffer read, all ops target allocated regions, and the
    /// reply action is always a `Reply`.
    #[test]
    fn kvs_traces_are_well_formed(pkt_bytes in 64u64..2048, seed in any::<u64>()) {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut kvs = MicaKvs::new(KvsConfig::small_for_tests());
        kvs.setup(&mut mem);
        let rx = mem.address_map_mut().alloc(2048, RegionKind::Rx { core: 0 });
        mem.nic_write(rx, pkt_bytes, 0);
        let pkt = Packet {
            id: PacketId(0),
            core: 0,
            bytes: pkt_bytes,
            arrival: 0,
            delivered: 0,
            addr: rx,
        };
        let mut rng = SimRng::seeded(seed);
        for _ in 0..20 {
            let mut env = CoreEnv::new(0, &mut rng);
            let action = kvs.handle_packet(&pkt, &mut env);
            let reply_ok = matches!(action, TxAction::Reply { bytes } if bytes >= 64);
            prop_assert!(reply_ok, "unexpected action {:?}", action);
            let ops = env.into_ops();
            prop_assert!(!ops.is_empty());
            let mut saw_rx_read = false;
            for op in &ops {
                match op {
                    Op::Read { addr, len } | Op::Write { addr, len } => {
                        prop_assert!(*len > 0);
                        if *addr == rx {
                            saw_rx_read = true;
                            prop_assert!(*len <= pkt_bytes);
                        } else {
                            // Bucket/log accesses classify as App.
                            prop_assert_eq!(
                                mem.address_map().classify(*addr),
                                RegionKind::App
                            );
                        }
                    }
                    Op::Compute { cycles } => prop_assert!(*cycles > 0),
                    _ => {}
                }
            }
            prop_assert!(saw_rx_read, "every request parses the RX buffer");
        }
    }

    /// The forwarder reads the whole packet and exactly two table blocks,
    /// for any flow sequence.
    #[test]
    fn l3fwd_traces_read_packet_and_two_rules(seeds in vec(any::<u64>(), 1..20)) {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut fwd = L3Forwarder::new(L3fwdConfig::l1_resident());
        fwd.setup(&mut mem);
        let rx = mem.address_map_mut().alloc(1024, RegionKind::Rx { core: 0 });
        let pkt = Packet {
            id: PacketId(0),
            core: 0,
            bytes: 1024,
            arrival: 0,
            delivered: 0,
            addr: rx,
        };
        for seed in seeds {
            let mut rng = SimRng::seeded(seed);
            let mut env = CoreEnv::new(0, &mut rng);
            let action = fwd.handle_packet(&pkt, &mut env);
            prop_assert_eq!(action, TxAction::Reply { bytes: 1024 });
            let ops = env.into_ops();
            let packet_reads = ops.iter().filter(|op| matches!(op, Op::Read { addr, len } if *addr == rx && *len == 1024)).count();
            let rule_reads = ops.iter().filter(|op| matches!(op, Op::Read { addr, len } if *addr != rx && *len == 64)).count();
            prop_assert_eq!(packet_reads, 1);
            prop_assert_eq!(rule_reads, 2);
        }
    }

    /// Address-map region kinds carried through the packet path never change
    /// classification mid-buffer.
    #[test]
    fn rx_buffers_classify_uniformly(entries in 1usize..32, entry_bytes in 64u64..2048) {
        let mut map = sweeper_sim::addr::AddressMap::new();
        let ring = sweeper_nic::ring::RxRing::new(&mut map, 3, entries, entry_bytes);
        for i in 0..entries {
            let base = ring.slot_addr(i);
            prop_assert_eq!(map.classify(base), RegionKind::Rx { core: 3 });
            prop_assert_eq!(
                map.classify(Addr(base.0 + entry_bytes - 1)),
                RegionKind::Rx { core: 3 }
            );
        }
    }
}
