//! L3 forwarder network function.
//!
//! Adapted (as in the paper, §III) from the stock DPDK `l3fwd` example to
//! the Scale-Out NUMA transport. The NF parses each packet's header, looks
//! the destination up in a forwarding table, rewrites the header, and
//! transmits the packet.
//!
//! Two table sizes matter in the evaluation:
//!
//! * §IV-B / §VI-C use 16 k rules, which "barely fit in each core's private
//!   L2 cache" — adding private-cache pressure,
//! * §VI-E uses an L1-resident table so that all LLC/memory pressure the NF
//!   generates is attributable to packet RX/TX.
//!
//! Transmission is either a copy into a TX buffer (the paper's evaluated
//! mode) or zero-copy in place (§V-D), selected by
//! [`L3fwdConfig::zero_copy`].

use sweeper_core::workload::{CoreEnv, TxAction, Workload};
use sweeper_nic::packet::Packet;
use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::Cycle;
use sweeper_sim::BLOCK_BYTES;

/// Forwarder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L3fwdConfig {
    /// Number of forwarding rules; each occupies one cache block.
    pub rules: u64,
    /// Fixed per-packet compute (header parse, checksum update), cycles.
    pub compute_cycles: Cycle,
    /// Transmit the received buffer in place instead of copying (§V-D).
    pub zero_copy: bool,
}

impl L3fwdConfig {
    /// §IV-B's pressure configuration: 16 k rules (1 MB table, barely
    /// L2-resident).
    pub fn l2_resident() -> Self {
        Self {
            rules: 16 * 1024,
            compute_cycles: 120,
            zero_copy: false,
        }
    }

    /// §VI-E's collocation configuration: an L1-resident table (its LLC and
    /// memory pressure is then purely packet RX/TX).
    pub fn l1_resident() -> Self {
        Self {
            rules: 256,
            compute_cycles: 120,
            zero_copy: false,
        }
    }

    /// Table footprint in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.rules * BLOCK_BYTES
    }

    /// Returns a copy with zero-copy receive-to-transmit enabled.
    pub fn with_zero_copy(mut self) -> Self {
        self.zero_copy = true;
        self
    }
}

/// The forwarder.
#[derive(Debug)]
pub struct L3Forwarder {
    cfg: L3fwdConfig,
    table_base: Addr,
    forwarded: u64,
}

impl L3Forwarder {
    /// Creates a forwarder; the table is allocated in
    /// [`Workload::setup`].
    ///
    /// # Panics
    ///
    /// Panics if `rules` is zero.
    pub fn new(cfg: L3fwdConfig) -> Self {
        assert!(cfg.rules > 0, "forwarding table must be non-empty");
        Self {
            cfg,
            table_base: Addr(0),
            forwarded: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &L3fwdConfig {
        &self.cfg
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn rule_addr(&self, flow: u64) -> Addr {
        let h = flow.wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 13;
        self.table_base.offset((h % self.cfg.rules) * BLOCK_BYTES)
    }
}

impl Workload for L3Forwarder {
    fn name(&self) -> &str {
        "l3fwd"
    }

    fn setup(&mut self, mem: &mut MemorySystem) {
        self.table_base = mem
            .address_map_mut()
            .alloc(self.cfg.table_bytes(), RegionKind::App);
    }

    fn handle_packet(&mut self, packet: &Packet, env: &mut CoreEnv<'_>) -> TxAction {
        self.forwarded += 1;
        // Each packet belongs to a uniformly random flow.
        let flow = env.rng().next_u64_in(u64::MAX);
        // Read the packet from the RX buffer (header first, then payload for
        // the copy-out path).
        env.read(packet.addr, packet.bytes);
        // Two dependent table lookups: first-level index, then the rule —
        // matching l3fwd's hash-table probe.
        let rule = self.rule_addr(flow);
        env.read(rule, BLOCK_BYTES);
        env.read(self.rule_addr(flow ^ 0x5555), BLOCK_BYTES);
        env.compute(self.cfg.compute_cycles);
        if self.cfg.zero_copy {
            // Rewrite the header in place (one dirty block), transmit as-is.
            env.write(packet.addr, BLOCK_BYTES.min(packet.bytes));
            TxAction::ForwardInPlace
        } else {
            TxAction::Reply {
                bytes: packet.bytes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_nic::packet::PacketId;
    use sweeper_sim::engine::SimRng;
    use sweeper_sim::hierarchy::MachineConfig;

    fn setup(cfg: L3fwdConfig) -> (L3Forwarder, MemorySystem, SimRng) {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut fwd = L3Forwarder::new(cfg);
        fwd.setup(&mut mem);
        (fwd, mem, SimRng::seeded(1))
    }

    fn drive(
        fwd: &mut L3Forwarder,
        pkt: &Packet,
        mem: &mut MemorySystem,
        rng: &mut SimRng,
        t: u64,
    ) -> (TxAction, u64) {
        sweeper_core::workload::drive_packet(fwd, pkt, mem, rng, t)
    }

    fn rx_packet(mem: &mut MemorySystem, bytes: u64) -> Packet {
        let addr = mem.address_map_mut().alloc(bytes, RegionKind::Rx { core: 0 });
        mem.nic_write(addr, bytes, 0);
        Packet {
            id: PacketId(0),
            core: 0,
            bytes,
            arrival: 0,
            delivered: 0,
            addr,
        }
    }

    #[test]
    fn table_sizes_match_the_paper() {
        assert_eq!(L3fwdConfig::l2_resident().table_bytes(), 1 << 20);
        // 256 rules * 64 B = 16 KB: fits the 48 KB L1.
        assert_eq!(L3fwdConfig::l1_resident().table_bytes(), 16 * 1024);
    }

    #[test]
    fn copy_mode_replies_with_packet_size() {
        let (mut fwd, mut mem, mut rng) = setup(L3fwdConfig::l2_resident());
        let pkt = rx_packet(&mut mem, 1024);
        let (action, elapsed) = drive(&mut fwd, &pkt, &mut mem, &mut rng, 0);
        assert_eq!(action, TxAction::Reply { bytes: 1024 });
        assert_eq!(fwd.forwarded(), 1);
        assert!(elapsed >= 120);
    }

    #[test]
    fn zero_copy_mode_forwards_in_place() {
        let (mut fwd, mut mem, mut rng) = setup(L3fwdConfig::l1_resident().with_zero_copy());
        let pkt = rx_packet(&mut mem, 1024);
        let (action, _) = drive(&mut fwd, &pkt, &mut mem, &mut rng, 0);
        assert_eq!(action, TxAction::ForwardInPlace);
        // The header rewrite dirtied the first packet block in the core's
        // private cache.
        assert!(mem
            .l1_of(0)
            .peek(pkt.addr.block())
            .is_some_and(|l| l.dirty));
    }

    #[test]
    fn rule_lookups_stay_in_table() {
        let (fwd, _mem, _) = setup(L3fwdConfig::l2_resident());
        for flow in 0..10_000u64 {
            let r = fwd.rule_addr(flow);
            assert!(r.0 >= fwd.table_base.0);
            assert!(r.0 < fwd.table_base.0 + fwd.config().table_bytes());
        }
    }

    #[test]
    fn rule_lookups_spread_over_table() {
        let (fwd, _mem, _) = setup(L3fwdConfig::l1_resident());
        let mut seen = std::collections::HashSet::new();
        for flow in 0..4_000u64 {
            seen.insert(fwd.rule_addr(flow));
        }
        assert!(
            seen.len() as u64 > fwd.config().rules / 2,
            "only {} distinct rules hit",
            seen.len()
        );
    }

    #[test]
    fn l1_resident_table_generates_no_dram_traffic_once_warm() {
        // The tiny test machine's caches are far smaller than the paper
        // machine's, so scale the table down proportionally (the paper's
        // l1_resident() is sized for a 48 KB L1).
        let tiny_table = L3fwdConfig {
            rules: 16,
            ..L3fwdConfig::l1_resident()
        };
        let (mut fwd, mut mem, mut rng) = setup(tiny_table);
        let pkt = rx_packet(&mut mem, 64);
        // Warm the table.
        for i in 0..2_000u64 {
            drive(&mut fwd, &pkt, &mut mem, &mut rng, i * 1_000);
        }
        let before = mem.stats().dram_reads.total();
        for i in 2_000..4_000u64 {
            drive(&mut fwd, &pkt, &mut mem, &mut rng, i * 1_000);
        }
        let delta = mem.stats().dram_reads.total() - before;
        assert!(delta < 20, "warm L1-resident table fetched {delta} blocks");
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn rejects_empty_table() {
        L3Forwarder::new(L3fwdConfig {
            rules: 0,
            compute_cycles: 0,
            zero_copy: false,
        });
    }
}
