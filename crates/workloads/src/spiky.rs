//! The §VI-F "spiky" microbenchmark.
//!
//! "With the KVS workload as a base, we develop a microbenchmark where, with
//! a small probability, each request suffers a processing delay randomly
//! sampled from the [1, 100] µs range, causing temporal queue buildup
//! spikes — an effect also functionally equivalent to packet arrival
//! bursts."
//!
//! [`Spiky`] is a decorator over any [`Workload`]; the buffer-provisioning
//! study of Figure 10 wraps the MICA KVS with it.

use sweeper_core::workload::{CoreEnv, TxAction, Workload};
use sweeper_nic::packet::Packet;
use sweeper_sim::engine::us_to_cycles;
use sweeper_sim::hierarchy::MemorySystem;

/// Spike parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeConfig {
    /// Per-request probability of a delay spike ("small probability").
    pub probability: f64,
    /// Minimum spike duration in microseconds (paper: 1).
    pub min_us: f64,
    /// Maximum spike duration in microseconds (paper: 100).
    pub max_us: f64,
}

impl SpikeConfig {
    /// The paper's range with a 1% spike probability.
    pub fn paper_default() -> Self {
        Self {
            probability: 0.01,
            min_us: 1.0,
            max_us: 100.0,
        }
    }
}

/// Decorator adding random processing-delay spikes to a workload.
#[derive(Debug)]
pub struct Spiky<W> {
    inner: W,
    cfg: SpikeConfig,
    name: String,
    spikes: u64,
}

impl<W: Workload> Spiky<W> {
    /// Wraps `inner` with the given spike behaviour.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]` or the range is
    /// inverted or non-positive.
    pub fn new(inner: W, cfg: SpikeConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.probability),
            "spike probability out of range"
        );
        assert!(
            cfg.min_us > 0.0 && cfg.min_us <= cfg.max_us,
            "invalid spike duration range"
        );
        let name = format!("spiky-{}", inner.name());
        Self {
            inner,
            cfg,
            name,
            spikes: 0,
        }
    }

    /// Spikes injected so far.
    pub fn spikes(&self) -> u64 {
        self.spikes
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Workload> Workload for Spiky<W> {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, mem: &mut MemorySystem) {
        self.inner.setup(mem);
    }

    fn handle_packet(&mut self, packet: &Packet, env: &mut CoreEnv<'_>) -> TxAction {
        let action = self.inner.handle_packet(packet, env);
        if env.rng().chance(self.cfg.probability) {
            self.spikes += 1;
            let us = self.cfg.min_us + env.rng().next_f64() * (self.cfg.max_us - self.cfg.min_us);
            env.compute(us_to_cycles(us));
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_core::workload::EchoWorkload;
    use sweeper_nic::packet::PacketId;
    use sweeper_sim::addr::RegionKind;
    use sweeper_sim::engine::SimRng;
    use sweeper_sim::hierarchy::MachineConfig;

    fn run_requests(prob: f64, n: u64) -> (u64, Vec<u64>) {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let rx = mem.address_map_mut().alloc(1024, RegionKind::Rx { core: 0 });
        mem.nic_write(rx, 1024, 0);
        let pkt = Packet {
            id: PacketId(0),
            core: 0,
            bytes: 1024,
            arrival: 0,
            delivered: 0,
            addr: rx,
        };
        let mut wl = Spiky::new(
            EchoWorkload::with_think(100),
            SpikeConfig {
                probability: prob,
                min_us: 1.0,
                max_us: 100.0,
            },
        );
        wl.setup(&mut mem);
        let mut rng = SimRng::seeded(9);
        let mut times = Vec::new();
        for i in 0..n {
            let (_, elapsed) =
                sweeper_core::workload::drive_packet(&mut wl, &pkt, &mut mem, &mut rng, i * 1_000_000);
            times.push(elapsed);
        }
        (wl.spikes(), times)
    }

    #[test]
    fn no_spikes_at_zero_probability() {
        let (spikes, times) = run_requests(0.0, 500);
        assert_eq!(spikes, 0);
        assert!(times.iter().all(|&t| t < us_to_cycles(1.0)));
    }

    #[test]
    fn spike_rate_matches_probability() {
        let (spikes, _) = run_requests(0.05, 5_000);
        let rate = spikes as f64 / 5_000.0;
        assert!((rate - 0.05).abs() < 0.015, "rate {rate}");
    }

    #[test]
    fn spikes_are_within_the_paper_range() {
        let (spikes, times) = run_requests(1.0, 300);
        assert_eq!(spikes, 300);
        for &t in &times {
            // Base echo service is tiny; the spike dominates.
            assert!(t >= us_to_cycles(1.0) && t <= us_to_cycles(101.0));
        }
    }

    #[test]
    fn name_reflects_inner() {
        let wl = Spiky::new(EchoWorkload::default(), SpikeConfig::paper_default());
        assert_eq!(wl.name(), "spiky-echo");
        assert_eq!(wl.inner().think_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        Spiky::new(
            EchoWorkload::default(),
            SpikeConfig {
                probability: 1.5,
                min_us: 1.0,
                max_us: 2.0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "invalid spike duration")]
    fn rejects_inverted_range() {
        Spiky::new(
            EchoWorkload::default(),
            SpikeConfig {
                probability: 0.1,
                min_us: 5.0,
                max_us: 2.0,
            },
        );
    }
}
