//! Turn-key construction of experiments from [`Scenario`] descriptions.
//!
//! [`Scenario`](sweeper_core::scenario::Scenario) lives in `sweeper-core`,
//! which cannot know about concrete workloads; this module closes the loop,
//! mapping a parsed scenario onto a ready-to-run
//! [`Experiment`](sweeper_core::experiment::Experiment) with the right
//! workload factory and ring-wrapping warmup.

use sweeper_core::experiment::Experiment;
use sweeper_core::scenario::{Scenario, ScenarioWorkload};
use sweeper_core::server::RunOptions;

use crate::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use crate::l3fwd::{L3Forwarder, L3fwdConfig};
use crate::synthetic::{Synthetic, SyntheticConfig};

/// Run lengths matched to a scenario: the warmup wraps every RX ring at
/// least 1.2×, with a floor of `measure_requests / 2`.
pub fn run_options_for(scenario: &Scenario, measure_requests: u64) -> RunOptions {
    let ring_wrap = scenario.cores as u64
        * scenario.endpoints as u64
        * scenario.buffers as u64
        * 12
        / 10;
    RunOptions {
        warmup_requests: ring_wrap.max(measure_requests / 2),
        measure_requests,
        max_cycles: 600_000_000_000,
        min_warmup_cycles: 0,
        min_measure_cycles: 0,
    }
}

/// Builds the experiment a scenario describes.
///
/// The KVS item size is derived from the scenario's packet size (SET
/// requests carry the value); L3fwd uses the §IV-B L2-resident table.
pub fn experiment_for(scenario: &Scenario, measure_requests: u64) -> Experiment {
    let cfg = scenario
        .to_config()
        .run_options(run_options_for(scenario, measure_requests));
    match scenario.workload {
        ScenarioWorkload::Kvs => {
            let item = scenario.packet.saturating_sub(HEADER_BYTES).max(64);
            let kvs = KvsConfig::paper_default().with_item_bytes(item);
            Experiment::new(cfg, move || MicaKvs::new(kvs))
        }
        ScenarioWorkload::L3fwd => {
            Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l2_resident()))
        }
        ScenarioWorkload::Synthetic => {
            Experiment::new(cfg, || Synthetic::new(SyntheticConfig::balanced()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_wrap_the_rings() {
        let mut s = Scenario {
            cores: 4,
            buffers: 100,
            endpoints: 2,
            ..Scenario::default()
        };
        let opts = run_options_for(&s, 1_000);
        assert_eq!(opts.warmup_requests, 4 * 2 * 100 * 12 / 10);
        assert_eq!(opts.measure_requests, 1_000);
        // Tiny rings fall back to the measure-based floor.
        s.buffers = 1;
        s.endpoints = 1;
        let opts = run_options_for(&s, 1_000);
        assert_eq!(opts.warmup_requests, 500);
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let s = Scenario::parse(
            "workload = synthetic\ncores = 2\nbuffers = 16\npacket = 512\nrate_mrps = 1\n",
        )
        .unwrap();
        let exp = experiment_for(&s, 500);
        let report = exp.run_at_rate(s.rate_mrps * 1e6);
        assert!(report.completed >= 500);
        assert_eq!(report.workload, "synthetic");
    }

    #[test]
    fn kvs_item_size_tracks_packet() {
        let s = Scenario::parse("workload = kvs\npacket = 576\ncores = 2\nbuffers = 16\n").unwrap();
        let exp = experiment_for(&s, 300);
        let report = exp.run_at_rate(1.0e6);
        assert_eq!(report.workload, "mica-kvs");
        assert!(report.completed >= 300);
    }
}
