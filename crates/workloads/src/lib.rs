//! The paper's workloads, reimplemented as memory-reference models.
//!
//! Appendix A fixes the application set used throughout the evaluation:
//!
//! * [`kvs`] — a MICA-style key-value store ported to the Scale-Out NUMA
//!   transport (from its RDMA-based HERD version): 1 M buckets, 2.4 M
//!   key-value pairs, a 256 MB circular log, a write-heavy 5/95 GET/SET mix,
//!   and zipf-0.99 key popularity,
//! * [`l3fwd`] — an L3 forwarder network function adapted from its stock
//!   DPDK version, with a forwarding table sized to be L1- or L2-resident,
//! * [`xmem`] — the X-Mem memory-characterization tool standing in for a
//!   collocated memory-intensive tenant (§VI-E),
//! * [`dist`] — the zipf sampler behind the KVS key popularity,
//! * [`spiky`] — the §VI-F microbenchmark decorator that adds random
//!   [1, 100] µs processing delays to induce queue-buildup spikes,
//! * [`synthetic`] — a configurable compute/read/write request mix for
//!   calibration and for standing in for unavailable applications,
//! * [`runner`] — turn-key experiments from `key = value` scenario files.
//!
//! Each workload issues the same *memory reference pattern* per request as
//! the original application (buffer reads, index probes, log appends, table
//! lookups), which is what the paper's memory-system phenomena depend on.

pub mod dist;
pub mod kvs;
pub mod runner;
pub mod l3fwd;
pub mod spiky;
pub mod synthetic;
pub mod xmem;
