//! X-Mem: the collocated memory-intensive tenant of §VI-E.
//!
//! "Each X-Mem process performs sequential random accesses to a private 2 MB
//! dataset, which exceeds the aggregate capacity of private L1 and L2
//! caches" — so its working set lives in the LLC and its performance is a
//! direct probe of how much LLC capacity and memory bandwidth the network
//! tenant (and DDIO) leave available.

use std::collections::HashMap;

use sweeper_core::workload::{BackgroundTenant, CoreEnv};
use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::Cycle;
use sweeper_sim::BLOCK_BYTES;

/// X-Mem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmemConfig {
    /// Private dataset size per instance (paper: 2 MB).
    pub dataset_bytes: u64,
    /// Random block reads per [`BackgroundTenant::step`] iteration.
    pub accesses_per_step: u32,
    /// Compute cycles between accesses (address generation, loop overhead).
    pub compute_per_access: Cycle,
}

impl XmemConfig {
    /// The paper's §VI-E instance: 2 MB random-access dataset.
    pub fn paper_default() -> Self {
        Self {
            dataset_bytes: 2 << 20,
            accesses_per_step: 8,
            compute_per_access: 25,
        }
    }

    /// Scaled-down instance for tests (fits the tiny test machine's LLC
    /// with room to spare, but exceeds its private caches).
    pub fn small_for_tests() -> Self {
        Self {
            dataset_bytes: 4 * 1024,
            accesses_per_step: 4,
            compute_per_access: 4,
        }
    }

    /// Dataset size in cache blocks.
    pub fn dataset_blocks(&self) -> u64 {
        self.dataset_bytes / BLOCK_BYTES
    }
}

/// One X-Mem tenant serving any number of cores, each with its own private
/// dataset.
#[derive(Debug)]
pub struct Xmem {
    cfg: XmemConfig,
    datasets: HashMap<u16, Addr>,
    iterations: u64,
}

impl Xmem {
    /// Creates the tenant.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is smaller than one block or
    /// `accesses_per_step` is zero.
    pub fn new(cfg: XmemConfig) -> Self {
        assert!(cfg.dataset_bytes >= BLOCK_BYTES, "dataset too small");
        assert!(cfg.accesses_per_step > 0, "steps must access memory");
        Self {
            cfg,
            datasets: HashMap::new(),
            iterations: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &XmemConfig {
        &self.cfg
    }

    /// Iterations executed (all cores).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The dataset base of a core, if set up.
    pub fn dataset_of(&self, core: u16) -> Option<Addr> {
        self.datasets.get(&core).copied()
    }
}

impl BackgroundTenant for Xmem {
    fn name(&self) -> &str {
        "x-mem"
    }

    fn setup(&mut self, core: u16, mem: &mut MemorySystem) {
        let base = mem
            .address_map_mut()
            .alloc(self.cfg.dataset_bytes, RegionKind::App);
        self.datasets.insert(core, base);
    }

    fn step(&mut self, core: u16, env: &mut CoreEnv<'_>) {
        let base = *self
            .datasets
            .get(&core)
            .expect("setup must run before step");
        let blocks = self.cfg.dataset_blocks();
        // X-Mem's address stream is data-independent, so its loads overlap
        // in the memory system (the real tool sustains high MLP): a batch of
        // scattered block reads costs one loaded-latency, not a sum.
        let addrs = (0..self.cfg.accesses_per_step)
            .map(|_| base.offset(env.rng().next_u64_in(blocks) * BLOCK_BYTES))
            .collect();
        env.read_scatter(addrs);
        env.compute(self.cfg.compute_per_access * self.cfg.accesses_per_step as u64);
        self.iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_sim::engine::SimRng;
    use sweeper_sim::hierarchy::MachineConfig;

    fn drive_step(
        xmem: &mut Xmem,
        core: u16,
        mem: &mut MemorySystem,
        rng: &mut SimRng,
        t: u64,
    ) -> u64 {
        let mut env = CoreEnv::new(core, rng);
        xmem.step(core, &mut env);
        sweeper_core::workload::execute_ops(mem, core, t, env.ops())
    }

    fn setup() -> (Xmem, MemorySystem, SimRng) {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut xmem = Xmem::new(XmemConfig::small_for_tests());
        xmem.setup(0, &mut mem);
        xmem.setup(1, &mut mem);
        (xmem, mem, SimRng::seeded(1))
    }

    #[test]
    fn paper_config_is_2mb() {
        let cfg = XmemConfig::paper_default();
        assert_eq!(cfg.dataset_bytes, 2 << 20);
        assert_eq!(cfg.dataset_blocks(), 32 * 1024);
    }

    #[test]
    fn per_core_datasets_are_private() {
        let (xmem, _mem, _) = setup();
        let a = xmem.dataset_of(0).unwrap();
        let b = xmem.dataset_of(1).unwrap();
        assert_ne!(a, b);
        let bytes = xmem.config().dataset_bytes;
        assert!(a.0 + bytes <= b.0 || b.0 + bytes <= a.0, "must not overlap");
    }

    #[test]
    fn step_consumes_cycles_and_counts() {
        let (mut xmem, mut mem, mut rng) = setup();
        let elapsed = drive_step(&mut xmem, 0, &mut mem, &mut rng, 0);
        assert!(elapsed > 0);
        assert_eq!(xmem.iterations(), 1);
    }

    #[test]
    fn accesses_stay_inside_the_dataset() {
        let (mut xmem, mut mem, mut rng) = setup();
        for i in 0..200u64 {
            drive_step(&mut xmem, 0, &mut mem, &mut rng, i * 1000);
        }
        // Nothing outside the App regions was touched: no RX/TX traffic.
        let counts = mem.stats().combined();
        use sweeper_sim::stats::TrafficClass as T;
        assert_eq!(counts[T::CpuRxRd], 0);
        assert_eq!(counts[T::CpuTxRdWr], 0);
        assert_eq!(counts[T::RxEvct], 0);
        assert_eq!(counts[T::TxEvct], 0);
    }

    #[test]
    fn warm_small_dataset_runs_from_cache() {
        let (mut xmem, mut mem, mut rng) = setup();
        for i in 0..500u64 {
            drive_step(&mut xmem, 0, &mut mem, &mut rng, i * 1000);
        }
        let before = mem.stats().dram_reads.total();
        for i in 500..1_000u64 {
            drive_step(&mut xmem, 0, &mut mem, &mut rng, i * 1000);
        }
        let delta = mem.stats().dram_reads.total() - before;
        assert!(delta < 50, "warm dataset fetched {delta} blocks from DRAM");
    }

    #[test]
    #[should_panic(expected = "setup must run before step")]
    fn step_without_setup_panics() {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut xmem = Xmem::new(XmemConfig::small_for_tests());
        let mut rng = SimRng::seeded(0);
        drive_step(&mut xmem, 0, &mut mem, &mut rng, 0);
    }

    #[test]
    #[should_panic(expected = "dataset too small")]
    fn rejects_tiny_dataset() {
        Xmem::new(XmemConfig {
            dataset_bytes: 32,
            accesses_per_step: 1,
            compute_per_access: 1,
        });
    }
}
