//! A configurable synthetic networked workload.
//!
//! Real applications fix their reference pattern; calibration and sweeps
//! need a dial. [`Synthetic`] services each packet with a parameterized mix
//! of RX-buffer consumption, random reads and sequential writes over a
//! private dataset, and pure compute — enough to place any workload in the
//! compute-bound ↔ memory-bound spectrum, or to emulate a missing
//! application's footprint when reproducing someone else's setup.

use sweeper_core::workload::{CoreEnv, TxAction, Workload};
use sweeper_nic::packet::Packet;
use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::Cycle;
use sweeper_sim::BLOCK_BYTES;

/// Parameters of the synthetic request loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Bytes of the packet consumed from the RX buffer (clamped to the
    /// packet size at run time).
    pub rx_read_bytes: u64,
    /// Random single-block reads over the private dataset per request.
    pub random_reads: u32,
    /// Bytes written sequentially (streaming) into the dataset per request.
    pub stream_write_bytes: u64,
    /// Pure compute per request, cycles.
    pub compute_cycles: Cycle,
    /// Private per-instance dataset size in bytes.
    pub dataset_bytes: u64,
    /// Response payload size in bytes (0 ⇒ no reply).
    pub response_bytes: u64,
}

impl SyntheticConfig {
    /// A compute-bound profile: tiny footprint, long think time.
    pub fn compute_bound() -> Self {
        Self {
            rx_read_bytes: 64,
            random_reads: 0,
            stream_write_bytes: 0,
            compute_cycles: 2_000,
            dataset_bytes: 64 * 1024,
            response_bytes: 64,
        }
    }

    /// A memory-bound profile: heavy random reads over a large dataset.
    pub fn memory_bound() -> Self {
        Self {
            rx_read_bytes: 1024,
            random_reads: 12,
            stream_write_bytes: 1024,
            compute_cycles: 100,
            dataset_bytes: 64 << 20,
            response_bytes: 1024,
        }
    }

    /// A balanced profile resembling a small-object store.
    pub fn balanced() -> Self {
        Self {
            rx_read_bytes: 512,
            random_reads: 2,
            stream_write_bytes: 512,
            compute_cycles: 300,
            dataset_bytes: 16 << 20,
            response_bytes: 512,
        }
    }
}

/// The synthetic workload.
#[derive(Debug)]
pub struct Synthetic {
    cfg: SyntheticConfig,
    dataset: Addr,
    stream_head: u64,
    served: u64,
}

impl Synthetic {
    /// Creates a synthetic workload; the dataset is allocated in
    /// [`Workload::setup`].
    ///
    /// # Panics
    ///
    /// Panics if the dataset cannot hold one stream write or one block.
    pub fn new(cfg: SyntheticConfig) -> Self {
        assert!(
            cfg.dataset_bytes >= cfg.stream_write_bytes.max(BLOCK_BYTES),
            "dataset too small for the configured accesses"
        );
        Self {
            cfg,
            dataset: Addr(0),
            stream_head: 0,
            served: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.cfg
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn setup(&mut self, mem: &mut MemorySystem) {
        self.dataset = mem
            .address_map_mut()
            .alloc(self.cfg.dataset_bytes, RegionKind::App);
    }

    fn handle_packet(&mut self, packet: &Packet, env: &mut CoreEnv<'_>) -> TxAction {
        self.served += 1;
        let rx = self.cfg.rx_read_bytes.min(packet.bytes).max(1);
        env.read(packet.addr, rx);
        if self.cfg.random_reads > 0 {
            let blocks = self.cfg.dataset_bytes / BLOCK_BYTES;
            let addrs = (0..self.cfg.random_reads)
                .map(|_| {
                    self.dataset
                        .offset(env.rng().next_u64_in(blocks) * BLOCK_BYTES)
                })
                .collect();
            env.read_scatter(addrs);
        }
        if self.cfg.stream_write_bytes > 0 {
            let len = self.cfg.stream_write_bytes;
            if self.stream_head + len > self.cfg.dataset_bytes {
                self.stream_head = 0;
            }
            env.write(self.dataset.offset(self.stream_head), len);
            self.stream_head += len;
        }
        env.compute(self.cfg.compute_cycles.max(1));
        if self.cfg.response_bytes == 0 {
            TxAction::None
        } else {
            TxAction::Reply {
                bytes: self.cfg.response_bytes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_core::workload::drive_packet;
    use sweeper_nic::packet::PacketId;
    use sweeper_sim::engine::SimRng;
    use sweeper_sim::hierarchy::MachineConfig;

    fn rx_packet(mem: &mut MemorySystem, bytes: u64) -> Packet {
        let addr = mem.address_map_mut().alloc(bytes, RegionKind::Rx { core: 0 });
        mem.nic_write(addr, bytes, 0);
        Packet {
            id: PacketId(0),
            core: 0,
            bytes,
            arrival: 0,
            delivered: 0,
            addr,
        }
    }

    fn serve_n(cfg: SyntheticConfig, n: u64) -> (Synthetic, MemorySystem, u64) {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut wl = Synthetic::new(cfg);
        wl.setup(&mut mem);
        let pkt = rx_packet(&mut mem, 1024);
        let mut rng = SimRng::seeded(1);
        let mut total = 0;
        for i in 0..n {
            let (_, elapsed) = drive_packet(&mut wl, &pkt, &mut mem, &mut rng, i * 100_000);
            total += elapsed;
        }
        (wl, mem, total)
    }

    #[test]
    fn profiles_have_expected_relative_cost() {
        let (_, _, compute) = serve_n(SyntheticConfig::compute_bound(), 50);
        let (_, _, memory) = serve_n(SyntheticConfig::memory_bound(), 50);
        // Compute-bound: dominated by think cycles, ~2000/request.
        assert!(compute >= 50 * 2_000);
        // Memory-bound on the tiny machine misses constantly.
        assert!(memory > 50 * 500);
    }

    #[test]
    fn stream_writes_wrap_within_dataset() {
        let cfg = SyntheticConfig {
            dataset_bytes: 4 * 1024,
            stream_write_bytes: 1024,
            ..SyntheticConfig::balanced()
        };
        let (wl, _, _) = serve_n(cfg, 37);
        assert!(wl.stream_head <= wl.config().dataset_bytes);
        assert_eq!(wl.served(), 37);
    }

    #[test]
    fn no_response_profile_returns_none() {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut wl = Synthetic::new(SyntheticConfig {
            response_bytes: 0,
            ..SyntheticConfig::compute_bound()
        });
        wl.setup(&mut mem);
        let pkt = rx_packet(&mut mem, 256);
        let mut rng = SimRng::seeded(2);
        let (action, _) = drive_packet(&mut wl, &pkt, &mut mem, &mut rng, 0);
        assert_eq!(action, TxAction::None);
    }

    #[test]
    fn rx_read_is_clamped_to_packet() {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut wl = Synthetic::new(SyntheticConfig {
            rx_read_bytes: 1 << 20,
            ..SyntheticConfig::balanced()
        });
        wl.setup(&mut mem);
        let pkt = rx_packet(&mut mem, 128);
        let mut rng = SimRng::seeded(3);
        let mut env = CoreEnv::new(0, &mut rng);
        wl.handle_packet(&pkt, &mut env);
        let first = env.ops().first().unwrap();
        match first {
            sweeper_core::workload::Op::Read { len, .. } => assert_eq!(*len, 128),
            other => panic!("expected RX read first, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "dataset too small")]
    fn rejects_inconsistent_config() {
        Synthetic::new(SyntheticConfig {
            dataset_bytes: 64,
            stream_write_bytes: 1024,
            ..SyntheticConfig::balanced()
        });
    }
}
