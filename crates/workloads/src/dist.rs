//! Key-popularity distributions.
//!
//! The KVS workload draws keys from a zipf(0.99) distribution over 2.4 M
//! items (Appendix A), the standard YCSB-style skew. [`Zipf`] implements
//! Hörmann & Derflinger's rejection-inversion sampler, which is O(1) per
//! sample and exact for any exponent and population size.

use sweeper_sim::engine::SimRng;

/// Zipf-distributed ranks in `1..=n` with exponent `s`:
/// `P(k) ∝ 1 / k^s`.
///
/// ```
/// use sweeper_workloads::dist::Zipf;
/// use sweeper_sim::engine::SimRng;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = SimRng::seeded(1);
/// let k = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&k));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `s` is negative, not finite, or exactly 1
    /// (the harmonic case is not needed by the paper and is excluded for
    /// numerical simplicity — use e.g. 0.9999 instead).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0 && (s - 1.0).abs() > 1e-9,
            "exponent must be finite, non-negative, and != 1"
        );
        let h = |x: f64| ((1.0 - s) * x.ln()).exp() / (1.0 - s); // x^(1-s)/(1-s)
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let threshold = 2.0 - Self::h_inv_static(s, h(2.5) - (2.0f64).powf(-s));
        Self {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        }
    }

    fn h(&self, x: f64) -> f64 {
        ((1.0 - self.s) * x.ln()).exp() / (1.0 - self.s)
    }

    fn h_inv_static(s: f64, x: f64) -> f64 {
        ((1.0 - s) * x).powf(1.0 / (1.0 - s))
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(self.s, x)
    }

    /// The population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = x.clamp(1.0, self.n as f64).round();
            if k - x <= self.threshold || u >= self.h(k + 0.5) - (-self.s * k.ln()).exp() {
                return k as u64;
            }
        }
    }
}

/// Uniform ranks in `1..=n`; the unskewed counterpart used by tests and the
/// X-Mem tenant.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Creates a sampler over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "population must be non-empty");
        Self { n }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        1 + rng.next_u64_in(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(zipf: &Zipf, samples: usize, seed: u64) -> Vec<u64> {
        let mut rng = SimRng::seeded(seed);
        let mut counts = vec![0u64; zipf.n() as usize + 1];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn zipf_stays_in_range() {
        let zipf = Zipf::new(100, 0.99);
        let mut rng = SimRng::seeded(2);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn zipf_rank1_to_rank2_ratio() {
        let zipf = Zipf::new(1000, 0.99);
        let counts = frequencies(&zipf, 400_000, 3);
        let ratio = counts[1] as f64 / counts[2] as f64;
        let expected = 2.0f64.powf(0.99);
        assert!(
            (ratio - expected).abs() < 0.15,
            "ratio {ratio}, expected {expected}"
        );
    }

    #[test]
    fn zipf_is_skewed_toward_head() {
        let zipf = Zipf::new(10_000, 0.99);
        let counts = frequencies(&zipf, 200_000, 4);
        let head: u64 = counts[1..=100].iter().sum();
        let total: u64 = counts.iter().sum();
        // With s=0.99 and n=10k, the top 1% of keys draw roughly half the
        // traffic.
        assert!(
            head as f64 > 0.4 * total as f64,
            "head fraction {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn zipf_near_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(100, 0.01);
        let counts = frequencies(&zipf, 200_000, 5);
        let max = *counts[1..].iter().max().unwrap() as f64;
        let min = *counts[1..].iter().min().unwrap() as f64;
        assert!(max / min < 1.4, "max {max} min {min}");
    }

    #[test]
    fn zipf_handles_large_population() {
        let zipf = Zipf::new(2_400_000, 0.99); // the paper's KVS population
        let mut rng = SimRng::seeded(6);
        let mut seen_large = false;
        for _ in 0..50_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=2_400_000).contains(&k));
            if k > 100_000 {
                seen_large = true;
            }
        }
        assert!(seen_large, "tail must be reachable");
    }

    #[test]
    fn zipf_is_deterministic() {
        let zipf = Zipf::new(500, 0.99);
        let a: Vec<u64> = {
            let mut rng = SimRng::seeded(7);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SimRng::seeded(7);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_covers_range() {
        let u = Uniform::new(10);
        let mut rng = SimRng::seeded(8);
        let mut seen = [false; 11];
        for _ in 0..1000 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1..=10].iter().all(|&s| s));
        assert!(!seen[0]);
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 0.99);
    }

    #[test]
    #[should_panic(expected = "exponent must be finite")]
    fn zipf_rejects_exponent_one() {
        Zipf::new(10, 1.0);
    }
}
