//! MICA-style key-value store.
//!
//! Reimplements the memory behaviour of the MICA KVS as ported to the
//! Scale-Out NUMA transport (Appendix A): a lossy hash index of 1 M
//! cache-line-sized buckets, a 256 MB circular log partitioned per core, and
//! a write-heavy 5/95 GET/SET mix over 2.4 M items with zipf-0.99 key
//! popularity.
//!
//! Per request the store issues the same reference pattern as MICA:
//!
//! * **SET**: read the request packet (header + key + value) from the RX
//!   buffer, probe the key's bucket, append the value at the owning core's
//!   log head, update the bucket pointer, reply with a small ack.
//! * **GET**: read the request header + key, probe the bucket, read the
//!   item's current log entry, reply with the value.
//!
//! SETs move an item's location to the log head (the live-address table),
//! so hot items exhibit MICA's real locality: their latest value is the most
//! recently written log block.

use sweeper_core::workload::{CoreEnv, TxAction, Workload};
use sweeper_nic::packet::Packet;
use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::Cycle;
use sweeper_sim::BLOCK_BYTES;

use crate::dist::Zipf;

/// Request header size (transport + KVS opcode + key).
pub const HEADER_BYTES: u64 = 64;

/// KVS configuration.
#[derive(Debug, Clone, Copy)]
pub struct KvsConfig {
    /// Number of key-value pairs (Appendix A: 2.4 M).
    pub items: u64,
    /// Number of cache-line-sized index buckets (Appendix A: 1 M).
    pub buckets: u64,
    /// Circular log capacity in bytes (Appendix A: 256 MB).
    pub log_bytes: u64,
    /// Value size in bytes (512 B or 1 KB in the evaluation).
    pub item_bytes: u64,
    /// Fraction of GET requests (Appendix A: 5/95 GET/SET ⇒ 0.05).
    pub get_ratio: f64,
    /// Zipf exponent of key popularity (Appendix A: 0.99).
    pub zipf_exponent: f64,
    /// Fixed per-request compute (hashing, parsing, dispatch), cycles.
    pub compute_cycles: Cycle,
    /// Cores the log is partitioned across (one append head each).
    pub cores: u16,
}

impl KvsConfig {
    /// Appendix A's configuration with 1 KB items on 24 cores.
    pub fn paper_default() -> Self {
        Self {
            items: 2_400_000,
            buckets: 1 << 20,
            log_bytes: 256 << 20,
            item_bytes: 1024,
            get_ratio: 0.05,
            zipf_exponent: 0.99,
            compute_cycles: 150,
            cores: 24,
        }
    }

    /// Same configuration with a different item size (512 B in §VI-A).
    pub fn with_item_bytes(mut self, bytes: u64) -> Self {
        self.item_bytes = bytes;
        self
    }

    /// Scaled-down store for fast unit tests (same structure).
    pub fn small_for_tests() -> Self {
        Self {
            items: 4_096,
            buckets: 1_024,
            log_bytes: 1 << 20,
            item_bytes: 1024,
            get_ratio: 0.05,
            zipf_exponent: 0.99,
            compute_cycles: 200,
            cores: 2,
        }
    }

    /// The request packet size this configuration implies (SETs carry the
    /// value).
    pub fn request_bytes(&self) -> u64 {
        HEADER_BYTES + self.item_bytes
    }
}

/// The MICA-style store.
#[derive(Debug)]
pub struct MicaKvs {
    cfg: KvsConfig,
    buckets_base: Addr,
    log_base: Addr,
    /// Per-core log partition size in bytes (block-aligned).
    partition_bytes: u64,
    /// Per-core append offsets within their partitions.
    log_heads: Vec<u64>,
    /// Current log address of each item (index 0 unused; ranks are 1-based).
    item_addr: Vec<Addr>,
    zipf: Zipf,
    stats: KvsStats,
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvsStats {
    /// GET requests served.
    pub gets: u64,
    /// SET requests served.
    pub sets: u64,
}

impl MicaKvs {
    /// Creates the store; regions are allocated lazily in
    /// [`Workload::setup`].
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero or the log is smaller than one
    /// item per core.
    pub fn new(cfg: KvsConfig) -> Self {
        assert!(cfg.items > 0 && cfg.buckets > 0, "empty store");
        assert!(cfg.cores > 0, "store needs at least one core");
        let slot = Self::slot_bytes(&cfg);
        let partition_bytes = (cfg.log_bytes / cfg.cores as u64) / slot * slot;
        assert!(
            partition_bytes >= slot,
            "log too small for one item per core"
        );
        Self {
            zipf: Zipf::new(cfg.items, cfg.zipf_exponent),
            buckets_base: Addr(0),
            log_base: Addr(0),
            partition_bytes,
            log_heads: vec![0; cfg.cores as usize],
            item_addr: Vec::new(),
            stats: KvsStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &KvsConfig {
        &self.cfg
    }

    /// Operation counters.
    pub fn stats(&self) -> &KvsStats {
        &self.stats
    }

    /// Log slot size: item rounded up to whole blocks (MICA log entries are
    /// 8-byte aligned; block alignment keeps entries from straddling
    /// unrelated lines in the model).
    fn slot_bytes(cfg: &KvsConfig) -> u64 {
        cfg.item_bytes.div_ceil(BLOCK_BYTES) * BLOCK_BYTES
    }

    fn bucket_addr(&self, key: u64) -> Addr {
        // Multiplicative hash to a bucket line.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        self.buckets_base.offset((h % self.cfg.buckets) * BLOCK_BYTES)
    }

    /// Appends an item at `core`'s log head and returns its new address.
    fn append(&mut self, core: u16, key: u64) -> Addr {
        let slot = Self::slot_bytes(&self.cfg);
        let part_base = self.partition_bytes * core as u64;
        let head = &mut self.log_heads[core as usize];
        let addr = self.log_base.offset(part_base + *head);
        *head = (*head + slot) % self.partition_bytes;
        self.item_addr[key as usize] = addr;
        addr
    }
}

impl Workload for MicaKvs {
    fn name(&self) -> &str {
        "mica-kvs"
    }

    fn setup(&mut self, mem: &mut MemorySystem) {
        self.buckets_base = mem
            .address_map_mut()
            .alloc(self.cfg.buckets * BLOCK_BYTES, RegionKind::App);
        self.log_base = mem
            .address_map_mut()
            .alloc(self.cfg.cores as u64 * self.partition_bytes, RegionKind::App);
        // Populate: every item gets an initial log location, spread over the
        // partitions round-robin, as if loaded before the measurement.
        self.item_addr = vec![Addr(0); self.cfg.items as usize + 1];
        for key in 1..=self.cfg.items {
            let core = (key % self.cfg.cores as u64) as u16;
            self.append(core, key);
        }
    }

    fn handle_packet(&mut self, packet: &Packet, env: &mut CoreEnv<'_>) -> TxAction {
        let key = self.zipf.sample(env.rng());
        let is_get = env.rng().chance(self.cfg.get_ratio);
        env.compute(self.cfg.compute_cycles);
        let bucket = self.bucket_addr(key);
        if is_get {
            self.stats.gets += 1;
            // Parse header + key from the RX buffer.
            env.read(packet.addr, HEADER_BYTES.min(packet.bytes));
            env.read(bucket, BLOCK_BYTES);
            let item = self.item_addr[key as usize];
            env.read(item, self.cfg.item_bytes);
            TxAction::Reply {
                bytes: HEADER_BYTES + self.cfg.item_bytes,
            }
        } else {
            self.stats.sets += 1;
            // SETs carry the value: consume the whole request packet.
            env.read(packet.addr, packet.bytes);
            env.read(bucket, BLOCK_BYTES);
            let dest = self.append(env.core(), key);
            env.write(dest, self.cfg.item_bytes);
            env.write(bucket, BLOCK_BYTES);
            TxAction::Reply {
                bytes: HEADER_BYTES,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_nic::packet::PacketId;
    use sweeper_sim::engine::SimRng;
    use sweeper_sim::hierarchy::MachineConfig;

    fn setup() -> (MicaKvs, MemorySystem, SimRng) {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        let mut kvs = MicaKvs::new(KvsConfig::small_for_tests());
        kvs.setup(&mut mem);
        (kvs, mem, SimRng::seeded(1))
    }

    fn drive(
        kvs: &mut MicaKvs,
        pkt: &Packet,
        mem: &mut MemorySystem,
        rng: &mut sweeper_sim::engine::SimRng,
        t: u64,
    ) -> (TxAction, u64) {
        sweeper_core::workload::drive_packet(kvs, pkt, mem, rng, t)
    }

    fn rx_packet(mem: &mut MemorySystem, bytes: u64) -> Packet {
        let addr = mem.address_map_mut().alloc(bytes, RegionKind::Rx { core: 0 });
        mem.nic_write(addr, bytes, 0);
        Packet {
            id: PacketId(0),
            core: 0,
            bytes,
            arrival: 0,
            delivered: 0,
            addr,
        }
    }

    #[test]
    fn config_defaults_match_appendix_a() {
        let cfg = KvsConfig::paper_default();
        assert_eq!(cfg.items, 2_400_000);
        assert_eq!(cfg.buckets, 1 << 20);
        assert_eq!(cfg.log_bytes, 256 << 20);
        assert!((cfg.get_ratio - 0.05).abs() < 1e-12);
        assert!((cfg.zipf_exponent - 0.99).abs() < 1e-12);
        assert_eq!(cfg.request_bytes(), 1024 + 64);
        assert_eq!(cfg.with_item_bytes(512).item_bytes, 512);
    }

    #[test]
    fn setup_allocates_index_and_log() {
        let (kvs, mem, _) = setup();
        let cfg = kvs.config();
        let expected_min = cfg.buckets * BLOCK_BYTES + kvs.partition_bytes * cfg.cores as u64;
        assert!(mem.address_map().allocated_bytes() >= expected_min);
        // Every item has a live address inside the log region.
        for key in 1..=cfg.items {
            let a = kvs.item_addr[key as usize];
            assert!(a.0 >= kvs.log_base.0);
            assert!(a.0 < kvs.log_base.0 + cfg.cores as u64 * kvs.partition_bytes);
        }
    }

    #[test]
    fn requests_mix_is_write_heavy() {
        let (mut kvs, mut mem, mut rng) = setup();
        let pkt = rx_packet(&mut mem, 1024);
        for i in 0..2_000u64 {
            drive(&mut kvs, &pkt, &mut mem, &mut rng, i * 10_000);
        }
        let s = *kvs.stats();
        assert_eq!(s.gets + s.sets, 2_000);
        let get_frac = s.gets as f64 / 2_000.0;
        assert!(
            (get_frac - 0.05).abs() < 0.03,
            "GET fraction {get_frac} should be ~0.05"
        );
    }

    #[test]
    fn get_replies_with_item_and_set_with_ack() {
        let (mut kvs, mut mem, mut rng) = setup();
        let pkt = rx_packet(&mut mem, 1024);
        let mut saw_get = false;
        let mut saw_set = false;
        for i in 0..500u64 {
            let gets_before = kvs.stats().gets;
            match drive(&mut kvs, &pkt, &mut mem, &mut rng, i * 10_000).0 {
                TxAction::Reply { bytes } => {
                    if kvs.stats().gets > gets_before {
                        assert_eq!(bytes, HEADER_BYTES + 1024);
                        saw_get = true;
                    } else {
                        assert_eq!(bytes, HEADER_BYTES);
                        saw_set = true;
                    }
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert!(saw_get && saw_set);
    }

    #[test]
    fn sets_advance_the_log_head_circularly() {
        let (mut kvs, mut mem, mut rng) = setup();
        let pkt = rx_packet(&mut mem, 1024);
        let slot = MicaKvs::slot_bytes(kvs.config());
        let part = kvs.partition_bytes;
        let before = kvs.log_heads[0];
        let sets_before = kvs.stats().sets;
        // Run until we see a SET on core 0.
        for i in 0..100u64 {
            drive(&mut kvs, &pkt, &mut mem, &mut rng, i * 10_000);
            if kvs.stats().sets > sets_before {
                break;
            }
        }
        let advanced = (kvs.log_heads[0] + part - before) % part;
        assert_eq!(advanced % slot, 0);
        assert!(kvs.log_heads[0] < part);
    }

    #[test]
    fn set_relocates_item_to_core_partition() {
        let (mut kvs, _mem, _) = setup();
        let old = kvs.item_addr[5];
        let new = kvs.append(1, 5);
        assert_ne!(old, new);
        assert_eq!(kvs.item_addr[5], new);
        let part_base = kvs.log_base.0 + kvs.partition_bytes;
        assert!(new.0 >= part_base && new.0 < part_base + kvs.partition_bytes);
    }

    #[test]
    fn bucket_addresses_stay_in_index_region() {
        let (kvs, _mem, _) = setup();
        for key in 1..=kvs.config().items {
            let b = kvs.bucket_addr(key);
            assert!(b.0 >= kvs.buckets_base.0);
            assert!(b.0 < kvs.buckets_base.0 + kvs.config().buckets * BLOCK_BYTES);
            assert_eq!((b.0 - kvs.buckets_base.0) % BLOCK_BYTES, 0);
        }
    }

    #[test]
    fn hot_keys_are_cache_friendly() {
        // With zipf 0.99, repeated requests touch few distinct buckets, so
        // service should mostly hit caches: the second half of a run must
        // not fetch dramatically more than the first from DRAM.
        let (mut kvs, mut mem, mut rng) = setup();
        let pkt = rx_packet(&mut mem, 1024);
        for i in 0..200u64 {
            drive(&mut kvs, &pkt, &mut mem, &mut rng, i * 10_000);
        }
        let mid = mem.stats().dram_reads.total();
        for i in 200..400u64 {
            drive(&mut kvs, &pkt, &mut mem, &mut rng, i * 10_000);
        }
        let second_half = mem.stats().dram_reads.total() - mid;
        assert!(second_half <= mid * 2, "no pathological growth");
    }

    #[test]
    #[should_panic(expected = "log too small")]
    fn rejects_undersized_log() {
        let cfg = KvsConfig {
            log_bytes: 64,
            ..KvsConfig::small_for_tests()
        };
        MicaKvs::new(cfg);
    }
}
