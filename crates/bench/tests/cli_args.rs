//! The `perf` harness binary must reject malformed command lines with a
//! one-line error plus usage on stderr and exit code 2 — never a panic.

use std::process::Command;

fn assert_usage_error(args: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_perf"))
        .args(args)
        .output()
        .expect("spawn perf");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {stderr}"
    );
    assert!(
        stderr.contains("error:"),
        "{args:?} should print an error line, got: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} should print usage, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} must not panic, got: {stderr}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&["--no-such-flag"]);
}

#[test]
fn bad_profile_is_a_usage_error() {
    assert_usage_error(&["--profile", "warp-speed"]);
}

#[test]
fn flag_missing_its_value_is_a_usage_error() {
    assert_usage_error(&["--json"]);
}

#[test]
fn missing_baseline_file_is_a_usage_error() {
    assert_usage_error(&["--check", "/nonexistent/baseline.json"]);
}
