//! Criterion micro-benchmarks of the simulator's hot paths: cache probes,
//! DDIO injections, sweep propagation, DRAM timing, zipf sampling, and
//! histogram recording. These guard the simulator's own performance (host
//! wall-time per simulated event), which determines how much of the paper's
//! evaluation fits in a CI budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sweeper_sim::addr::{Addr, BlockAddr, RegionKind};
use sweeper_sim::cache::{CacheGeometry, LineOrigin, SetAssocCache, WayMask};
use sweeper_sim::dram::{Dram, DramConfig, DramOp};
use sweeper_sim::engine::SimRng;
use sweeper_sim::hierarchy::{MachineConfig, MemorySystem};
use sweeper_sim::stats::Histogram;
use sweeper_workloads::dist::Zipf;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));

    let mut llc = SetAssocCache::new(CacheGeometry {
        size_bytes: 36 * 1024 * 1024,
        ways: 12,
        latency: 35,
    });
    for b in 0..600_000u64 {
        llc.insert(BlockAddr(b), b % 2 == 0, LineOrigin::Cpu, WayMask::ALL);
    }
    let mut i = 0u64;
    group.bench_function("llc_lookup_hit", |bench| {
        bench.iter(|| {
            i = (i + 12_345) % 600_000;
            black_box(llc.lookup(BlockAddr(i)))
        })
    });
    group.bench_function("llc_insert_evict", |bench| {
        bench.iter(|| {
            i += 1;
            black_box(llc.insert(
                BlockAddr(1_000_000 + i),
                true,
                LineOrigin::Nic,
                WayMask::first(2),
            ))
        })
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(16));

    let mut mem = MemorySystem::new(MachineConfig::paper_default());
    let rx = mem
        .address_map_mut()
        .alloc(64 << 20, RegionKind::Rx { core: 0 });
    let mut offset = 0u64;
    group.bench_function("ddio_inject_1kb_packet", |bench| {
        bench.iter(|| {
            offset = (offset + 1024) % (64 << 20);
            black_box(mem.nic_write(rx.offset(offset), 1024, offset))
        })
    });

    let mut mem2 = MemorySystem::new(MachineConfig::paper_default());
    let rx2 = mem2
        .address_map_mut()
        .alloc(64 << 20, RegionKind::Rx { core: 0 });
    let mut t = 0u64;
    group.bench_function("rx_lifecycle_with_sweep", |bench| {
        bench.iter(|| {
            t += 1_000;
            let a = rx2.offset((t * 1024) % (64 << 20));
            mem2.nic_write(a, 1024, t);
            mem2.cpu_read(0, a, 1024, t + 100);
            black_box(mem2.sweep_range(a, 1024, t + 200))
        })
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(1));
    let mut dram = Dram::new(DramConfig::paper_default());
    let mut rng = SimRng::seeded(7);
    let mut now = 0u64;
    group.bench_function("random_read", |bench| {
        bench.iter(|| {
            now += 13;
            let b = BlockAddr(rng.next_u64_in(4_000_000));
            black_box(dram.access(b, now, DramOp::Read))
        })
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    group.throughput(Throughput::Elements(1));
    let zipf = Zipf::new(2_400_000, 0.99);
    let mut rng = SimRng::seeded(9);
    group.bench_function("zipf_sample_2_4m", |bench| {
        bench.iter(|| black_box(zipf.sample(&mut rng)))
    });

    let mut hist = Histogram::new();
    let mut v = 0u64;
    group.bench_function("histogram_record", |bench| {
        bench.iter(|| {
            v = (v * 6364136223846793005).wrapping_add(1442695040888963407) % 100_000;
            hist.record(black_box(v));
        })
    });
    group.finish();
}

fn bench_sweep_api(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements(16));
    let mut mem = MemorySystem::new(MachineConfig::paper_default());
    let rx = mem
        .address_map_mut()
        .alloc(1 << 20, RegionKind::Rx { core: 0 });
    let mut t = 0u64;
    group.bench_function("relinquish_1kb_resident", |bench| {
        bench.iter(|| {
            t += 1_000;
            let a = rx.offset((t * 1024) % (1 << 20));
            mem.nic_write(a, 1024, t);
            black_box(sweeper_core::sweep::relinquish(&mut mem, a, 1024, t + 10))
        })
    });
    group.bench_function("relinquish_1kb_absent", |bench| {
        bench.iter(|| {
            t += 1_000;
            black_box(sweeper_core::sweep::relinquish(
                &mut mem,
                Addr((1 << 40) + (t % 4096) * 1024),
                1024,
                t,
            ))
        })
    });
    group.finish();
}

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("check");
    group.throughput(Throughput::Elements(16));

    // The same RX lifecycle as `hierarchy/rx_lifecycle_with_sweep`, but with
    // the correctness harness mirroring every event — the difference between
    // the two is the oracle's per-event cost.
    let mut mem = MemorySystem::new(MachineConfig::paper_default());
    mem.enable_check(sweeper_sim::check::CheckConfig::default());
    let rx = mem
        .address_map_mut()
        .alloc(64 << 20, RegionKind::Rx { core: 0 });
    let mut t = 0u64;
    group.bench_function("rx_lifecycle_checked", |bench| {
        bench.iter(|| {
            t += 1_000;
            let a = rx.offset((t * 1024) % (64 << 20));
            mem.nic_write(a, 1024, t);
            mem.cpu_read(0, a, 1024, t + 100);
            mem.mark_consumed(a, 1024);
            black_box(mem.sweep_range(a, 1024, t + 200))
        })
    });

    // The on-demand invariant walk over a populated hierarchy — the cost
    // `walk_every_requests` amortises.
    group.throughput(Throughput::Elements(1));
    group.bench_function("invariant_walk", |bench| {
        bench.iter(|| {
            mem.check_walk();
            black_box(())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_hierarchy,
    bench_dram,
    bench_distributions,
    bench_sweep_api,
    bench_check
);
criterion_main!(benches);
