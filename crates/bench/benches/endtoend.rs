//! Criterion end-to-end benchmarks: wall-time to simulate a fixed slice of
//! each paper workload under each injection policy. One benchmark per
//! evaluated table/figure family, so regressions in simulator performance
//! (or accidental work blow-ups in one configuration) show up per-scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::server::{RunOptions, SweeperMode};
use sweeper_sim::hierarchy::InjectionPolicy;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use sweeper_workloads::l3fwd::{L3Forwarder, L3fwdConfig};

fn small_opts() -> RunOptions {
    RunOptions {
        warmup_requests: 500,
        measure_requests: 2_000,
        max_cycles: 60_000_000_000,
        min_warmup_cycles: 0,
        min_measure_cycles: 0,
    }
}

/// Figure 1/5 family: KVS under each injection policy.
fn bench_kvs_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_2500_requests");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_500));
    let points: [(&str, InjectionPolicy, SweeperMode); 4] = [
        ("dma", InjectionPolicy::Dma, SweeperMode::Disabled),
        ("ddio2", InjectionPolicy::Ddio, SweeperMode::Disabled),
        ("ddio2_sweeper", InjectionPolicy::Ddio, SweeperMode::Enabled),
        ("ideal", InjectionPolicy::Ideal, SweeperMode::Disabled),
    ];
    for (name, policy, sweeper) in points {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let cfg = ExperimentConfig::paper_default()
                    .injection(policy)
                    .ddio_ways(2)
                    .sweeper(sweeper)
                    .rx_buffers_per_core(512)
                    .packet_bytes(1024 + HEADER_BYTES)
                    .run_options(small_opts());
                Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default()))
                    .run_at_rate(15.0e6)
                    .completed
            })
        });
    }
    group.finish();
}

/// Figure 2/7 family: keep-queued L3fwd.
fn bench_l3fwd_keepqueued(c: &mut Criterion) {
    let mut group = c.benchmark_group("l3fwd_keepqueued_2500_requests");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_500));
    for depth in [50usize, 250] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                let cfg = ExperimentConfig::paper_default()
                    .ddio_ways(2)
                    .rx_buffers_per_core(512)
                    .packet_bytes(1024)
                    .run_options(small_opts());
                Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l2_resident()))
                    .run_keep_queued(d)
                    .completed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kvs_policies, bench_l3fwd_keepqueued);
criterion_main!(benches);
