//! Shared driver code for the benchmark harness that regenerates every
//! table and figure of *"Patching up Network Data Leaks with Sweeper"*.
//!
//! Each figure is a [`figs::Figure`] in the shared registry: it enumerates
//! its sweep as self-describing
//! [`ExperimentPoint`](sweeper_core::fleet::ExperimentPoint)s and renders
//! the collected outcomes into the paper's tables, writing each one to
//! `results/<name>.csv` plus a schema-tagged `results/<name>.json` sidecar
//! (the directory is created on demand). The dedicated binaries in
//! `src/bin/` (`fig1` … `fig10`, `table1`, `ablations`, `all`) all dispatch
//! through [`run_figure`], so every figure inherits:
//!
//! * **parallelism** — points fan out across a
//!   [`Fleet`](sweeper_core::fleet::Fleet) worker pool (`--jobs N` or
//!   `SWEEPER_JOBS`, default = available parallelism) with identical
//!   results for any worker count,
//! * **run profiles** — `--profile full|fast|smoke` (or `SWEEPER_PROFILE`;
//!   a non-empty legacy `SWEEPER_FAST` still selects `fast`) parsed once
//!   into a typed [`RunProfile`],
//! * **output formats** — `--format text|json|csv` selects how emitted
//!   tables print to stdout; the on-disk artifacts are written regardless,
//! * **timing** — per-point wall time on stderr and per-figure totals.

pub mod figs;

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::fleet::Fleet;
use sweeper_core::profile::RunProfile;
use sweeper_core::server::{RunOptions, RunReport, SweeperMode};
use sweeper_core::telemetry::{
    document, CsvTable, OutputFormat, Record, RunManifest, Value, FIGURE_TABLE_SCHEMA,
};
use sweeper_sim::hierarchy::InjectionPolicy;
use sweeper_sim::stats::TrafficClass;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use sweeper_workloads::l3fwd::{L3Forwarder, L3fwdConfig};

/// Everything a figure needs to execute: the run-length profile and the
/// worker fleet. Parsed once (environment + flags) and threaded through
/// the registry.
#[derive(Debug, Clone)]
pub struct FigContext {
    /// Run-length profile for every experiment of the figure.
    pub profile: RunProfile,
    /// Worker pool the figure's points fan out across.
    pub fleet: Fleet,
    /// Stdout format for emitted tables (`--format`). The CSV and JSON
    /// artifacts under `results/` are written for every format.
    pub format: OutputFormat,
}

impl FigContext {
    /// Context from the environment alone (`SWEEPER_PROFILE`/`SWEEPER_FAST`
    /// and `SWEEPER_JOBS`).
    pub fn from_env() -> Self {
        Self {
            profile: RunProfile::from_env(),
            fleet: Fleet::from_env(),
            format: OutputFormat::Text,
        }
    }

    /// Context from the environment with command-line overrides — the
    /// shared flag parser of every figure binary. Recognized flags:
    /// `--jobs N`, `--profile full|fast|smoke`, and
    /// `--format text|json|csv`.
    pub fn from_env_and_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut ctx = Self::from_env();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--jobs" => {
                    let v = it.next().ok_or("flag --jobs needs a value")?;
                    let jobs: usize = v.parse().map_err(|_| format!("invalid --jobs '{v}'"))?;
                    ctx.fleet = Fleet::new(jobs);
                }
                "--profile" => {
                    let v = it.next().ok_or("flag --profile needs a value")?;
                    ctx.profile = v.parse()?;
                }
                "--format" => {
                    let v = it.next().ok_or("flag --format needs a value")?;
                    ctx.format = v.parse()?;
                }
                other => {
                    return Err(format!(
                        "unknown flag '{other}' (figure binaries take --jobs N, --profile full|fast|smoke, and --format text|json|csv)"
                    ))
                }
            }
        }
        Ok(ctx)
    }
}

/// Runs one registered figure (or `table1`) under `ctx`. The single entry
/// point behind every binary and the CLI's `figure` command.
pub fn run_figure(name: &str, ctx: &FigContext) -> Result<(), String> {
    set_stdout_format(ctx.format);
    if name == "table1" {
        figs::table1::run();
        return Ok(());
    }
    let figure = figs::find(name).ok_or_else(|| {
        format!(
            "unknown figure '{name}' (available: table1, {})",
            figs::registry()
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let t = std::time::Instant::now();
    eprintln!(
        "[{}] {} — {} points, {} workers, profile {}",
        figure.name(),
        figure.description(),
        figure.points(ctx.profile).len(),
        ctx.fleet.jobs(),
        ctx.profile,
    );
    figure.run(ctx);
    eprintln!("[{}] done in {:.1?}", figure.name(), t.elapsed());
    Ok(())
}

/// `main` of every figure binary: parse the shared flags, run the figure,
/// exit non-zero on a usage error.
pub fn figure_main(name: &str) {
    let ctx = match FigContext::from_env_and_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run_figure(name, &ctx) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

/// Run lengths for Poisson load sweeps under a [`RunProfile`].
///
/// The warmup must cycle each core's RX ring at least once so that
/// steady-state buffer churn — the phenomenon under study — is in effect
/// when measurement starts; [`ring_warmup`] computes that floor and the
/// experiment builders apply it.
pub fn figure_run_options(profile: RunProfile) -> RunOptions {
    match profile {
        RunProfile::Full => RunOptions {
            warmup_requests: 10_000,
            measure_requests: 30_000,
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        },
        RunProfile::Fast => RunOptions {
            warmup_requests: 4_000,
            measure_requests: 8_000,
            max_cycles: 60_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        },
        RunProfile::Smoke => RunOptions {
            warmup_requests: 1_000,
            measure_requests: 2_000,
            max_cycles: 30_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        },
    }
}

/// Warmup floor guaranteeing ≥1.2 ring wraps on every core.
pub fn ring_warmup(active_cores: u16, rx_entries: usize) -> u64 {
    (active_cores as u64 * rx_entries as u64 * 12) / 10
}

/// Run lengths whose warmup fully wraps the RX rings (used by the
/// keep-queued L3fwd scenarios and any deep-ring configuration).
///
/// The ring-wrap floor is physics, not budget, so it applies under every
/// profile — a smoke run of a deep-ring scenario is still a *valid* (if
/// noisy) run.
pub fn wrapped_run_options(
    profile: RunProfile,
    active_cores: u16,
    rx_entries: usize,
) -> RunOptions {
    let base = figure_run_options(profile);
    RunOptions {
        warmup_requests: base
            .warmup_requests
            .max(ring_warmup(active_cores, rx_entries)),
        ..base
    }
}

/// A named system configuration of the paper's baselines sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemPoint {
    /// Injection policy.
    pub policy: InjectionPolicy,
    /// DDIO ways (ignored for DMA/Ideal).
    pub ddio_ways: u32,
    /// Sweeper on/off.
    pub sweeper: SweeperMode,
}

impl SystemPoint {
    /// Conventional DMA.
    pub fn dma() -> Self {
        Self {
            policy: InjectionPolicy::Dma,
            ddio_ways: 2,
            sweeper: SweeperMode::Disabled,
        }
    }

    /// DDIO with `ways` LLC ways.
    pub fn ddio(ways: u32) -> Self {
        Self {
            policy: InjectionPolicy::Ddio,
            ddio_ways: ways,
            sweeper: SweeperMode::Disabled,
        }
    }

    /// DDIO with `ways` LLC ways plus Sweeper.
    pub fn ddio_sweeper(ways: u32) -> Self {
        Self {
            policy: InjectionPolicy::Ddio,
            ddio_ways: ways,
            sweeper: SweeperMode::Enabled,
        }
    }

    /// The unrealistic infinite network cache.
    pub fn ideal() -> Self {
        Self {
            policy: InjectionPolicy::Ideal,
            ddio_ways: 2,
            sweeper: SweeperMode::Disabled,
        }
    }

    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        match self.policy {
            InjectionPolicy::Dma => "DMA".to_string(),
            InjectionPolicy::Ideal => "Ideal DDIO".to_string(),
            InjectionPolicy::Ddio => {
                format!("DDIO {} Ways{}", self.ddio_ways, self.sweeper.suffix())
            }
        }
    }

    /// Applies this point to an experiment configuration.
    pub fn apply(&self, cfg: ExperimentConfig) -> ExperimentConfig {
        cfg.injection(self.policy)
            .ddio_ways(self.ddio_ways)
            .sweeper(self.sweeper)
    }
}

/// Builds a KVS experiment at paper scale.
///
/// `item_bytes` is the KVS value size (request packets carry
/// `item + header`); `rx_buffers` the per-core ring depth.
pub fn kvs_experiment(
    profile: RunProfile,
    point: SystemPoint,
    item_bytes: u64,
    rx_buffers: usize,
    channels: usize,
) -> Experiment {
    let kvs_cfg = KvsConfig::paper_default().with_item_bytes(item_bytes);
    point
        .apply(
            ExperimentConfig::paper_default()
                .rx_buffers_per_core(rx_buffers)
                .packet_bytes(item_bytes + HEADER_BYTES)
                .channels(channels)
                .run_options(wrapped_run_options(profile, 24, rx_buffers)),
        )
        .experiment(move || MicaKvs::new(kvs_cfg))
}

/// Builds an L3fwd experiment at paper scale (copy-out transmit path,
/// L2-resident 16 k-rule table as in §IV-B).
pub fn l3fwd_experiment(profile: RunProfile, point: SystemPoint, rx_buffers: usize) -> Experiment {
    point
        .apply(
            ExperimentConfig::paper_default()
                .rx_buffers_per_core(rx_buffers)
                .packet_bytes(1024)
                .run_options(wrapped_run_options(profile, 24, rx_buffers)),
        )
        .experiment(|| L3Forwarder::new(L3fwdConfig::l2_resident()))
}

/// One row of a memory-access-per-request breakdown (Figures 1c/2c/5c/7b).
pub fn breakdown_row(report: &RunReport) -> Vec<(TrafficClass, f64)> {
    report.accesses_per_request()
}

/// Formats a breakdown as the paper's stacked-bar data.
pub fn format_breakdown(report: &RunReport) -> String {
    let mut out = String::new();
    for (class, v) in report.accesses_per_request() {
        if v >= 0.005 {
            let _ = write!(out, "{class}={v:.2} ");
        }
    }
    let _ = write!(out, "| total={:.1}", report.total_accesses_per_request());
    out
}

/// Stdout format applied by [`Table::emit`], set once per process by
/// [`run_figure`] from the parsed `--format` flag. A process-wide knob
/// (rather than a parameter) so the figure implementations keep calling
/// `table.emit(name)` without threading the context through every
/// `render`.
static STDOUT_FORMAT: AtomicU8 = AtomicU8::new(0);

/// Sets the stdout format for every subsequent [`Table::emit`].
pub fn set_stdout_format(format: OutputFormat) {
    let v = match format {
        OutputFormat::Text => 0,
        OutputFormat::Json => 1,
        OutputFormat::Csv => 2,
    };
    STDOUT_FORMAT.store(v, Ordering::Relaxed);
}

fn stdout_format() -> OutputFormat {
    match STDOUT_FORMAT.load(Ordering::Relaxed) {
        1 => OutputFormat::Json,
        2 => OutputFormat::Csv,
        _ => OutputFormat::Text,
    }
}

/// Simple fixed-width table printer for the figure binaries.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// The table as manifest-commented CSV in the shared dialect.
    pub fn to_csv(&self, name: &str) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        let mut csv = CsvTable::new(&headers)
            .comments(&RunManifest::new().to_comments())
            .comment("artifact", name)
            .comment("title", self.title.as_str());
        for row in &self.rows {
            csv.row(row.clone());
        }
        csv.to_csv()
    }

    /// The table as a schema-tagged JSON document — the `.json` sidecar
    /// written next to each `.csv`.
    pub fn to_document(&self, name: &str) -> Record {
        let headers: Vec<Value> = self.headers.iter().map(|h| Value::from(h.as_str())).collect();
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|row| {
                Value::from(
                    row.iter()
                        .map(|c| Value::from(c.as_str()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let body = Record::new()
            .with("name", name)
            .with("title", self.title.as_str())
            .with("headers", headers)
            .with("rows", rows);
        document(FIGURE_TABLE_SCHEMA, &RunManifest::new(), "table", body)
    }

    /// Writes `results/<name>.csv` and its `results/<name>.json` sidecar,
    /// creating `results/` if needed.
    pub fn write_artifacts(&self, name: &str) -> std::io::Result<()> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv(name))?;
        let json = format!("{}\n", self.to_document(name).to_json_pretty());
        std::fs::write(dir.join(format!("{name}.json")), json)?;
        Ok(())
    }

    /// Prints the table to stdout (in the process-wide `--format`) and
    /// writes the `results/` artifacts. Write failures are reported on
    /// stderr rather than silently dropped.
    pub fn emit(&self, name: &str) {
        match stdout_format() {
            OutputFormat::Text => println!("{}", self.render()),
            OutputFormat::Json => println!("{}", self.to_document(name).to_json_pretty()),
            OutputFormat::Csv => print!("{}", self.to_csv(name)),
        }
        if let Err(e) = self.write_artifacts(name) {
            eprintln!("warning: could not write results/{name}.csv|json: {e}");
        }
    }
}

/// Convenience: formats a float with two decimals.
pub fn f1(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_point_labels_match_paper_legends() {
        assert_eq!(SystemPoint::dma().label(), "DMA");
        assert_eq!(SystemPoint::ddio(4).label(), "DDIO 4 Ways");
        assert_eq!(
            SystemPoint::ddio_sweeper(2).label(),
            "DDIO 2 Ways + Sweeper"
        );
        assert_eq!(SystemPoint::ideal().label(), "Ideal DDIO");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4444".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn run_options_are_nontrivial_and_ordered() {
        let full = figure_run_options(RunProfile::Full);
        assert!(full.measure_requests >= 6_000);
        assert!(full.warmup_requests > 0);
        let fast = figure_run_options(RunProfile::Fast);
        let smoke = figure_run_options(RunProfile::Smoke);
        assert!(full.measure_requests > fast.measure_requests);
        assert!(fast.measure_requests > smoke.measure_requests);
        assert!(smoke.measure_requests > 0);
    }

    #[test]
    fn experiment_builders_produce_runnable_experiments() {
        // Smallest viable smoke: tiny rate, few requests via the fast path.
        let exp = kvs_experiment(RunProfile::Smoke, SystemPoint::ideal(), 512, 64, 4);
        assert!(exp.config().rx_footprint_bytes() > 0);
        let exp2 = l3fwd_experiment(RunProfile::Smoke, SystemPoint::ddio(2), 64);
        assert!(exp2.config().machine().ddio_ways == 2);
    }

    #[test]
    fn fig_context_parses_flags() {
        let ctx = FigContext::from_env_and_args(
            ["--jobs", "3", "--profile", "smoke", "--format", "json"].map(String::from),
        )
        .unwrap();
        assert_eq!(ctx.fleet.jobs(), 3);
        assert_eq!(ctx.profile, RunProfile::Smoke);
        assert_eq!(ctx.format, OutputFormat::Json);
        assert!(FigContext::from_env_and_args(["--bogus".to_string()]).is_err());
        assert!(FigContext::from_env_and_args(["--jobs".to_string()]).is_err());
        assert!(
            FigContext::from_env_and_args(["--format", "yaml"].map(String::from)).is_err()
        );
    }

    #[test]
    fn run_figure_rejects_unknown_names() {
        let ctx = FigContext {
            profile: RunProfile::Smoke,
            fleet: Fleet::sequential().quiet(),
            format: OutputFormat::Text,
        };
        let err = run_figure("fig99", &ctx).unwrap_err();
        assert!(err.contains("fig1"), "error should list figures: {err}");
    }

    #[test]
    fn table_artifacts_share_the_manifest() {
        let mut t = Table::new("demo, with comma", &["config", "Mrps"]);
        t.row(vec!["DDIO 2 Ways".into(), "26.10".into()]);

        let csv = t.to_csv("demo");
        assert!(csv.starts_with("# tool: sweeper\n"));
        assert!(csv.contains("# artifact: demo\n"));
        assert!(csv.contains("# title: demo, with comma\n"));
        assert!(csv.contains("\nconfig,Mrps\n"));
        assert!(csv.ends_with("DDIO 2 Ways,26.10\n"));

        let doc = t.to_document("demo");
        assert_eq!(
            doc.get("schema"),
            Some(&Value::Str(FIGURE_TABLE_SCHEMA.into()))
        );
        let Some(Value::Record(table)) = doc.get("table") else {
            panic!("missing table section");
        };
        assert_eq!(table.get("name"), Some(&Value::Str("demo".into())));
        let Some(Value::Array(rows)) = table.get("rows") else {
            panic!("missing rows");
        };
        assert_eq!(rows.len(), 1);
    }
}
