//! Shared driver code for the benchmark harness that regenerates every
//! table and figure of *"Patching up Network Data Leaks with Sweeper"*.
//!
//! Each figure has a dedicated binary in `src/bin/` (`fig1` … `fig10`,
//! `table1`); `all` runs the complete evaluation. The binaries print the
//! same rows/series the paper reports and, when a `results/` directory
//! exists, also write CSV files for plotting.
//!
//! Run lengths honour the `SWEEPER_FAST` environment variable (any non-empty
//! value quarters the measured requests) so CI can smoke the harness
//! quickly.

pub mod figs;

use std::fmt::Write as _;
use std::path::PathBuf;

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::server::{RunOptions, RunReport, SweeperMode};
use sweeper_sim::hierarchy::InjectionPolicy;
use sweeper_sim::stats::TrafficClass;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use sweeper_workloads::l3fwd::{L3Forwarder, L3fwdConfig};

/// Whether the quick smoke mode is requested.
pub fn fast_mode() -> bool {
    std::env::var("SWEEPER_FAST").is_ok_and(|v| !v.is_empty())
}

/// Run lengths for Poisson load sweeps, scaled down under `SWEEPER_FAST`.
///
/// The warmup must cycle each core's RX ring at least once so that
/// steady-state buffer churn — the phenomenon under study — is in effect
/// when measurement starts; [`ring_warmup`] computes that floor and the
/// experiment builders apply it.
pub fn figure_run_options() -> RunOptions {
    if fast_mode() {
        RunOptions {
            warmup_requests: 4_000,
            measure_requests: 8_000,
            max_cycles: 60_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        }
    } else {
        RunOptions {
            warmup_requests: 10_000,
            measure_requests: 30_000,
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        }
    }
}

/// Warmup floor guaranteeing ≥1.2 ring wraps on every core.
pub fn ring_warmup(active_cores: u16, rx_entries: usize) -> u64 {
    (active_cores as u64 * rx_entries as u64 * 12) / 10
}

/// Run lengths whose warmup fully wraps the RX rings (used by the
/// keep-queued L3fwd scenarios and any deep-ring configuration).
pub fn wrapped_run_options(active_cores: u16, rx_entries: usize) -> RunOptions {
    let base = figure_run_options();
    RunOptions {
        warmup_requests: base
            .warmup_requests
            .max(ring_warmup(active_cores, rx_entries)),
        ..base
    }
}

/// A named system configuration of the paper's baselines sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemPoint {
    /// Injection policy.
    pub policy: InjectionPolicy,
    /// DDIO ways (ignored for DMA/Ideal).
    pub ddio_ways: u32,
    /// Sweeper on/off.
    pub sweeper: SweeperMode,
}

impl SystemPoint {
    /// Conventional DMA.
    pub fn dma() -> Self {
        Self {
            policy: InjectionPolicy::Dma,
            ddio_ways: 2,
            sweeper: SweeperMode::Disabled,
        }
    }

    /// DDIO with `ways` LLC ways.
    pub fn ddio(ways: u32) -> Self {
        Self {
            policy: InjectionPolicy::Ddio,
            ddio_ways: ways,
            sweeper: SweeperMode::Disabled,
        }
    }

    /// DDIO with `ways` LLC ways plus Sweeper.
    pub fn ddio_sweeper(ways: u32) -> Self {
        Self {
            policy: InjectionPolicy::Ddio,
            ddio_ways: ways,
            sweeper: SweeperMode::Enabled,
        }
    }

    /// The unrealistic infinite network cache.
    pub fn ideal() -> Self {
        Self {
            policy: InjectionPolicy::Ideal,
            ddio_ways: 2,
            sweeper: SweeperMode::Disabled,
        }
    }

    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        match self.policy {
            InjectionPolicy::Dma => "DMA".to_string(),
            InjectionPolicy::Ideal => "Ideal DDIO".to_string(),
            InjectionPolicy::Ddio => {
                format!("DDIO {} Ways{}", self.ddio_ways, self.sweeper.suffix())
            }
        }
    }

    /// Applies this point to an experiment configuration.
    pub fn apply(&self, cfg: ExperimentConfig) -> ExperimentConfig {
        cfg.injection(self.policy)
            .ddio_ways(self.ddio_ways)
            .sweeper(self.sweeper)
    }
}

/// Builds a KVS experiment at paper scale.
///
/// `item_bytes` is the KVS value size (request packets carry
/// `item + header`); `rx_buffers` the per-core ring depth.
pub fn kvs_experiment(
    point: SystemPoint,
    item_bytes: u64,
    rx_buffers: usize,
    channels: usize,
) -> Experiment {
    let kvs_cfg = KvsConfig::paper_default().with_item_bytes(item_bytes);
    let cfg = point.apply(
        ExperimentConfig::paper_default()
            .rx_buffers_per_core(rx_buffers)
            .packet_bytes(item_bytes + HEADER_BYTES)
            .channels(channels)
            .run_options(wrapped_run_options(24, rx_buffers)),
    );
    Experiment::new(cfg, move || MicaKvs::new(kvs_cfg))
}

/// Builds an L3fwd experiment at paper scale (copy-out transmit path,
/// L2-resident 16 k-rule table as in §IV-B).
pub fn l3fwd_experiment(point: SystemPoint, rx_buffers: usize) -> Experiment {
    let cfg = point.apply(
        ExperimentConfig::paper_default()
            .rx_buffers_per_core(rx_buffers)
            .packet_bytes(1024)
            .run_options(wrapped_run_options(24, rx_buffers)),
    );
    Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l2_resident()))
}

/// One row of a memory-access-per-request breakdown (Figures 1c/2c/5c/7b).
pub fn breakdown_row(report: &RunReport) -> Vec<(TrafficClass, f64)> {
    report.accesses_per_request()
}

/// Formats a breakdown as the paper's stacked-bar data.
pub fn format_breakdown(report: &RunReport) -> String {
    let mut out = String::new();
    for (class, v) in report.accesses_per_request() {
        if v >= 0.005 {
            let _ = write!(out, "{class}={v:.2} ");
        }
    }
    let _ = write!(out, "| total={:.1}", report.total_accesses_per_request());
    out
}

/// Simple fixed-width table printer for the figure binaries.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout and, if `results/` exists, writes
    /// `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = PathBuf::from("results");
        if dir.is_dir() {
            let mut csv = String::new();
            let _ = writeln!(csv, "{}", self.headers.join(","));
            for row in &self.rows {
                let _ = writeln!(csv, "{}", row.join(","));
            }
            let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
        }
    }
}

/// Convenience: formats a float with two decimals.
pub fn f1(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_point_labels_match_paper_legends() {
        assert_eq!(SystemPoint::dma().label(), "DMA");
        assert_eq!(SystemPoint::ddio(4).label(), "DDIO 4 Ways");
        assert_eq!(
            SystemPoint::ddio_sweeper(2).label(),
            "DDIO 2 Ways + Sweeper"
        );
        assert_eq!(SystemPoint::ideal().label(), "Ideal DDIO");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4444".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn run_options_are_nontrivial() {
        let opts = figure_run_options();
        assert!(opts.measure_requests >= 6_000);
        assert!(opts.warmup_requests > 0);
    }

    #[test]
    fn experiment_builders_produce_runnable_experiments() {
        // Smallest viable smoke: tiny rate, few requests via the fast path.
        let exp = kvs_experiment(SystemPoint::ideal(), 512, 64, 4);
        assert!(exp.config().rx_footprint_bytes() > 0);
        let exp2 = l3fwd_experiment(SystemPoint::ddio(2), 64);
        assert!(exp2.config().machine().ddio_ways == 2);
    }
}
