//! Figure 2 — *L3 forwarder NF demonstrating performance effect of network
//! data leaks* (§IV-B).
//!
//! L3fwd with 1 KB packets and 2048 RX buffers per core, operated with the
//! keep-queued load generator so each core's RX queue always holds at least
//! *D* unconsumed packets (batching-of-degree-D emulation); D ∈
//! {50, 250, 450}; DDIO {2, 6, 12} ways and Ideal-DDIO.

use crate::{f1, format_breakdown, l3fwd_experiment, SystemPoint, Table};

/// Queued-packets depths swept on the x-axis.
pub const DEPTHS: [usize; 3] = [50, 250, 450];

/// The §IV-B configurations.
pub fn points() -> Vec<SystemPoint> {
    vec![
        SystemPoint::ddio(2),
        SystemPoint::ddio(6),
        SystemPoint::ddio(12),
        SystemPoint::ideal(),
    ]
}

/// Runs the experiment and emits the three sub-figures.
pub fn run() {
    let mut fig_a = Table::new(
        "Figure 2a — L3fwd throughput (Mrps) under queued packets D",
        &["config", "D=50", "D=250", "D=450"],
    );
    let mut fig_b = Table::new(
        "Figure 2b — memory bandwidth (GB/s)",
        &["config", "D=50", "D=250", "D=450"],
    );
    let mut fig_c = Table::new(
        "Figure 2c — memory accesses per packet processed",
        &["D", "config", "breakdown"],
    );

    for point in points() {
        let mut tputs = vec![point.label()];
        let mut bws = vec![point.label()];
        for depth in DEPTHS {
            let exp = l3fwd_experiment(point, 2048);
            let report = exp.run_keep_queued(depth);
            tputs.push(f1(report.throughput_mrps()));
            bws.push(f1(report.memory_bandwidth_gbps()));
            fig_c.row(vec![
                depth.to_string(),
                point.label(),
                format_breakdown(&report),
            ]);
            eprintln!(
                "[fig2] {} D={depth}: {:.1} Mrps",
                point.label(),
                report.throughput_mrps()
            );
        }
        fig_a.row(tputs);
        fig_b.row(bws);
    }

    fig_a.emit("fig2a");
    fig_b.emit("fig2b");
    fig_c.emit("fig2c");
}
