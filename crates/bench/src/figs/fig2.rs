//! Figure 2 — *L3 forwarder NF demonstrating performance effect of network
//! data leaks* (§IV-B).
//!
//! L3fwd with 1 KB packets and 2048 RX buffers per core, operated with the
//! keep-queued load generator so each core's RX queue always holds at least
//! *D* unconsumed packets (batching-of-degree-D emulation); D ∈
//! {50, 250, 450}; DDIO {2, 6, 12} ways and Ideal-DDIO.

use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;

use super::Figure;
use crate::{f1, format_breakdown, l3fwd_experiment, SystemPoint, Table};

/// Queued-packets depths swept on the x-axis.
pub const DEPTHS: [usize; 3] = [50, 250, 450];

/// The §IV-B configurations.
pub fn configs() -> Vec<SystemPoint> {
    vec![
        SystemPoint::ddio(2),
        SystemPoint::ddio(6),
        SystemPoint::ddio(12),
        SystemPoint::ideal(),
    ]
}

/// The §IV-B keep-queued L3fwd sweep.
pub struct Fig2;

impl Figure for Fig2 {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn description(&self) -> &'static str {
        "L3fwd under queued packets: throughput, bandwidth, breakdown (§IV-B)"
    }

    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        let mut out = Vec::new();
        for point in configs() {
            for depth in DEPTHS {
                out.push(ExperimentPoint::keep_queued(
                    format!("{} D={depth}", point.label()),
                    l3fwd_experiment(profile, point, 2048),
                    depth,
                ));
            }
        }
        out
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let mut fig_a = Table::new(
            "Figure 2a — L3fwd throughput (Mrps) under queued packets D",
            &["config", "D=50", "D=250", "D=450"],
        );
        let mut fig_b = Table::new(
            "Figure 2b — memory bandwidth (GB/s)",
            &["config", "D=50", "D=250", "D=450"],
        );
        let mut fig_c = Table::new(
            "Figure 2c — memory accesses per packet processed",
            &["D", "config", "breakdown"],
        );

        let mut rows = outcomes.chunks_exact(DEPTHS.len());
        for point in configs() {
            let row = rows.next().expect("one outcome row per config");
            let mut tputs = vec![point.label()];
            let mut bws = vec![point.label()];
            for (depth, outcome) in DEPTHS.iter().zip(row) {
                tputs.push(f1(outcome.throughput_mrps()));
                bws.push(f1(outcome.report.memory_bandwidth_gbps()));
                fig_c.row(vec![
                    depth.to_string(),
                    point.label(),
                    format_breakdown(&outcome.report),
                ]);
            }
            fig_a.row(tputs);
            fig_b.row(bws);
        }

        fig_a.emit("fig2a");
        fig_b.emit("fig2b");
        fig_c.emit("fig2c");
    }
}
