//! Figure 7 — *Sweeper's effect on premature buffer evictions* (§VI-C).
//!
//! Revisits §IV-B's deep-queue L3fwd scenarios (D ∈ {250, 450}) with
//! Sweeper. The signature check: with Sweeper enabled, the remaining RX
//! evictions exactly match the CPU's RX read misses — every residual leak
//! is a premature eviction, consumed-buffer evictions are gone.

use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;
use sweeper_sim::stats::TrafficClass;

use super::Figure;
use crate::{f1, format_breakdown, l3fwd_experiment, SystemPoint, Table};

/// Queued depths revisited from §IV-B.
pub const DEPTHS: [usize; 2] = [250, 450];

/// The §VI-C configurations.
pub fn configs() -> Vec<SystemPoint> {
    let mut out = Vec::new();
    for ways in [2, 6, 12] {
        out.push(SystemPoint::ddio(ways));
        out.push(SystemPoint::ddio_sweeper(ways));
    }
    out.push(SystemPoint::ideal());
    out
}

/// The §VI-C premature-evictions check.
pub struct Fig7;

impl Figure for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "Sweeper vs premature buffer evictions on deep-queue L3fwd (§VI-C)"
    }

    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        let mut out = Vec::new();
        for point in configs() {
            for depth in DEPTHS {
                out.push(ExperimentPoint::keep_queued(
                    format!("{} D={depth}", point.label()),
                    l3fwd_experiment(profile, point, 2048),
                    depth,
                ));
            }
        }
        out
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let mut fig_a = Table::new(
            "Figure 7a — L3fwd throughput (Mrps) with deep queues",
            &["config", "D=250", "D=450"],
        );
        let mut fig_b = Table::new(
            "Figure 7b — memory accesses per packet processed",
            &["D", "config", "RX Evct", "CPU RX Rd", "breakdown"],
        );

        let mut rows = outcomes.chunks_exact(DEPTHS.len());
        for point in configs() {
            let row = rows.next().expect("one outcome row per config");
            let mut tputs = vec![point.label()];
            for (depth, outcome) in DEPTHS.iter().zip(row) {
                tputs.push(f1(outcome.throughput_mrps()));
                let per_req = outcome.report.accesses_per_request();
                let rx_evct = per_req[TrafficClass::RxEvct.index()].1;
                let cpu_rx = per_req[TrafficClass::CpuRxRd.index()].1;
                fig_b.row(vec![
                    depth.to_string(),
                    point.label(),
                    f1(rx_evct),
                    f1(cpu_rx),
                    format_breakdown(&outcome.report),
                ]);
            }
            fig_a.row(tputs);
        }

        fig_a.emit("fig7a");
        fig_b.emit("fig7b");
        println!(
            "Check (§VI-C): with Sweeper, 'RX Evct' ≈ 'CPU RX Rd' — all residual\n\
             leaks are premature evictions; consumed-buffer evictions are gone."
        );
    }
}
