//! Figure 7 — *Sweeper's effect on premature buffer evictions* (§VI-C).
//!
//! Revisits §IV-B's deep-queue L3fwd scenarios (D ∈ {250, 450}) with
//! Sweeper. The signature check: with Sweeper enabled, the remaining RX
//! evictions exactly match the CPU's RX read misses — every residual leak
//! is a premature eviction, consumed-buffer evictions are gone.

use sweeper_sim::stats::TrafficClass;

use crate::{f1, format_breakdown, l3fwd_experiment, SystemPoint, Table};

/// Queued depths revisited from §IV-B.
pub const DEPTHS: [usize; 2] = [250, 450];

/// The §VI-C configurations.
pub fn points() -> Vec<SystemPoint> {
    let mut out = Vec::new();
    for ways in [2, 6, 12] {
        out.push(SystemPoint::ddio(ways));
        out.push(SystemPoint::ddio_sweeper(ways));
    }
    out.push(SystemPoint::ideal());
    out
}

/// Runs the experiment and emits both sub-figures.
pub fn run() {
    let mut fig_a = Table::new(
        "Figure 7a — L3fwd throughput (Mrps) with deep queues",
        &["config", "D=250", "D=450"],
    );
    let mut fig_b = Table::new(
        "Figure 7b — memory accesses per packet processed",
        &["D", "config", "RX Evct", "CPU RX Rd", "breakdown"],
    );

    for point in points() {
        let mut tputs = vec![point.label()];
        for depth in DEPTHS {
            let exp = l3fwd_experiment(point, 2048);
            let report = exp.run_keep_queued(depth);
            tputs.push(f1(report.throughput_mrps()));
            let per_req = report.accesses_per_request();
            let rx_evct = per_req[TrafficClass::RxEvct.index()].1;
            let cpu_rx = per_req[TrafficClass::CpuRxRd.index()].1;
            fig_b.row(vec![
                depth.to_string(),
                point.label(),
                f1(rx_evct),
                f1(cpu_rx),
                format_breakdown(&report),
            ]);
            eprintln!(
                "[fig7] {} D={depth}: {:.1} Mrps, RxEvct {:.2} vs CpuRxRd {:.2}",
                point.label(),
                report.throughput_mrps(),
                rx_evct,
                cpu_rx
            );
        }
        fig_a.row(tputs);
    }

    fig_a.emit("fig7a");
    fig_b.emit("fig7b");
    println!(
        "Check (§VI-C): with Sweeper, 'RX Evct' ≈ 'CPU RX Rd' — all residual\n\
         leaks are premature evictions; consumed-buffer evictions are gone."
    );
}
