//! Outlier drill-down — flight-recorder tail-latency attribution.
//!
//! A companion study to Figure 6: instead of whole-distribution CDFs, run
//! the §VI-B configurations with the tail-latency flight recorder armed and
//! attribute the *outlier* requests' span windows to pipeline stages. The
//! table compares each configuration's tail threshold and worst capture;
//! the per-config CSVs break the captured windows down by stage and set the
//! outlier share against the profiler's per-request average, so a stage
//! that is over-represented in the tail stands out.

use std::collections::HashMap;

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;
use sweeper_core::server::{FlightRecorderConfig, RunReport};
use sweeper_core::telemetry::{CsvTable, RunManifest};
use sweeper_sim::span::{OutlierSnapshot, ProfileNode, SpanKind};
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

use super::Figure;
use crate::{f1, wrapped_run_options, SystemPoint, Table};

/// Offered load for the drill-down, Mrps: high enough that queueing shapes
/// the tail, low enough that every configuration still sustains it.
const RATE_MRPS: f64 = 16.0;

/// The §VI-B configurations, minus the 12-way points (the drill-down is
/// about *where* tail cycles go, which two way-counts already contrast).
fn configs() -> Vec<SystemPoint> {
    vec![SystemPoint::ddio(2), SystemPoint::ddio_sweeper(2)]
}

/// Flight-recorder arming for the study: a p99 threshold with a short
/// confidence window so even smoke-profile runs capture snapshots.
fn recorder() -> FlightRecorderConfig {
    FlightRecorderConfig {
        quantile: 0.99,
        min_samples: 256,
        window: 256,
        max_snapshots: 16,
    }
}

fn experiment(profile: RunProfile, point: SystemPoint) -> Experiment {
    let kvs_cfg = KvsConfig::paper_default().with_item_bytes(1024);
    point
        .apply(
            ExperimentConfig::paper_default()
                .rx_buffers_per_core(1024)
                .packet_bytes(1024 + HEADER_BYTES)
                .run_options(wrapped_run_options(profile, 24, 1024)),
        )
        .spans(65_536)
        .profiler()
        .flight(recorder())
        .experiment(move || MicaKvs::new(kvs_cfg))
}

/// Sums captured span durations per stage across every snapshot window.
fn stage_cycles(snapshots: &[OutlierSnapshot]) -> HashMap<SpanKind, (u64, u64)> {
    let mut by_stage: HashMap<SpanKind, (u64, u64)> = HashMap::new();
    for snap in snapshots {
        for ev in &snap.window {
            let slot = by_stage.entry(ev.kind).or_default();
            slot.0 += ev.duration();
            slot.1 += 1;
        }
    }
    by_stage
}

/// The profiler's per-request average for a stage, from the report's
/// profile tree (stages live one or two levels below the root).
fn mean_cycles_per_request(profile: &ProfileNode, stage: SpanKind) -> f64 {
    fn find<'a>(node: &'a ProfileNode, label: &str) -> Option<&'a ProfileNode> {
        if node.label == label {
            return Some(node);
        }
        node.children.iter().find_map(|c| find(c, label))
    }
    let requests = profile.count.max(1) as f64;
    find(profile, stage.label()).map_or(0.0, |n| n.cycles as f64 / requests)
}

fn emit_drilldown(label: &str, report: &RunReport) {
    let Some(snapshots) = &report.outliers else {
        return;
    };
    let by_stage = stage_cycles(snapshots);
    let total: u64 = by_stage.values().map(|&(c, _)| c).sum();
    let mut csv = CsvTable::new(&[
        "stage",
        "outlier_cycles",
        "outlier_share",
        "events",
        "mean_cyc_per_req",
    ])
    .comments(&RunManifest::new().to_comments())
    .comment("artifact", "outliers")
    .comment("config", label)
    .comment("snapshots", snapshots.len().to_string().as_str());
    for kind in SpanKind::ALL {
        let (cycles, events) = by_stage.get(&kind).copied().unwrap_or((0, 0));
        let mean = report
            .profile
            .as_ref()
            .map_or(0.0, |p| mean_cycles_per_request(p, kind));
        csv.row(vec![
            kind.label().to_string(),
            cycles.to_string(),
            format!("{:.4}", cycles as f64 / total.max(1) as f64),
            events.to_string(),
            format!("{mean:.1}"),
        ]);
    }
    let safe = label.replace([' ', '+'], "_");
    let path = std::path::PathBuf::from("results").join(format!("outliers_{safe}.csv"));
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, csv.to_csv()))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// The flight-recorder tail-attribution study.
pub struct Outliers;

impl Figure for Outliers {
    fn name(&self) -> &'static str {
        "outliers"
    }

    fn description(&self) -> &'static str {
        "tail-latency outlier drill-down via the flight recorder"
    }

    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        configs()
            .into_iter()
            .map(|point| {
                ExperimentPoint::at_rate(
                    point.label(),
                    experiment(profile, point),
                    RATE_MRPS * 1e6,
                )
            })
            .collect()
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let mut table = Table::new(
            "Outlier drill-down — tail snapshots beyond the online p99 (cycles)",
            &["config", "Mrps", "p50", "p99", "snaps", "worst", "dominant stage"],
        );
        for (point, outcome) in configs().iter().zip(outcomes) {
            let report = &outcome.report;
            let snapshots = report.outliers.as_deref().unwrap_or(&[]);
            let worst = snapshots.iter().map(|s| s.latency).max().unwrap_or(0);
            let dominant = stage_cycles(snapshots)
                .into_iter()
                .max_by_key(|&(_, (cycles, _))| cycles)
                .map_or_else(|| "-".to_string(), |(kind, _)| kind.label().to_string());
            table.row(vec![
                point.label(),
                f1(report.throughput_mrps()),
                report.request_latency.percentile(0.5).to_string(),
                report.request_latency.percentile(0.99).to_string(),
                snapshots.len().to_string(),
                worst.to_string(),
                dominant,
            ]);
            emit_drilldown(&point.label(), report);
        }
        table.emit("outliers");
    }
}
