//! Figure 1 — *KVS application demonstrating performance effect of network
//! data leaks* (§IV-A).
//!
//! MICA KVS, 1 KB items, 24 cores; RX buffers per core ∈ {512, 1024, 2048};
//! baselines DMA, DDIO {2, 4, 6} ways, and Ideal-DDIO. Reports:
//!
//! * (a) peak application throughput (Mrps),
//! * (b) memory bandwidth utilization at each configuration's peak (GB/s),
//! * (c) the per-request memory-access breakdown.

use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;

use super::Figure;
use crate::{f1, format_breakdown, kvs_experiment, SystemPoint, Table};

/// RX ring depths swept on the x-axis.
pub const BUFFERS: [usize; 3] = [512, 1024, 2048];

/// The baseline configurations of §III.
pub fn configs() -> Vec<SystemPoint> {
    vec![
        SystemPoint::dma(),
        SystemPoint::ddio(2),
        SystemPoint::ddio(4),
        SystemPoint::ddio(6),
        SystemPoint::ideal(),
    ]
}

/// The §IV-A KVS baseline sweep.
pub struct Fig1;

impl Figure for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn description(&self) -> &'static str {
        "KVS baselines: peak throughput, bandwidth, access breakdown (§IV-A)"
    }

    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        let mut out = Vec::new();
        for point in configs() {
            for bufs in BUFFERS {
                out.push(ExperimentPoint::peak(
                    format!("{} rx={bufs}", point.label()),
                    kvs_experiment(profile, point, 1024, bufs, 4),
                ));
            }
        }
        out
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let mut fig_a = Table::new(
            "Figure 1a — KVS peak throughput (Mrps), 1KB items",
            &["config", "rx=512", "rx=1024", "rx=2048"],
        );
        let mut fig_b = Table::new(
            "Figure 1b — memory bandwidth at peak (GB/s)",
            &["config", "rx=512", "rx=1024", "rx=2048"],
        );
        let mut fig_c = Table::new(
            "Figure 1c — memory accesses per KVS request",
            &["rx/core", "config", "breakdown"],
        );

        let mut rows = outcomes.chunks_exact(BUFFERS.len());
        for point in configs() {
            let row = rows.next().expect("one outcome row per config");
            let mut tputs = vec![point.label()];
            let mut bws = vec![point.label()];
            for (bufs, peak) in BUFFERS.iter().zip(row) {
                tputs.push(f1(peak.throughput_mrps()));
                bws.push(f1(peak.report.memory_bandwidth_gbps()));
                fig_c.row(vec![
                    bufs.to_string(),
                    point.label(),
                    format_breakdown(&peak.report),
                ]);
            }
            fig_a.row(tputs);
            fig_b.row(bws);
        }

        fig_a.emit("fig1a");
        fig_b.emit("fig1b");
        fig_c.emit("fig1c");
    }
}
