//! One module per paper table/figure; each exposes a `run()` entry point
//! used by the corresponding `src/bin` wrapper and by the `all` binary.

pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig10;
pub mod table1;

#[cfg(test)]
mod tests {
    #[test]
    fn figure_point_sets_match_the_paper() {
        // Fig 1: DMA, DDIO{2,4,6}, Ideal.
        assert_eq!(super::fig1::points().len(), 5);
        // Fig 2: DDIO{2,6,12}, Ideal.
        assert_eq!(super::fig2::points().len(), 4);
        // Fig 5: DDIO{2,4,6,12} x ±Sweeper + Ideal.
        assert_eq!(super::fig5::points().len(), 9);
        // Fig 6: DDIO{2,12} x ±Sweeper.
        assert_eq!(super::fig6::points().len(), 4);
        // Fig 7: DDIO{2,6,12} x ±Sweeper + Ideal.
        assert_eq!(super::fig7::points().len(), 7);
        // Fig 8: DDIO{2,6,12} x ±Sweeper + Ideal over 3 channel counts.
        assert_eq!(super::fig8::points().len(), 7);
        assert_eq!(super::fig8::CHANNELS, [3, 4, 8]);
        assert_eq!(super::fig8::SCENARIOS.len(), 3);
        // Fig 10 sweeps five ring depths.
        assert_eq!(super::fig10::BUFFERS, [128, 256, 512, 1024, 2048]);
    }

    #[test]
    fn table1_asserts_the_preset() {
        // Running it exercises all the hard assertions.
        super::table1::run();
    }
}
