//! One module per paper table/figure, unified behind the [`Figure`] trait:
//! each figure *declares* its sweep as a list of
//! [`ExperimentPoint`](sweeper_core::fleet::ExperimentPoint)s and *renders*
//! the collected [`PointOutcome`](sweeper_core::fleet::PointOutcome)s into
//! the paper's tables. Execution — parallelism, seeding, progress, timing —
//! lives in the [`Fleet`](sweeper_core::fleet::Fleet), not in the figures.
//!
//! [`registry`] lists every runnable figure; the `src/bin` wrappers, the
//! `all` binary, and the `sweeper` CLI all dispatch through it (via
//! [`run_figure`](crate::run_figure)). `table1` is a parameter listing with
//! no experiment points and stays a plain module.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig10;
pub mod outliers;
pub mod table1;

use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;

use crate::FigContext;

/// A reproducible paper figure: a declarative point sweep plus a renderer.
///
/// The default [`Figure::run`] covers the common single-stage shape —
/// enumerate, fan out across the fleet, render. Figures with data-dependent
/// stages (Figure 6 derives its iso-throughput rate from a first-stage
/// peak search) override `run` and feed `render` the concatenated
/// outcomes.
pub trait Figure: Sync {
    /// Registry key, e.g. `"fig5"` — matches the binary name.
    fn name(&self) -> &'static str;

    /// One-line description shown by `sweeper figures`.
    fn description(&self) -> &'static str;

    /// Enumerates the figure's sweep under `profile`. Labels must be
    /// unique within the figure; declaration order is the render order.
    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint>;

    /// Renders outcomes (in declaration order) into the paper's tables and
    /// CSVs.
    fn render(&self, profile: RunProfile, outcomes: &[PointOutcome]);

    /// Executes the figure end-to-end.
    fn run(&self, ctx: &FigContext) {
        let outcomes = ctx.fleet.run(self.points(ctx.profile));
        self.render(ctx.profile, &outcomes);
    }
}

/// Every runnable figure, in the paper's order (plus the ablation study).
pub fn registry() -> &'static [&'static dyn Figure] {
    &[
        &fig1::Fig1,
        &fig2::Fig2,
        &fig5::Fig5,
        &fig6::Fig6,
        &fig7::Fig7,
        &fig8::Fig8,
        &fig9::Fig9,
        &fig10::Fig10,
        &ablations::Ablations,
        &outliers::Outliers,
    ]
}

/// Looks a figure up by its registry key (case-insensitive).
pub fn find(name: &str) -> Option<&'static dyn Figure> {
    registry()
        .iter()
        .copied()
        .find(|f| f.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::*;

    #[test]
    fn figure_point_sets_match_the_paper() {
        let p = RunProfile::Smoke;
        // Fig 1: (DMA, DDIO{2,4,6}, Ideal) × 3 ring depths.
        assert_eq!(fig1::Fig1.points(p).len(), 15);
        // Fig 2: (DDIO{2,6,12}, Ideal) × 3 queued depths.
        assert_eq!(fig2::Fig2.points(p).len(), 12);
        // Fig 5: 2 item sizes × (DDIO{2,4,6,12} ± Sweeper + Ideal) × 3 depths.
        assert_eq!(fig5::Fig5.points(p).len(), 54);
        // Fig 6 stage one: DDIO{2,12} × ±Sweeper at their own peaks.
        assert_eq!(fig6::Fig6.points(p).len(), 4);
        // Fig 7: (DDIO{2,6,12} ± Sweeper + Ideal) × 2 depths.
        assert_eq!(fig7::Fig7.points(p).len(), 14);
        // Fig 8: 3 scenarios × 7 configs × 3 channel counts.
        assert_eq!(fig8::Fig8.points(p).len(), 63);
        assert_eq!(fig8::CHANNELS, [3, 4, 8]);
        assert_eq!(fig8::SCENARIOS.len(), 3);
        // Fig 9: 5 disjoint splits × 2 modes + 6 way counts × 2 modes.
        assert_eq!(fig9::Fig9.points(p).len(), 22);
        // Fig 10: 5 depths × 2 modes no-drop peaks + 7 rates × 3 series.
        assert_eq!(fig10::Fig10.points(p).len(), 31);
        assert_eq!(fig10::BUFFERS, [128, 256, 512, 1024, 2048]);
        // Outlier drill-down: DDIO 2 ± Sweeper with the recorder armed.
        assert_eq!(outliers::Outliers.points(p).len(), 2);
    }

    #[test]
    fn registry_figures_enumerate_unique_labelled_points() {
        for figure in registry() {
            let points = figure.points(RunProfile::Smoke);
            assert!(
                !points.is_empty(),
                "{} must enumerate at least one point",
                figure.name()
            );
            let labels: HashSet<&str> = points.iter().map(|p| p.label()).collect();
            assert_eq!(
                labels.len(),
                points.len(),
                "{} has duplicate point labels",
                figure.name()
            );
            assert!(!figure.description().is_empty());
        }
    }

    #[test]
    fn registry_lookup_is_case_insensitive_and_total() {
        for figure in registry() {
            assert_eq!(find(figure.name()).unwrap().name(), figure.name());
            assert!(find(&figure.name().to_uppercase()).is_some());
        }
        assert!(find("fig3").is_none());
    }

    #[test]
    fn table1_asserts_the_preset() {
        // Running it exercises all the hard assertions.
        table1::run();
    }
}
