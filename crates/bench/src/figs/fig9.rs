//! Figure 9 — *Performance of collocated network- and memory-intensive
//! applications* (§VI-E).
//!
//! 12 instances of L3fwd (L1-resident dataset, 2048 RX buffers per core,
//! 1 KB packets) collocated with 12 instances of X-Mem (2 MB private
//! random-access datasets).
//!
//! * **(a)** non-overlapping LLC way partitions: DDIO in partition A,
//!   X-Mem restricted to partition B, A + B = 12.
//! * **(b)** overlapping partitions: X-Mem may use the whole LLC while the
//!   DDIO ways grow from 2 to 12.

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::server::RunReport;
use sweeper_sim::cache::WayMask;
use sweeper_sim::hierarchy::InjectionPolicy;

use crate::{f1, fast_mode, wrapped_run_options, SystemPoint, Table};
use sweeper_workloads::l3fwd::{L3Forwarder, L3fwdConfig};
use sweeper_workloads::xmem::{Xmem, XmemConfig};

/// L3fwd tenant cores (the remaining 12 run X-Mem).
pub const NET_CORES: u16 = 12;

/// Keep-queued depth of the network tenant — a DPDK-like batching depth
/// that keeps the cores busy without driving the memory system into deep
/// saturation (the paper's collocation study measures capacity effects, not
/// overload collapse).
const DEPTH: usize = 16;

/// Builds the collocated experiment for one `(ddio_ways, xmem_mask)` point.
fn collocated(point: SystemPoint, xmem_mask: WayMask, net_mask: WayMask) -> Experiment {
    // X-Mem is orders of magnitude slower per "request" than L3fwd, so the
    // windows are time-based: warmup must cover X-Mem's cold pass over its
    // 2 MB dataset (~15 M cycles) and the measurement must span several
    // dataset wraps.
    let mut opts = wrapped_run_options(NET_CORES, 2048);
    let scale = if fast_mode() { 2 } else { 1 };
    opts.min_warmup_cycles = 24_000_000 / scale;
    opts.min_measure_cycles = 40_000_000 / scale;
    let cfg = point.apply(
        ExperimentConfig::paper_default()
            .active_cores(NET_CORES)
            .rx_buffers_per_core(2048)
            .packet_bytes(1024)
            .run_options(opts),
    );
    let total_cores = cfg.machine().cores as u16;
    Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l1_resident()))
        .with_background(|| Xmem::new(XmemConfig::paper_default()))
        .with_server_hook(move |server| {
            let mem = server.memory_mut();
            for core in 0..NET_CORES {
                mem.set_cpu_llc_mask(core, net_mask);
            }
            for core in NET_CORES..total_cores {
                mem.set_cpu_llc_mask(core, xmem_mask);
            }
        })
}

fn run_point(point: SystemPoint, xmem_mask: WayMask, net_mask: WayMask) -> RunReport {
    collocated(point, xmem_mask, net_mask).run_keep_queued(DEPTH)
}

/// Runs both collocation scenarios and emits their tables.
pub fn run() {
    // ---- (a) non-overlapping partitions: (A, B) with A + B = 12 ----
    let mut fig_a = Table::new(
        "Figure 9a — disjoint partitions (DDIO ways A, X-Mem ways B)",
        &[
            "(A,B)",
            "mode",
            "l3fwd Mrps",
            "xmem Mit/s",
            "l3fwd norm",
            "xmem norm",
        ],
    );
    let mut raw_a = Vec::new();
    for a in [2u32, 4, 6, 8, 10] {
        for sweeper in [false, true] {
            let point = if sweeper {
                SystemPoint::ddio_sweeper(a)
            } else {
                SystemPoint::ddio(a)
            };
            let xmem_mask = WayMask::range(a, 12);
            let net_mask = WayMask::first(a);
            let report = run_point(point, xmem_mask, net_mask);
            eprintln!(
                "[fig9a] ({a},{}) {}: l3fwd {:.1} Mrps, xmem {:.2} Mit/s",
                12 - a,
                if sweeper { "sweeper" } else { "ddio" },
                report.throughput_mrps(),
                report.background_mips()
            );
            raw_a.push((a, sweeper, report));
        }
    }
    // Normalize to the (4,8) Sweeper point, as the paper's axes do.
    let norm = raw_a
        .iter()
        .find(|(a, s, _)| *a == 4 && *s)
        .map(|(_, _, r)| (r.throughput_mrps(), r.background_mips()))
        .expect("(4,8) sweeper point present");
    for (a, sweeper, report) in &raw_a {
        fig_a.row(vec![
            format!("({a},{})", 12 - a),
            if *sweeper { "DDIO + Sweeper" } else { "DDIO" }.to_string(),
            f1(report.throughput_mrps()),
            f1(report.background_mips()),
            f1(report.throughput_mrps() / norm.0),
            f1(report.background_mips() / norm.1),
        ]);
    }
    fig_a.emit("fig9a");

    // ---- (b) overlapping partitions: X-Mem uses the whole LLC ----
    let mut fig_b = Table::new(
        "Figure 9b — overlapping partitions (X-Mem uses all 12 ways)",
        &[
            "DDIO ways",
            "mode",
            "l3fwd Mrps",
            "xmem Mit/s",
            "l3fwd norm",
            "xmem norm",
        ],
    );
    let mut raw_b = Vec::new();
    for ways in [2u32, 4, 6, 8, 10, 12] {
        for sweeper in [false, true] {
            let point = if sweeper {
                SystemPoint::ddio_sweeper(ways)
            } else {
                SystemPoint::ddio(ways)
            };
            let report = run_point(point, WayMask::ALL, WayMask::ALL);
            eprintln!(
                "[fig9b] ways={ways} {}: l3fwd {:.1} Mrps, xmem {:.2} Mit/s",
                if sweeper { "sweeper" } else { "ddio" },
                report.throughput_mrps(),
                report.background_mips()
            );
            raw_b.push((ways, sweeper, report));
        }
    }
    // Paper normalizes L3fwd to its 2-way-Sweeper and X-Mem to the
    // 6-way-Sweeper values.
    let l3_norm = raw_b
        .iter()
        .find(|(w, s, _)| *w == 2 && *s)
        .map(|(_, _, r)| r.throughput_mrps())
        .expect("2-way sweeper point present");
    let xm_norm = raw_b
        .iter()
        .find(|(w, s, _)| *w == 6 && *s)
        .map(|(_, _, r)| r.background_mips())
        .expect("6-way sweeper point present");
    for (ways, sweeper, report) in &raw_b {
        fig_b.row(vec![
            ways.to_string(),
            if *sweeper { "DDIO + Sweeper" } else { "DDIO" }.to_string(),
            f1(report.throughput_mrps()),
            f1(report.background_mips()),
            f1(report.throughput_mrps() / l3_norm),
            f1(report.background_mips() / xm_norm),
        ]);
    }
    fig_b.emit("fig9b");

    // Point out the SystemPoint policy sanity: collocation only makes sense
    // under DDIO.
    debug_assert!(points_are_ddio());
}

fn points_are_ddio() -> bool {
    SystemPoint::ddio(2).policy == InjectionPolicy::Ddio
}
