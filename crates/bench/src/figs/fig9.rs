//! Figure 9 — *Performance of collocated network- and memory-intensive
//! applications* (§VI-E).
//!
//! 12 instances of L3fwd (L1-resident dataset, 2048 RX buffers per core,
//! 1 KB packets) collocated with 12 instances of X-Mem (2 MB private
//! random-access datasets).
//!
//! * **(a)** non-overlapping LLC way partitions: DDIO in partition A,
//!   X-Mem restricted to partition B, A + B = 12.
//! * **(b)** overlapping partitions: X-Mem may use the whole LLC while the
//!   DDIO ways grow from 2 to 12.

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;
use sweeper_sim::cache::WayMask;

use super::Figure;
use crate::{f1, wrapped_run_options, SystemPoint, Table};
use sweeper_workloads::l3fwd::{L3Forwarder, L3fwdConfig};
use sweeper_workloads::xmem::{Xmem, XmemConfig};

/// L3fwd tenant cores (the remaining 12 run X-Mem).
pub const NET_CORES: u16 = 12;

/// DDIO-partition sizes of the disjoint study (X-Mem gets `12 - A` ways).
pub const DISJOINT_WAYS: [u32; 5] = [2, 4, 6, 8, 10];

/// DDIO way counts of the overlapping study.
pub const OVERLAP_WAYS: [u32; 6] = [2, 4, 6, 8, 10, 12];

/// Keep-queued depth of the network tenant — a DPDK-like batching depth
/// that keeps the cores busy without driving the memory system into deep
/// saturation (the paper's collocation study measures capacity effects, not
/// overload collapse).
const DEPTH: usize = 16;

/// Builds the collocated experiment for one `(ddio_ways, xmem_mask)` point.
fn collocated(
    profile: RunProfile,
    point: SystemPoint,
    xmem_mask: WayMask,
    net_mask: WayMask,
) -> Experiment {
    // X-Mem is orders of magnitude slower per "request" than L3fwd, so the
    // windows are time-based: warmup must cover X-Mem's cold pass over its
    // 2 MB dataset (~15 M cycles) and the measurement must span several
    // dataset wraps.
    let mut opts = wrapped_run_options(profile, NET_CORES, 2048);
    let scale = match profile {
        RunProfile::Full => 1,
        RunProfile::Fast => 2,
        RunProfile::Smoke => 8,
    };
    opts.min_warmup_cycles = 24_000_000 / scale;
    opts.min_measure_cycles = 40_000_000 / scale;
    let cfg = point.apply(
        ExperimentConfig::paper_default()
            .active_cores(NET_CORES)
            .rx_buffers_per_core(2048)
            .packet_bytes(1024)
            .run_options(opts),
    );
    let total_cores = cfg.machine().cores as u16;
    cfg.experiment(|| L3Forwarder::new(L3fwdConfig::l1_resident()))
        .with_background(|| Xmem::new(XmemConfig::paper_default()))
        .with_server_hook(move |server| {
            let mem = server.memory_mut();
            for core in 0..NET_CORES {
                mem.set_cpu_llc_mask(core, net_mask);
            }
            for core in NET_CORES..total_cores {
                mem.set_cpu_llc_mask(core, xmem_mask);
            }
        })
}

fn system_point(ways: u32, sweeper: bool) -> SystemPoint {
    if sweeper {
        SystemPoint::ddio_sweeper(ways)
    } else {
        SystemPoint::ddio(ways)
    }
}

fn mode_name(sweeper: bool) -> &'static str {
    if sweeper {
        "DDIO + Sweeper"
    } else {
        "DDIO"
    }
}

/// The §VI-E collocation study.
pub struct Fig9;

impl Figure for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn description(&self) -> &'static str {
        "Collocated L3fwd + X-Mem under LLC way partitioning (§VI-E)"
    }

    /// The disjoint-partition points first (ways × ±Sweeper), then the
    /// overlapping-partition points.
    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        let mut out = Vec::new();
        for a in DISJOINT_WAYS {
            for sweeper in [false, true] {
                out.push(ExperimentPoint::keep_queued(
                    format!("a ({a},{}) {}", 12 - a, mode_name(sweeper)),
                    collocated(
                        profile,
                        system_point(a, sweeper),
                        WayMask::range(a, 12),
                        WayMask::first(a),
                    ),
                    DEPTH,
                ));
            }
        }
        for ways in OVERLAP_WAYS {
            for sweeper in [false, true] {
                out.push(ExperimentPoint::keep_queued(
                    format!("b ways={ways} {}", mode_name(sweeper)),
                    collocated(
                        profile,
                        system_point(ways, sweeper),
                        WayMask::ALL,
                        WayMask::ALL,
                    ),
                    DEPTH,
                ));
            }
        }
        out
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let split = DISJOINT_WAYS.len() * 2;
        let (raw_a, raw_b) = outcomes.split_at(split);

        // ---- (a) non-overlapping partitions: (A, B) with A + B = 12 ----
        let mut fig_a = Table::new(
            "Figure 9a — disjoint partitions (DDIO ways A, X-Mem ways B)",
            &[
                "(A,B)",
                "mode",
                "l3fwd Mrps",
                "xmem Mit/s",
                "l3fwd norm",
                "xmem norm",
            ],
        );
        // Normalize to the (4,8) Sweeper point, as the paper's axes do.
        let norm_idx = DISJOINT_WAYS
            .iter()
            .position(|&a| a == 4)
            .expect("(4,8) point present")
            * 2
            + 1;
        let norm = (
            raw_a[norm_idx].throughput_mrps(),
            raw_a[norm_idx].report.background_mips(),
        );
        let mut it = raw_a.iter();
        for a in DISJOINT_WAYS {
            for sweeper in [false, true] {
                let outcome = it.next().expect("one outcome per disjoint point");
                fig_a.row(vec![
                    format!("({a},{})", 12 - a),
                    mode_name(sweeper).to_string(),
                    f1(outcome.throughput_mrps()),
                    f1(outcome.report.background_mips()),
                    f1(outcome.throughput_mrps() / norm.0),
                    f1(outcome.report.background_mips() / norm.1),
                ]);
            }
        }
        fig_a.emit("fig9a");

        // ---- (b) overlapping partitions: X-Mem uses the whole LLC ----
        let mut fig_b = Table::new(
            "Figure 9b — overlapping partitions (X-Mem uses all 12 ways)",
            &[
                "DDIO ways",
                "mode",
                "l3fwd Mrps",
                "xmem Mit/s",
                "l3fwd norm",
                "xmem norm",
            ],
        );
        // Paper normalizes L3fwd to its 2-way-Sweeper and X-Mem to the
        // 6-way-Sweeper values.
        let idx_of = |target: u32| {
            OVERLAP_WAYS
                .iter()
                .position(|&w| w == target)
                .expect("normalization point present")
                * 2
                + 1
        };
        let l3_norm = raw_b[idx_of(2)].throughput_mrps();
        let xm_norm = raw_b[idx_of(6)].report.background_mips();
        let mut it = raw_b.iter();
        for ways in OVERLAP_WAYS {
            for sweeper in [false, true] {
                let outcome = it.next().expect("one outcome per overlap point");
                fig_b.row(vec![
                    ways.to_string(),
                    mode_name(sweeper).to_string(),
                    f1(outcome.throughput_mrps()),
                    f1(outcome.report.background_mips()),
                    f1(outcome.throughput_mrps() / l3_norm),
                    f1(outcome.report.background_mips() / xm_norm),
                ]);
            }
        }
        fig_b.emit("fig9b");
    }
}
