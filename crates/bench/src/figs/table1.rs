//! Table I — *System parameters for simulation on zSim* (Appendix A).
//!
//! Prints the simulated machine's parameters and asserts that the
//! `paper_default` preset matches the paper exactly.

use sweeper_sim::hierarchy::MachineConfig;

use crate::Table;

/// Prints and validates the Table I preset.
pub fn run() {
    let cfg = MachineConfig::paper_default();

    // Hard assertions: the preset *is* Table I.
    assert_eq!(cfg.cores, 24);
    assert_eq!(cfg.l1.size_bytes, 48 * 1024);
    assert_eq!(cfg.l1.ways, 12);
    assert_eq!(cfg.l1.latency, 4);
    assert_eq!(cfg.l2.size_bytes, 1280 * 1024);
    assert_eq!(cfg.l2.ways, 20);
    assert_eq!(cfg.l2.latency, 14);
    assert_eq!(cfg.llc.size_bytes, 36 * 1024 * 1024);
    assert_eq!(cfg.llc.ways, 12);
    assert_eq!(cfg.llc.latency, 35);
    assert_eq!(cfg.noc_latency, 8);
    assert_eq!(cfg.dram.channels, 4);
    assert_eq!(cfg.dram.ranks_per_channel, 4);
    assert_eq!(cfg.dram.banks_per_rank, 8);
    assert_eq!(sweeper_sim::engine::CLOCK_HZ, 3_200_000_000);

    let mut t = Table::new(
        "Table I — system parameters (simulated server)",
        &["component", "parameters"],
    );
    t.row(vec![
        "CPU".into(),
        format!("{} x86-64 cores (Ice-Lake-like), 3.2 GHz", cfg.cores),
    ]);
    t.row(vec![
        "L1 caches".into(),
        format!(
            "{} KB {}-way, 64 B blocks, {}-cycle access",
            cfg.l1.size_bytes / 1024,
            cfg.l1.ways,
            cfg.l1.latency
        ),
    ]);
    t.row(vec![
        "L2 caches".into(),
        format!(
            "{:.2} MB, {}-way, {}-cycle access",
            cfg.l2.size_bytes as f64 / (1024.0 * 1024.0),
            cfg.l2.ways,
            cfg.l2.latency
        ),
    ]);
    t.row(vec![
        "LLC".into(),
        format!(
            "shared non-inclusive victim cache, {} MB, {}-way, {}-cycle access",
            cfg.llc.size_bytes / (1024 * 1024),
            cfg.llc.ways,
            cfg.llc.latency
        ),
    ]);
    t.row(vec![
        "NoC".into(),
        format!("crossbar, {}-cycle latency", cfg.noc_latency),
    ]);
    t.row(vec![
        "Memory".into(),
        format!(
            "DDR4-3200, {} channels ({} configurable 3..8), {} ranks/channel, {} banks/rank",
            cfg.dram.channels, cfg.dram.channels, cfg.dram.ranks_per_channel, cfg.dram.banks_per_rank
        ),
    ]);
    t.row(vec![
        "DDIO".into(),
        format!("{} LLC ways (default), configurable 1..12", cfg.ddio_ways),
    ]);
    t.emit("table1");
    println!("Table I preset verified against the paper. ✓");
}
