//! Ablation study for the design decisions DESIGN.md calls out.
//!
//! Runs the KVS scenario (1 KB items, 1024 buffers/core, 2-way DDIO, fixed
//! 18 Mrps load) while toggling one modelling decision at a time, and prints
//! how the paper's key observables move:
//!
//! 1. **LLC read-hit retention** vs strict-victim migration — retention is
//!    what makes consumed buffers accumulate (dirty) in the DDIO ways.
//! 2. **DDIO insertion mask** vs strict way partition — the insertion-mask
//!    semantics allow §VI-C's "runaway buffers".
//! 3. **DRAM realism knobs** (bus turnaround, activation overhead, refresh)
//!    — these set the effective bandwidth ceiling that throttles the leaky
//!    baseline.
//! 4. **LLC replacement & prefetch** — SRRIP scan resistance and an L2
//!    next-line prefetcher.

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;
use sweeper_core::server::{RunOptions, RunReport, SweeperMode};
use sweeper_sim::cache::ReplacementPolicy;
use sweeper_sim::hierarchy::MachineConfig;
use sweeper_sim::stats::TrafficClass;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

use super::Figure;
use crate::Table;

/// Fixed offered load of every ablation run (packets/second).
const RATE: f64 = 18.0e6;

type Mutator = fn(&mut MachineConfig);

/// One ablation run: which table it belongs to, its row name, the single
/// modelling toggle it applies, and the Sweeper mode.
struct Variant {
    table: usize,
    name: &'static str,
    mutate: Mutator,
    sweeper: SweeperMode,
}

fn variants() -> Vec<Variant> {
    fn v(table: usize, name: &'static str, mutate: Mutator, sweeper: SweeperMode) -> Variant {
        Variant {
            table,
            name,
            mutate,
            sweeper,
        }
    }
    use SweeperMode::{Disabled, Enabled};
    vec![
        v(1, "retain (default)", |_| {}, Disabled),
        v(1, "strict victim", |m| m.llc_read_hit_retains = false, Disabled),
        v(2, "insertion mask (default)", |_| {}, Disabled),
        v(2, "strict partition", |m| m.ddio_strict_partition = true, Disabled),
        v(3, "realistic (default), base", |_| {}, Disabled),
        v(3, "realistic (default), sweep", |_| {}, Enabled),
        v(3, "no turnaround, base", |m| m.dram.t_turnaround = 0, Disabled),
        v(3, "no turnaround, sweep", |m| m.dram.t_turnaround = 0, Enabled),
        v(3, "no activation overhead, base", |m| m.dram.t_act_bus = 0, Disabled),
        v(3, "no activation overhead, sweep", |m| m.dram.t_act_bus = 0, Enabled),
        v(3, "no refresh, base", |m| m.dram.t_refi = 0, Disabled),
        v(3, "no refresh, sweep", |m| m.dram.t_refi = 0, Enabled),
        v(4, "LRU (default)", |_| {}, Disabled),
        v(4, "SRRIP LLC", |m| m.llc_replacement = ReplacementPolicy::Srrip, Disabled),
        v(4, "L2 next-line prefetch", |m| m.l2_next_line_prefetch = true, Disabled),
    ]
}

fn ablation_experiment(profile: RunProfile, variant: &Variant) -> Experiment {
    let cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(variant.sweeper)
        .rx_buffers_per_core(1024)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(RunOptions {
            warmup_requests: profile.scale(30_000, 2_000),
            measure_requests: profile.scale(15_000, 1_500),
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    let mut machine = *cfg.machine();
    (variant.mutate)(&mut machine);
    cfg.with_machine(machine)
        .experiment(|| MicaKvs::new(KvsConfig::paper_default()))
}

fn row(name: &str, report: &RunReport) -> Vec<String> {
    let counts = report.class_counts();
    // `.max(1)`: a timed-out zero-request run must render 0.00, not NaN.
    let per = |c: TrafficClass| counts[c] as f64 / report.completed.max(1) as f64;
    vec![
        name.to_string(),
        format!("{:.1}", report.throughput_mrps()),
        format!("{:.1}", report.memory_bandwidth_gbps()),
        format!("{:.2}", per(TrafficClass::RxEvct)),
        format!("{:.2}", per(TrafficClass::CpuRxRd)),
        format!("{:.0}", report.dram_latency.mean()),
    ]
}

/// The DESIGN.md ablation study as a registry figure.
pub struct Ablations;

impl Figure for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn description(&self) -> &'static str {
        "Modelling-decision ablations at fixed 18 Mrps load (DESIGN.md)"
    }

    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        variants()
            .iter()
            .map(|variant| {
                ExperimentPoint::at_rate(
                    format!("t{} {}", variant.table, variant.name),
                    ablation_experiment(profile, variant),
                    RATE,
                )
            })
            .collect()
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let headers = &["variant", "Mrps", "GB/s", "RxEvct/rq", "CpuRxRd/rq", "dram mean"];
        let mut tables = [
            Table::new(
                "Ablation 1 — LLC read-hit policy (baseline DDIO 2-way, 18 Mrps)",
                headers,
            ),
            Table::new(
                "Ablation 2 — DDIO way semantics (baseline DDIO 2-way, 18 Mrps)",
                headers,
            ),
            Table::new(
                "Ablation 3 — DRAM realism (baseline vs Sweeper at 18 Mrps)",
                headers,
            ),
            Table::new(
                "Ablation 4 — LLC replacement & prefetch (baseline DDIO 2-way, 18 Mrps)",
                headers,
            ),
        ];
        for (variant, outcome) in variants().iter().zip(outcomes) {
            tables[variant.table - 1].row(row(variant.name, &outcome.report));
        }

        tables[0].emit("ablation_llc_policy");
        println!(
            "Retention keeps consumed buffers dirty in the DDIO ways (high RxEvct);\n\
             strict-victim migration shifts the churn into the private caches.\n"
        );
        tables[1].emit("ablation_ddio_partition");
        println!(
            "The insertion mask lets CPU spills of network lines 'run away' into\n\
             non-DDIO ways (§VI-C); a strict partition confines them.\n"
        );
        tables[2].emit("ablation_dram");
        println!(
            "The DRAM realism knobs set the effective bandwidth ceiling; removing\n\
             them narrows the latency gap between the leaky baseline and Sweeper\n\
             but does not change who wins.\n"
        );
        tables[3].emit("ablation_llc_policy2");
        println!(
            "SRRIP's scan resistance changes how long dead buffers survive in\n\
             the LLC; the prefetcher trades extra bandwidth for lower demand\n\
             latency. Neither alters Sweeper's conclusion."
        );
    }
}
