//! Figure 6 — *Memory access latency CDFs for the KVS application* (§VI-B).
//!
//! The 1024-buffers / 1 KB-packets scenario (Figure 5a's fifth bar
//! cluster). Left: DRAM access latency distribution for 2- and 12-way DDIO,
//! with and without Sweeper, each at its own peak load. Right: the same
//! four configurations compared iso-throughput, at the 2-way DDIO
//! baseline's achieved peak.
//!
//! This is the registry's one *two-stage* figure: the right-hand rate is
//! data-dependent (the baseline's discovered peak), so [`Figure::run`] is
//! overridden to run the peak stage, derive the iso rate, run the iso
//! stage, and render the concatenated outcomes.

use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;
use sweeper_core::server::RunReport;
use sweeper_core::telemetry::{CsvTable, RunManifest};

use super::Figure;
use crate::{f1, kvs_experiment, FigContext, SystemPoint, Table};

/// The four §VI-B configurations.
pub fn configs() -> Vec<SystemPoint> {
    vec![
        SystemPoint::ddio(2),
        SystemPoint::ddio_sweeper(2),
        SystemPoint::ddio(12),
        SystemPoint::ddio_sweeper(12),
    ]
}

fn latency_row(label: &str, report: &RunReport) -> Vec<String> {
    let s = report.dram_latency.summary();
    vec![
        label.to_string(),
        f1(report.throughput_mrps()),
        format!("{:.0}", s.mean),
        s.p50.to_string(),
        s.p90.to_string(),
        s.p99.to_string(),
        s.max.to_string(),
    ]
}

fn emit_cdf(name: &str, label: &str, report: &RunReport) {
    let mut csv = CsvTable::new(&["latency_cycles", "cumulative_fraction"])
        .comments(&RunManifest::new().to_comments())
        .comment("artifact", name)
        .comment("config", label);
    for (v, f) in report.dram_latency.cdf() {
        csv.row(vec![v.to_string(), format!("{f:.6}")]);
    }
    let safe = label.replace([' ', '+'], "_");
    let path = std::path::PathBuf::from("results").join(format!("{name}_{safe}.csv"));
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&path, csv.to_csv()))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// The §VI-B latency-CDF study.
pub struct Fig6;

impl Fig6 {
    fn iso_points(profile: RunProfile, rate: f64) -> Vec<ExperimentPoint> {
        configs()
            .into_iter()
            .map(|point| {
                ExperimentPoint::at_rate(
                    format!("{} iso", point.label()),
                    kvs_experiment(profile, point, 1024, 1024, 4),
                    rate,
                )
            })
            .collect()
    }
}

impl Figure for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "DRAM latency CDFs at peak and iso-throughput load (§VI-B)"
    }

    /// Stage one only: each configuration at its own peak. The iso-rate
    /// stage depends on the first outcome's discovered peak and is built
    /// inside [`Figure::run`].
    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        configs()
            .into_iter()
            .map(|point| {
                ExperimentPoint::peak(
                    point.label(),
                    kvs_experiment(profile, point, 1024, 1024, 4),
                )
            })
            .collect()
    }

    fn run(&self, ctx: &FigContext) {
        let mut outcomes = ctx.fleet.run(self.points(ctx.profile));
        // Iso-throughput stage at the 2-way DDIO baseline's achieved peak.
        let iso = outcomes[0]
            .peak_rate
            .expect("stage one points are peak searches");
        outcomes.extend(ctx.fleet.run(Self::iso_points(ctx.profile, iso)));
        self.render(ctx.profile, &outcomes);
    }

    /// Expects the four peak outcomes first; the four iso-rate outcomes,
    /// when present, follow.
    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let cols = &["config", "Mrps", "mean", "p50", "p90", "p99", "max"];
        let mut left = Table::new(
            "Figure 6 (left) — DRAM access latency at each config's peak load (cycles)",
            cols,
        );
        let mut right = Table::new(
            "Figure 6 (right) — iso-throughput DRAM access latency (cycles)",
            cols,
        );

        let n = configs().len();
        for (point, peak) in configs().iter().zip(&outcomes[..n]) {
            left.row(latency_row(&point.label(), &peak.report));
            emit_cdf("fig6_peak", &point.label(), &peak.report);
        }
        left.emit("fig6_left");

        if outcomes.len() > n {
            let iso = outcomes[0].peak_rate.expect("peak stage ran first");
            for (point, outcome) in configs().iter().zip(&outcomes[n..]) {
                right.row(latency_row(&point.label(), &outcome.report));
                emit_cdf("fig6_iso", &point.label(), &outcome.report);
            }
            println!("(iso-throughput comparison at {:.1} Mrps)", iso / 1e6);
            right.emit("fig6_right");
        }
    }
}
