//! Figure 6 — *Memory access latency CDFs for the KVS application* (§VI-B).
//!
//! The 1024-buffers / 1 KB-packets scenario (Figure 5a's fifth bar
//! cluster). Left: DRAM access latency distribution for 2- and 12-way DDIO,
//! with and without Sweeper, each at its own peak load. Right: the same
//! four configurations compared iso-throughput, at the 2-way DDIO
//! baseline's achieved peak.

use sweeper_core::experiment::PeakCriteria;
use sweeper_core::server::RunReport;

use crate::{f1, kvs_experiment, SystemPoint, Table};

/// The four §VI-B configurations.
pub fn points() -> Vec<SystemPoint> {
    vec![
        SystemPoint::ddio(2),
        SystemPoint::ddio_sweeper(2),
        SystemPoint::ddio(12),
        SystemPoint::ddio_sweeper(12),
    ]
}

fn latency_row(label: &str, report: &RunReport) -> Vec<String> {
    let h = &report.dram_latency;
    vec![
        label.to_string(),
        f1(report.throughput_mrps()),
        format!("{:.0}", h.mean()),
        h.percentile(0.5).to_string(),
        h.percentile(0.9).to_string(),
        h.percentile(0.99).to_string(),
        h.max().to_string(),
    ]
}

fn emit_cdf(name: &str, label: &str, report: &RunReport) {
    let dir = std::path::PathBuf::from("results");
    if !dir.is_dir() {
        return;
    }
    let mut csv = String::from("latency_cycles,cumulative_fraction\n");
    for (v, f) in report.dram_latency.cdf() {
        csv.push_str(&format!("{v},{f:.6}\n"));
    }
    let safe = label.replace([' ', '+'], "_");
    let _ = std::fs::write(dir.join(format!("{name}_{safe}.csv")), csv);
}

/// Runs the experiment and emits both CDF comparisons.
pub fn run() {
    let cols = &["config", "Mrps", "mean", "p50", "p90", "p99", "max"];
    let mut left = Table::new(
        "Figure 6 (left) — DRAM access latency at each config's peak load (cycles)",
        cols,
    );
    let mut right = Table::new(
        "Figure 6 (right) — iso-throughput DRAM access latency (cycles)",
        cols,
    );

    // Left: each configuration at its own peak.
    let mut baseline_rate = None;
    for point in points() {
        let exp = kvs_experiment(point, 1024, 1024, 4);
        let peak = exp.find_peak(PeakCriteria::default());
        if point == SystemPoint::ddio(2) {
            baseline_rate = Some(peak.rate);
        }
        left.row(latency_row(&point.label(), &peak.report));
        emit_cdf("fig6_peak", &point.label(), &peak.report);
        eprintln!(
            "[fig6] {} peak {:.1} Mrps, dram mean {:.0}",
            point.label(),
            peak.throughput_mrps(),
            peak.report.dram_latency.mean()
        );
    }

    // Right: all four at the 2-way baseline's peak rate (iso-throughput).
    let iso = baseline_rate.expect("baseline searched above");
    for point in points() {
        let exp = kvs_experiment(point, 1024, 1024, 4);
        let report = exp.run_at_rate(iso);
        right.row(latency_row(&point.label(), &report));
        emit_cdf("fig6_iso", &point.label(), &report);
    }

    left.emit("fig6_left");
    println!("(iso-throughput comparison at {:.1} Mrps)", iso / 1e6);
    right.emit("fig6_right");
}
