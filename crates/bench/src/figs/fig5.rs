//! Figure 5 — *Effect of DDIO ways allocation on network data leaks and KVS
//! performance* (§VI-A).
//!
//! MICA KVS with 512 B and 1 KB items, RX buffers per core ∈
//! {512, 1024, 2048}; DDIO {2, 4, 6, 12} ways, each with and without
//! Sweeper, plus Ideal-DDIO. This is the paper's headline result: Sweeper
//! eliminates consumed-buffer evictions, matching Ideal-DDIO's access count
//! and boosting throughput by up to ~2.6× over plain DDIO.

use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;

use super::Figure;
use crate::{f1, format_breakdown, kvs_experiment, SystemPoint, Table};

/// RX ring depths swept.
pub const BUFFERS: [usize; 3] = [512, 1024, 2048];

/// Item (and hence packet payload) sizes swept.
pub const ITEM_BYTES: [u64; 2] = [512, 1024];

/// The §VI-A configurations.
pub fn configs() -> Vec<SystemPoint> {
    let mut out = Vec::new();
    for ways in [2, 4, 6, 12] {
        out.push(SystemPoint::ddio(ways));
        out.push(SystemPoint::ddio_sweeper(ways));
    }
    out.push(SystemPoint::ideal());
    out
}

/// The §VI-A headline ways × Sweeper sweep.
pub struct Fig5;

impl Figure for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "DDIO ways × Sweeper on KVS: the headline throughput result (§VI-A)"
    }

    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        let mut out = Vec::new();
        for item in ITEM_BYTES {
            for point in configs() {
                for bufs in BUFFERS {
                    out.push(ExperimentPoint::peak(
                        format!("{item}B {} rx={bufs}", point.label()),
                        kvs_experiment(profile, point, item, bufs, 4),
                    ));
                }
            }
        }
        out
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let mut rows = outcomes.chunks_exact(BUFFERS.len());
        for item in ITEM_BYTES {
            let title_a =
                format!("Figure 5a — KVS peak throughput (Mrps), packet size {item}B");
            let title_b =
                format!("Figure 5b — memory bandwidth at peak (GB/s), packet size {item}B");
            let title_c =
                format!("Figure 5c — memory accesses per KVS request, packet size {item}B");
            let mut fig_a = Table::new(&title_a, &["config", "rx=512", "rx=1024", "rx=2048"]);
            let mut fig_b = Table::new(&title_b, &["config", "rx=512", "rx=1024", "rx=2048"]);
            let mut fig_c = Table::new(&title_c, &["rx/core", "config", "breakdown"]);

            for point in configs() {
                let row = rows.next().expect("one outcome row per config");
                let mut tputs = vec![point.label()];
                let mut bws = vec![point.label()];
                for (bufs, peak) in BUFFERS.iter().zip(row) {
                    tputs.push(f1(peak.throughput_mrps()));
                    bws.push(f1(peak.report.memory_bandwidth_gbps()));
                    fig_c.row(vec![
                        bufs.to_string(),
                        point.label(),
                        format_breakdown(&peak.report),
                    ]);
                }
                fig_a.row(tputs);
                fig_b.row(bws);
            }

            fig_a.emit(&format!("fig5a_{item}"));
            fig_b.emit(&format!("fig5b_{item}"));
            fig_c.emit(&format!("fig5c_{item}"));
        }
    }
}
