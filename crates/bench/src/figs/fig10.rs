//! Figure 10 — *Effect of buffer provisioning on performance of workload
//! with spiky behavior* (§VI-F).
//!
//! The shallow-buffering study: the KVS with random [1, 100] µs processing
//! delay spikes, 1 KB request packets, default 2-way DDIO.
//!
//! * **(a)** peak throughput achievable *without packet drops* as a function
//!   of the per-core buffer depth (128 … 2048), baseline vs Sweeper.
//! * **(b)** packet-drop rate as a function of the arrival rate for 128 and
//!   2048 buffers (and 2048 + Sweeper).

use sweeper_core::experiment::{Experiment, ExperimentConfig, PeakCriteria};
use sweeper_core::server::SweeperMode;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use sweeper_workloads::spiky::{SpikeConfig, Spiky};

use crate::{f1, wrapped_run_options, Table};

/// Buffer depths swept in Figure 10a.
pub const BUFFERS: [usize; 5] = [128, 256, 512, 1024, 2048];

/// Arrival rates swept in Figure 10b (Mrps).
pub const RATES_MRPS: [f64; 7] = [5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0];

/// Builds the spiky-KVS experiment.
pub fn spiky_experiment(rx_buffers: usize, sweeper: SweeperMode) -> Experiment {
    let cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .rx_buffers_per_core(rx_buffers)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(wrapped_run_options(24, rx_buffers));
    Experiment::new(cfg, || {
        Spiky::new(
            MicaKvs::new(KvsConfig::paper_default()),
            SpikeConfig::paper_default(),
        )
    })
}

/// Runs the experiment and emits both sub-figures.
pub fn run() {
    // ---- (a) no-drop peak vs buffer depth ----
    let mut fig_a = Table::new(
        "Figure 10a — peak throughput without packet drops (Mrps), 2-way DDIO",
        &["rx/core", "Baseline", "Sweeper"],
    );
    for bufs in BUFFERS {
        let mut cells = vec![bufs.to_string()];
        for sweeper in [SweeperMode::Disabled, SweeperMode::Enabled] {
            let exp = spiky_experiment(bufs, sweeper);
            let peak = exp.find_peak(PeakCriteria::no_drops());
            cells.push(f1(peak.throughput_mrps()));
            eprintln!(
                "[fig10a] rx={bufs} {sweeper}: {:.1} Mrps (no drops)",
                peak.throughput_mrps()
            );
        }
        fig_a.row(cells);
    }
    fig_a.emit("fig10a");

    // ---- (b) drop rate vs arrival rate ----
    let mut fig_b = Table::new(
        "Figure 10b — packet drop rate (%) vs arrival rate (Mrps)",
        &[
            "rate (Mrps)",
            "128 buffers",
            "2048 buffers",
            "2048 + Sweeper",
        ],
    );
    let series = [
        (128usize, SweeperMode::Disabled),
        (2048, SweeperMode::Disabled),
        (2048, SweeperMode::Enabled),
    ];
    for rate in RATES_MRPS {
        let mut cells = vec![format!("{rate:.0}")];
        for (bufs, sweeper) in series {
            let exp = spiky_experiment(bufs, sweeper);
            let report = exp.run_at_rate(rate * 1e6);
            cells.push(format!("{:.3}", report.drop_rate() * 100.0));
            eprintln!(
                "[fig10b] rate={rate} rx={bufs} {sweeper}: drop {:.3}%",
                report.drop_rate() * 100.0
            );
        }
        fig_b.row(cells);
    }
    fig_b.emit("fig10b");
}
