//! Figure 10 — *Effect of buffer provisioning on performance of workload
//! with spiky behavior* (§VI-F).
//!
//! The shallow-buffering study: the KVS with random [1, 100] µs processing
//! delay spikes, 1 KB request packets, default 2-way DDIO.
//!
//! * **(a)** peak throughput achievable *without packet drops* as a function
//!   of the per-core buffer depth (128 … 2048), baseline vs Sweeper.
//! * **(b)** packet-drop rate as a function of the arrival rate for 128 and
//!   2048 buffers (and 2048 + Sweeper).

use sweeper_core::experiment::{Experiment, ExperimentConfig, PeakCriteria};
use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;
use sweeper_core::server::SweeperMode;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use sweeper_workloads::spiky::{SpikeConfig, Spiky};

use super::Figure;
use crate::{f1, wrapped_run_options, Table};

/// Buffer depths swept in Figure 10a.
pub const BUFFERS: [usize; 5] = [128, 256, 512, 1024, 2048];

/// Arrival rates swept in Figure 10b (Mrps).
pub const RATES_MRPS: [f64; 7] = [5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0];

/// The `(rx_buffers, sweeper)` series of Figure 10b.
pub const B_SERIES: [(usize, SweeperMode); 3] = [
    (128, SweeperMode::Disabled),
    (2048, SweeperMode::Disabled),
    (2048, SweeperMode::Enabled),
];

/// Builds the spiky-KVS experiment.
pub fn spiky_experiment(
    profile: RunProfile,
    rx_buffers: usize,
    sweeper: SweeperMode,
) -> Experiment {
    ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .rx_buffers_per_core(rx_buffers)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(wrapped_run_options(profile, 24, rx_buffers))
        .experiment(|| {
            Spiky::new(
                MicaKvs::new(KvsConfig::paper_default()),
                SpikeConfig::paper_default(),
            )
        })
}

/// The §VI-F shallow-buffering study.
pub struct Fig10;

impl Figure for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn description(&self) -> &'static str {
        "Buffer provisioning under spiky service times: drops vs depth (§VI-F)"
    }

    /// The no-drop peak points of (a) first, then the rate sweep of (b).
    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        let mut out = Vec::new();
        for bufs in BUFFERS {
            for sweeper in [SweeperMode::Disabled, SweeperMode::Enabled] {
                out.push(ExperimentPoint::peak_with(
                    format!("a rx={bufs} {sweeper}"),
                    spiky_experiment(profile, bufs, sweeper),
                    PeakCriteria::no_drops(),
                ));
            }
        }
        for rate in RATES_MRPS {
            for (bufs, sweeper) in B_SERIES {
                out.push(ExperimentPoint::at_rate(
                    format!("b rate={rate} rx={bufs} {sweeper}"),
                    spiky_experiment(profile, bufs, sweeper),
                    rate * 1e6,
                ));
            }
        }
        out
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let split = BUFFERS.len() * 2;
        let (raw_a, raw_b) = outcomes.split_at(split);

        // ---- (a) no-drop peak vs buffer depth ----
        let mut fig_a = Table::new(
            "Figure 10a — peak throughput without packet drops (Mrps), 2-way DDIO",
            &["rx/core", "Baseline", "Sweeper"],
        );
        for (bufs, pair) in BUFFERS.iter().zip(raw_a.chunks_exact(2)) {
            fig_a.row(vec![
                bufs.to_string(),
                f1(pair[0].throughput_mrps()),
                f1(pair[1].throughput_mrps()),
            ]);
        }
        fig_a.emit("fig10a");

        // ---- (b) drop rate vs arrival rate ----
        let mut fig_b = Table::new(
            "Figure 10b — packet drop rate (%) vs arrival rate (Mrps)",
            &[
                "rate (Mrps)",
                "128 buffers",
                "2048 buffers",
                "2048 + Sweeper",
            ],
        );
        for (rate, row) in RATES_MRPS.iter().zip(raw_b.chunks_exact(B_SERIES.len())) {
            let mut cells = vec![format!("{rate:.0}")];
            for outcome in row {
                cells.push(format!("{:.3}", outcome.report.drop_rate() * 100.0));
            }
            fig_b.row(cells);
        }
        fig_b.emit("fig10b");
    }
}
