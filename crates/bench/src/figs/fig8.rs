//! Figure 8 — *Effect of network data leaks and Sweeper on performance as a
//! function of memory bandwidth availability* (§VI-D).
//!
//! MICA KVS, three workload scenarios (512 B items / 512 buffers, 1 KB /
//! 512, 1 KB / 2048), provisioned with 3, 4, and 8 memory channels; DDIO
//! {2, 6, 12} ways ± Sweeper plus Ideal-DDIO.

use sweeper_core::fleet::{ExperimentPoint, PointOutcome};
use sweeper_core::profile::RunProfile;

use super::Figure;
use crate::{f1, kvs_experiment, SystemPoint, Table};

/// The three workload scenarios `(item_bytes, rx_buffers)`.
pub const SCENARIOS: [(u64, usize); 3] = [(512, 512), (1024, 512), (1024, 2048)];

/// Channel counts swept (Table I: 3 to 8).
pub const CHANNELS: [usize; 3] = [3, 4, 8];

/// The §VI-D configurations.
pub fn configs() -> Vec<SystemPoint> {
    let mut out = Vec::new();
    for ways in [2, 6, 12] {
        out.push(SystemPoint::ddio(ways));
        out.push(SystemPoint::ddio_sweeper(ways));
    }
    out.push(SystemPoint::ideal());
    out
}

/// The §VI-D memory-bandwidth sensitivity sweep.
pub struct Fig8;

impl Figure for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn description(&self) -> &'static str {
        "Leaks and Sweeper vs provisioned memory bandwidth (§VI-D)"
    }

    fn points(&self, profile: RunProfile) -> Vec<ExperimentPoint> {
        let mut out = Vec::new();
        for (item, bufs) in SCENARIOS {
            for point in configs() {
                for channels in CHANNELS {
                    out.push(ExperimentPoint::peak(
                        format!("{item}B/rx={bufs} {} ch={channels}", point.label()),
                        kvs_experiment(profile, point, item, bufs, channels),
                    ));
                }
            }
        }
        out
    }

    fn render(&self, _profile: RunProfile, outcomes: &[PointOutcome]) {
        let mut rows = outcomes.chunks_exact(CHANNELS.len());
        for (item, bufs) in SCENARIOS {
            let title_a =
                format!("Figure 8a — KVS peak throughput (Mrps), {item}B packets, rx={bufs}");
            let title_b =
                format!("Figure 8b — memory bandwidth at peak (GB/s), {item}B packets, rx={bufs}");
            let mut fig_a = Table::new(&title_a, &["config", "3ch", "4ch", "8ch"]);
            let mut fig_b = Table::new(&title_b, &["config", "3ch", "4ch", "8ch"]);

            for point in configs() {
                let row = rows.next().expect("one outcome row per config");
                let mut tputs = vec![point.label()];
                let mut bws = vec![point.label()];
                for peak in row {
                    tputs.push(f1(peak.throughput_mrps()));
                    bws.push(f1(peak.report.memory_bandwidth_gbps()));
                }
                fig_a.row(tputs);
                fig_b.row(bws);
            }

            fig_a.emit(&format!("fig8a_{item}_{bufs}"));
            fig_b.emit(&format!("fig8b_{item}_{bufs}"));
        }
    }
}
