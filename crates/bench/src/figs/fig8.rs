//! Figure 8 — *Effect of network data leaks and Sweeper on performance as a
//! function of memory bandwidth availability* (§VI-D).
//!
//! MICA KVS, three workload scenarios (512 B items / 512 buffers, 1 KB /
//! 512, 1 KB / 2048), provisioned with 3, 4, and 8 memory channels; DDIO
//! {2, 6, 12} ways ± Sweeper plus Ideal-DDIO.

use sweeper_core::experiment::PeakCriteria;

use crate::{f1, kvs_experiment, SystemPoint, Table};

/// The three workload scenarios `(item_bytes, rx_buffers)`.
pub const SCENARIOS: [(u64, usize); 3] = [(512, 512), (1024, 512), (1024, 2048)];

/// Channel counts swept (Table I: 3 to 8).
pub const CHANNELS: [usize; 3] = [3, 4, 8];

/// The §VI-D configurations.
pub fn points() -> Vec<SystemPoint> {
    let mut out = Vec::new();
    for ways in [2, 6, 12] {
        out.push(SystemPoint::ddio(ways));
        out.push(SystemPoint::ddio_sweeper(ways));
    }
    out.push(SystemPoint::ideal());
    out
}

/// Runs the experiment and emits throughput and bandwidth tables.
pub fn run() {
    for (item, bufs) in SCENARIOS {
        let title_a = format!(
            "Figure 8a — KVS peak throughput (Mrps), {item}B packets, rx={bufs}"
        );
        let title_b = format!(
            "Figure 8b — memory bandwidth at peak (GB/s), {item}B packets, rx={bufs}"
        );
        let mut fig_a = Table::new(&title_a, &["config", "3ch", "4ch", "8ch"]);
        let mut fig_b = Table::new(&title_b, &["config", "3ch", "4ch", "8ch"]);

        for point in points() {
            let mut tputs = vec![point.label()];
            let mut bws = vec![point.label()];
            for channels in CHANNELS {
                let exp = kvs_experiment(point, item, bufs, channels);
                let peak = exp.find_peak(PeakCriteria::default());
                tputs.push(f1(peak.throughput_mrps()));
                bws.push(f1(peak.report.memory_bandwidth_gbps()));
                eprintln!(
                    "[fig8] {item}B/rx={bufs} {} ch={channels}: {:.1} Mrps",
                    point.label(),
                    peak.throughput_mrps()
                );
            }
            fig_a.row(tputs);
            fig_b.row(bws);
        }

        fig_a.emit(&format!("fig8a_{item}_{bufs}"));
        fig_b.emit(&format!("fig8b_{item}_{bufs}"));
    }
}
