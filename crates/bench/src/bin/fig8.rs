//! Regenerates the paper's fig8. See `sweeper_bench::figs::fig8`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig8");
}
