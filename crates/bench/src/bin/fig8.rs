//! Regenerates the paper's fig8. See `sweeper_bench::figs::fig8`.

fn main() {
    sweeper_bench::figs::fig8::run();
}
