//! Regenerates the paper's fig5. See `sweeper_bench::figs::fig5`.

fn main() {
    sweeper_bench::figs::fig5::run();
}
