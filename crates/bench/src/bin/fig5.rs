//! Regenerates the paper's fig5. See `sweeper_bench::figs::fig5`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig5");
}
