//! Regenerates the paper's fig2. See `sweeper_bench::figs::fig2`.

fn main() {
    sweeper_bench::figs::fig2::run();
}
