//! Regenerates the paper's fig2. See `sweeper_bench::figs::fig2`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig2");
}
