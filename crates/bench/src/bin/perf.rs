//! End-to-end simulator-throughput benchmark (`BENCH_sim.json`).
//!
//! Measures how fast the *host* simulates the paper's Figure-1 KVS scenario
//! (DDIO 2 ways, 1 KB items, 1024 RX buffers/core, 24 cores, 15 Mrps — a
//! stable operating point below the configuration's peak), reporting
//! **simulated block accesses per wall-clock second**. This is the
//! simulator's own speed, the quantity that decides how much of the paper's
//! evaluation fits in a CI budget; the perf-trajectory artifact
//! `BENCH_sim.json` tracks it across PRs.
//!
//! ```text
//! perf [--profile fast|smoke] [--json PATH]      # measure and write JSON
//! perf --check PATH [--max-regress PCT]          # CI gate: compare against
//!                                                # the committed baseline
//! ```
//!
//! `--check` re-measures under the profile recorded in `PATH` for the same
//! scenario and fails (exit 1) if accesses/sec regressed by more than
//! `--max-regress` percent (default 20). Simulation *outputs* are
//! deterministic; only wall time varies between hosts, hence the generous
//! tolerance.

use std::time::Instant;

use sweeper_bench::SystemPoint;
use sweeper_core::experiment::ExperimentConfig;
use sweeper_core::profile::RunProfile;
use sweeper_core::server::{RunOptions, RunReport};
use sweeper_core::telemetry::Record;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

/// Fixed Poisson rate: below the DDIO-2-way rx=1024 peak (~26 Mrps in
/// `results/fig1a.csv`) so queues stay bounded and run length is stable.
const RATE: f64 = 15.0e6;

/// Measured requests per profile. Warmup is folded into the measured window
/// (warmup 0) so every simulated access is counted against wall time.
fn requests(profile: RunProfile) -> u64 {
    match profile {
        RunProfile::Full | RunProfile::Fast => 24_000,
        RunProfile::Smoke => 4_000,
    }
}

/// One measured point of the perf trajectory.
struct Measurement {
    profile: RunProfile,
    wall_secs: f64,
    accesses: u64,
    completed: u64,
    accesses_per_sec: f64,
}

fn run_once(profile: RunProfile) -> (RunReport, f64) {
    // Same machine/workload as `kvs_experiment(profile, ddio(2), 1024, 1024, 4)`
    // but with warmup folded into the measured window so every simulated
    // access counts against wall time.
    let kvs_cfg = KvsConfig::paper_default().with_item_bytes(1024);
    let exp = SystemPoint::ddio(2)
        .apply(
            ExperimentConfig::paper_default()
                .rx_buffers_per_core(1024)
                .packet_bytes(1024 + HEADER_BYTES)
                .channels(4)
                .run_options(RunOptions {
                    warmup_requests: 0,
                    measure_requests: requests(profile),
                    max_cycles: 120_000_000_000,
                    min_warmup_cycles: 0,
                    min_measure_cycles: 0,
                }),
        )
        .experiment(move || MicaKvs::new(kvs_cfg));
    let t = Instant::now();
    let report = exp.run_at_rate(RATE);
    (report, t.elapsed().as_secs_f64())
}

fn measure(profile: RunProfile) -> Measurement {
    let (report, wall) = run_once(profile);
    assert!(!report.timed_out, "perf scenario must complete its quota");
    let accesses = report.mem.block_accesses;
    Measurement {
        profile,
        wall_secs: wall,
        accesses,
        completed: report.completed,
        accesses_per_sec: accesses as f64 / wall,
    }
}

/// The perf-trajectory record, written through the shared telemetry JSON
/// writer. Field names are the `BENCH_sim.json` contract [`json_field`]
/// reads back; wall time and rate are rounded to the baseline's historical
/// precision (ms, whole accesses/s) to keep diffs quiet.
fn to_record(m: &Measurement) -> Record {
    Record::new()
        .with("bench", "fig1_kvs_e2e")
        .with("scenario", "KVS ddio2 rx=1024 1KB items, 24 cores, 15 Mrps")
        .with("metric", "simulated block accesses per host second")
        .with("profile", m.profile.to_string())
        .with("requests", m.completed)
        .with("simulated_block_accesses", m.accesses)
        .with("wall_seconds", (m.wall_secs * 1000.0).round() / 1000.0)
        .with("accesses_per_sec", m.accesses_per_sec.round())
}

/// Minimal field extraction — the file is machine-written by this binary.
fn json_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &text[text.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim().trim_matches('"').to_string())
}

const USAGE: &str =
    "usage: perf [--profile fast|smoke] [--json PATH] [--check PATH] [--max-regress PCT]";

/// Arg/baseline errors print one line plus usage and exit with status 2 —
/// never a panic with a backtrace.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut profile = RunProfile::from_env();
    if matches!(profile, RunProfile::Full) {
        // Full-profile figure runs make sense; a full-profile *perf probe*
        // just wastes CI minutes. Fast is the trajectory's reference scale.
        profile = RunProfile::Fast;
    }
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut max_regress = 20.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("flag {name} needs a value")))
        };
        match flag.as_str() {
            "--profile" => {
                profile = value("--profile").parse().unwrap_or_else(|e| fail(e));
            }
            "--json" => json_path = Some(value("--json")),
            "--check" => check_path = Some(value("--check")),
            "--max-regress" => {
                max_regress = value("--max-regress")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-regress must be a number"));
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(format!("cannot read baseline {path}: {e}")));
        let base_rate: f64 = json_field(&committed, "accesses_per_sec")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fail(format!("baseline {path} is missing accesses_per_sec")));
        let base_profile: RunProfile = json_field(&committed, "profile")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fail(format!("baseline {path} is missing profile")));
        let m = measure(base_profile);
        let delta = (m.accesses_per_sec / base_rate - 1.0) * 100.0;
        println!(
            "perf check [{}]: {:.2} M accesses/s vs baseline {:.2} M ({:+.1}%)",
            base_profile,
            m.accesses_per_sec / 1e6,
            base_rate / 1e6,
            delta
        );
        if delta < -max_regress {
            eprintln!("FAIL: simulator throughput regressed more than {max_regress}%");
            std::process::exit(1);
        }
        return;
    }

    let m = measure(profile);
    println!(
        "fig1_kvs_e2e [{}]: {} simulated accesses in {:.2}s = {:.2} M accesses/s ({} requests)",
        m.profile,
        m.accesses,
        m.wall_secs,
        m.accesses_per_sec / 1e6,
        m.completed
    );
    if let Some(path) = json_path {
        let json = format!("{}\n", to_record(&m).to_json_pretty());
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
