//! Regenerates the paper's fig9. See `sweeper_bench::figs::fig9`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig9");
}
