//! Regenerates the paper's fig9. See `sweeper_bench::figs::fig9`.

fn main() {
    sweeper_bench::figs::fig9::run();
}
