//! Regenerates the paper's Table I. See `sweeper_bench::figs::table1`.

fn main() {
    sweeper_bench::figure_main("table1");
}
