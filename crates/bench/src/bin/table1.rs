//! Regenerates the paper's table1. See `sweeper_bench::figs::table1`.

fn main() {
    sweeper_bench::figs::table1::run();
}
