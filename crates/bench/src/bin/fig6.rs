//! Regenerates the paper's fig6. See `sweeper_bench::figs::fig6`.

fn main() {
    sweeper_bench::figs::fig6::run();
}
