//! Regenerates the paper's fig6. See `sweeper_bench::figs::fig6`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig6");
}
