//! Regenerates the paper's fig1. See `sweeper_bench::figs::fig1`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig1");
}
