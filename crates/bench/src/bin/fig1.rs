//! Regenerates the paper's fig1. See `sweeper_bench::figs::fig1`.

fn main() {
    sweeper_bench::figs::fig1::run();
}
