//! Runs the complete evaluation: every table and figure of the paper, in
//! order. Expect ~15–30 minutes at full run lengths (set `SWEEPER_FAST=1`
//! for a quick pass).

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let stages: [(&str, fn()); 9] = [
        ("Table I", sweeper_bench::figs::table1::run),
        ("Figure 1", sweeper_bench::figs::fig1::run),
        ("Figure 2", sweeper_bench::figs::fig2::run),
        ("Figure 5", sweeper_bench::figs::fig5::run),
        ("Figure 6", sweeper_bench::figs::fig6::run),
        ("Figure 7", sweeper_bench::figs::fig7::run),
        ("Figure 8", sweeper_bench::figs::fig8::run),
        ("Figure 9", sweeper_bench::figs::fig9::run),
        ("Figure 10", sweeper_bench::figs::fig10::run),
    ];
    for (name, f) in stages {
        let t = Instant::now();
        eprintln!("\n##### {name} #####");
        f();
        eprintln!("##### {name} done in {:.1?} #####", t.elapsed());
    }
    eprintln!("\nComplete evaluation finished in {:.1?}", t0.elapsed());
}
