//! Runs the complete evaluation: every table and figure of the paper, in
//! order, through the shared figure registry. Expect ~15–30 minutes at full
//! run lengths on one core; use `--jobs N` (or `SWEEPER_JOBS`) to fan the
//! sweep points out and `--profile fast` (or `SWEEPER_FAST=1`) for a quick
//! pass.

use std::time::Instant;

use sweeper_bench::{run_figure, FigContext};

fn main() {
    let ctx = match FigContext::from_env_and_args(std::env::args().skip(1)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    let names = std::iter::once("table1")
        .chain(sweeper_bench::figs::registry().iter().map(|f| f.name()));
    for name in names {
        eprintln!("\n##### {name} #####");
        run_figure(name, &ctx).expect("registry names are valid");
    }
    eprintln!("\nComplete evaluation finished in {:.1?}", t0.elapsed());
}
