//! Runs the DESIGN.md ablation study. See `sweeper_bench::figs::ablations`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("ablations");
}
