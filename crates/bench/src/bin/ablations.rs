//! Ablation study for the design decisions DESIGN.md calls out.
//!
//! Runs the KVS scenario (1 KB items, 1024 buffers/core, 2-way DDIO, fixed
//! 18 Mrps load) while toggling one modelling decision at a time, and prints
//! how the paper's key observables move:
//!
//! 1. **LLC read-hit retention** vs strict-victim migration — retention is
//!    what makes consumed buffers accumulate (dirty) in the DDIO ways.
//! 2. **DDIO insertion mask** vs strict way partition — the insertion-mask
//!    semantics allow §VI-C's "runaway buffers".
//! 3. **DRAM realism knobs** (bus turnaround, activation overhead, refresh)
//!    — these set the effective bandwidth ceiling that throttles the leaky
//!    baseline.

use sweeper_bench::Table;
use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::server::{RunOptions, RunReport, SweeperMode};
use sweeper_sim::cache::ReplacementPolicy;
use sweeper_sim::hierarchy::MachineConfig;
use sweeper_sim::stats::TrafficClass;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

fn run(mutate: impl Fn(&mut MachineConfig), sweeper: SweeperMode) -> RunReport {
    let mut cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .rx_buffers_per_core(1024)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(RunOptions {
            warmup_requests: 30_000,
            measure_requests: 15_000,
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    let mut machine = *cfg.machine();
    mutate(&mut machine);
    cfg = cfg.with_machine(machine);
    Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default())).run_at_rate(18.0e6)
}

fn row(name: &str, report: &RunReport) -> Vec<String> {
    let counts = report.class_counts();
    let per = |c: TrafficClass| counts[c] as f64 / report.completed as f64;
    vec![
        name.to_string(),
        format!("{:.1}", report.throughput_mrps()),
        format!("{:.1}", report.memory_bandwidth_gbps()),
        format!("{:.2}", per(TrafficClass::RxEvct)),
        format!("{:.2}", per(TrafficClass::CpuRxRd)),
        format!("{:.0}", report.dram_latency.mean()),
    ]
}

fn main() {
    let headers = &["variant", "Mrps", "GB/s", "RxEvct/rq", "CpuRxRd/rq", "dram mean"];

    let mut t1 = Table::new(
        "Ablation 1 — LLC read-hit policy (baseline DDIO 2-way, 18 Mrps)",
        headers,
    );
    t1.row(row("retain (default)", &run(|_| {}, SweeperMode::Disabled)));
    t1.row(row(
        "strict victim",
        &run(|m| m.llc_read_hit_retains = false, SweeperMode::Disabled),
    ));
    t1.emit("ablation_llc_policy");
    println!(
        "Retention keeps consumed buffers dirty in the DDIO ways (high RxEvct);\n\
         strict-victim migration shifts the churn into the private caches.\n"
    );

    let mut t2 = Table::new(
        "Ablation 2 — DDIO way semantics (baseline DDIO 2-way, 18 Mrps)",
        headers,
    );
    t2.row(row("insertion mask (default)", &run(|_| {}, SweeperMode::Disabled)));
    t2.row(row(
        "strict partition",
        &run(|m| m.ddio_strict_partition = true, SweeperMode::Disabled),
    ));
    t2.emit("ablation_ddio_partition");
    println!(
        "The insertion mask lets CPU spills of network lines 'run away' into\n\
         non-DDIO ways (§VI-C); a strict partition confines them.\n"
    );

    let mut t3 = Table::new(
        "Ablation 3 — DRAM realism (baseline vs Sweeper at 18 Mrps)",
        headers,
    );
    for (name, f) in [
        (
            "realistic (default)",
            Box::new(|_: &mut MachineConfig| {}) as Box<dyn Fn(&mut MachineConfig)>,
        ),
        (
            "no turnaround",
            Box::new(|m: &mut MachineConfig| m.dram.t_turnaround = 0),
        ),
        (
            "no activation overhead",
            Box::new(|m: &mut MachineConfig| m.dram.t_act_bus = 0),
        ),
        (
            "no refresh",
            Box::new(|m: &mut MachineConfig| m.dram.t_refi = 0),
        ),
    ] {
        t3.row(row(&format!("{name}, base"), &run(&f, SweeperMode::Disabled)));
        t3.row(row(&format!("{name}, sweep"), &run(&f, SweeperMode::Enabled)));
    }
    t3.emit("ablation_dram");
    println!(
        "The DRAM realism knobs set the effective bandwidth ceiling; removing\n\
         them narrows the latency gap between the leaky baseline and Sweeper\n\
         but does not change who wins.\n"
    );

    let mut t4 = Table::new(
        "Ablation 4 — LLC replacement & prefetch (baseline DDIO 2-way, 18 Mrps)",
        headers,
    );
    t4.row(row("LRU (default)", &run(|_| {}, SweeperMode::Disabled)));
    t4.row(row(
        "SRRIP LLC",
        &run(|m| m.llc_replacement = ReplacementPolicy::Srrip, SweeperMode::Disabled),
    ));
    t4.row(row(
        "L2 next-line prefetch",
        &run(|m| m.l2_next_line_prefetch = true, SweeperMode::Disabled),
    ));
    t4.emit("ablation_llc_policy2");
    println!(
        "SRRIP's scan resistance changes how long dead buffers survive in\n\
         the LLC; the prefetcher trades extra bandwidth for lower demand\n\
         latency. Neither alters Sweeper's conclusion."
    );
}
