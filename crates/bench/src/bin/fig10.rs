//! Regenerates the paper's fig10. See `sweeper_bench::figs::fig10`.

fn main() {
    sweeper_bench::figs::fig10::run();
}
