//! Regenerates the paper's fig10. See `sweeper_bench::figs::fig10`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig10");
}
