//! Quick paper-scale probe used during development to sanity-check the
//! simulator's speed and the qualitative trends before running the full
//! figure harness. Kept as a fast smoke-check entry point.

use std::time::Instant;

use sweeper_core::experiment::{Experiment, ExperimentConfig};
use sweeper_core::server::{RunOptions, SweeperMode};
use sweeper_sim::hierarchy::InjectionPolicy;
use sweeper_workloads::kvs::{KvsConfig, MicaKvs};

fn main() {
    let opts = RunOptions {
        warmup_requests: 3_000,
        measure_requests: 12_000,
        max_cycles: 30_000_000_000,
        min_warmup_cycles: 0,
        min_measure_cycles: 0,
    };
    let base = ExperimentConfig::paper_default()
        .rx_buffers_per_core(1024)
        .packet_bytes(1024 + 64)
        .run_options(opts);

    for (label, cfg) in [
        ("DMA", base.clone().injection(InjectionPolicy::Dma)),
        ("DDIO 2w", base.clone().ddio_ways(2)),
        (
            "DDIO 2w + Sweeper",
            base.clone().ddio_ways(2).sweeper(SweeperMode::Enabled),
        ),
        ("Ideal", base.clone().injection(InjectionPolicy::Ideal)),
    ] {
        let t0 = Instant::now();
        let exp = Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default()));
        let report = exp.run_at_rate(20.0e6);
        println!(
            "{label:>18}: {:.1} Mrps  bw {:.1} GB/s  acc/req {:.1}  p99 {} cyc  goodput {:.3}  ({:.2?} wall)",
            report.throughput_mrps(),
            report.memory_bandwidth_gbps(),
            report.total_accesses_per_request(),
            report.request_latency.percentile(0.99),
            report.goodput_ratio(),
            t0.elapsed(),
        );
        for (class, v) in report.accesses_per_request() {
            if v > 0.005 {
                println!("{:>22}{class}: {v:.2}", "");
            }
        }
    }
}
