//! Runs the flight-recorder outlier drill-down. See
//! `sweeper_bench::figs::outliers`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("outliers");
}
