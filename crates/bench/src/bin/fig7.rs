//! Regenerates the paper's fig7. See `sweeper_bench::figs::fig7`.

fn main() {
    sweeper_bench::figs::fig7::run();
}
