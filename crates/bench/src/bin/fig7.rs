//! Regenerates the paper's fig7. See `sweeper_bench::figs::fig7`.
//!
//! Flags: `--jobs N`, `--profile full|fast|smoke`.

fn main() {
    sweeper_bench::figure_main("fig7");
}
