//! The simulated networked server: cores, rings, queue pairs, and Sweeper.
//!
//! Reproduces the paper's system model (§III, Appendix A): a 24-core server
//! with an integrated Scale-Out-NUMA-style NIC, per-core RX rings, and a
//! traffic generator injecting packets at a configurable Poisson rate (or
//! keeping per-core queues topped up to a batching depth *D*, §IV-B).
//!
//! Each core runs a run-to-completion request loop:
//!
//! 1. dequeue the next packet from the core's RX ring,
//! 2. run the workload's handler, which records the request's
//!    memory-reference trace (RX buffer reads, application data accesses,
//!    compute),
//! 3. construct and transmit the response through the Work Queue,
//! 4. with Sweeper enabled, `relinquish` the consumed RX buffer (§V-A) —
//!    or, for zero-copy forwarding, set the Work Queue entry's
//!    `sweep_buffer` flag so the NIC sweeps after transmission (§V-D).
//!
//! The engine is event-driven at *operation* granularity: each memory
//! access of each request is its own event, so accesses from all cores and
//! the NIC interleave in global simulated time. The engine is fully
//! deterministic for a given seed.

use std::collections::VecDeque;

use sweeper_nic::nic::{Nic, NicConfig};
use sweeper_nic::packet::Packet;
use sweeper_nic::queue::{CqEntry, QueuePair, WqEntry};
use sweeper_nic::traffic::{ArrivalProcess, CoreAssigner, CoreAssignment, PoissonArrivals};
use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::check::{CheckConfig, CheckReport, ViolationKind};
use sweeper_sim::engine::{cycles_to_secs, EventQueue, SimRng};
use sweeper_sim::hierarchy::{LlcOccupancy, MachineConfig, MemorySystem};
use sweeper_sim::span::{OutlierSnapshot, ProfileNode, SpanKind, SpanRing};
use sweeper_sim::stats::{ClassCounts, Histogram, MemStats};
use sweeper_sim::telemetry::{CsvTable, Record, Value};
use sweeper_sim::trace::Trace;
use sweeper_sim::Cycle;

use crate::workload::{execute_op, BackgroundTenant, CoreEnv, Op, TxAction, Workload};

// Re-exported so callers configuring a server find the mode where they need
// it; it is defined alongside the mechanism in [`crate::sweep`].
pub use crate::sweep::SweeperMode;

/// Server configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The simulated machine (Table I).
    pub machine: MachineConfig,
    /// Cores running the networked workload; the remaining cores are free
    /// for a background tenant (§VI-E).
    pub active_cores: u16,
    /// RX ring entries per core per endpoint (the paper's *B*).
    pub rx_entries: usize,
    /// Communicating endpoints per core (VIA/RDMA provisioning, §II-C).
    pub endpoints_per_core: usize,
    /// TX ring entries per core.
    pub tx_entries: usize,
    /// Bytes per RX/TX buffer entry (≥ packet size).
    pub buffer_bytes: u64,
    /// Request packet size in bytes.
    pub packet_bytes: u64,
    /// Packet arrival process.
    pub arrivals: ArrivalProcess,
    /// Core assignment of arriving packets.
    pub assignment: CoreAssignment,
    /// Sweeper RX-path mode.
    pub sweeper: SweeperMode,
    /// NIC-driven sweeping of (copied) TX buffers after transmission (§V-D
    /// extension; the paper's evaluation leaves this off).
    pub tx_sweep: bool,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// In-run time-series sampling (`None` — the default — disables it and
    /// keeps the event loop's sampling cost to a single branch).
    pub sampler: Option<SamplerConfig>,
    /// Request-level span recording: ring capacity in spans (`None` — the
    /// default — disables it; every hook is one branch when off).
    pub spans: Option<usize>,
    /// Hierarchical cycle/DRAM attribution per pipeline stage (the
    /// [`RunReport::profile`] tree).
    pub profiler: bool,
    /// Tail-latency flight recorder; forces span recording on.
    pub flight: Option<FlightRecorderConfig>,
    /// Memory-event tracing: ring capacity in events (`None` disables;
    /// dumped by the `sweeper trace` subcommand).
    pub memtrace: Option<usize>,
    /// Correctness harness: shadow-memory oracle plus periodic hierarchy
    /// invariant walks (`None` — the default — disables it; every hook is
    /// one branch when off).
    pub check: Option<CheckConfig>,
}

impl ServerConfig {
    /// Paper-shaped defaults: 24 cores, 1 KB packets, 1024 RX buffers per
    /// core, Poisson arrivals at a placeholder rate, Sweeper off.
    pub fn paper_default() -> Self {
        let machine = MachineConfig::paper_default();
        Self {
            active_cores: machine.cores as u16,
            machine,
            rx_entries: 1024,
            endpoints_per_core: 1,
            tx_entries: 256,
            buffer_bytes: 1024,
            packet_bytes: 1024,
            arrivals: ArrivalProcess::Poisson { rate: 1.0e6 },
            assignment: CoreAssignment::RoundRobin,
            sweeper: SweeperMode::Disabled,
            tx_sweep: false,
            seed: 0x5eed,
            sampler: None,
            spans: None,
            profiler: false,
            flight: None,
            memtrace: None,
            check: None,
        }
    }

    /// Tiny configuration for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        let machine = MachineConfig::tiny_for_tests();
        Self {
            active_cores: machine.cores as u16,
            machine,
            rx_entries: 16,
            endpoints_per_core: 1,
            tx_entries: 8,
            buffer_bytes: 1024,
            packet_bytes: 1024,
            arrivals: ArrivalProcess::Poisson { rate: 1.0e6 },
            assignment: CoreAssignment::RoundRobin,
            sweeper: SweeperMode::Disabled,
            tx_sweep: false,
            seed: 0x5eed,
            sampler: None,
            spans: None,
            profiler: false,
            flight: None,
            memtrace: None,
            check: None,
        }
    }
}

/// Configuration of the tail-latency flight recorder.
///
/// The recorder keeps an online percentile estimate of the end-to-end
/// request latency and, once enough requests have been measured, snapshots
/// the span window surrounding any request whose latency exceeds the
/// estimate ([`RunReport::outliers`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecorderConfig {
    /// The latency quantile whose online estimate is the trigger threshold.
    pub quantile: f64,
    /// Measured requests before the estimate is trusted and triggering
    /// starts.
    pub min_samples: u64,
    /// Spans captured per snapshot (the tail of the span ring).
    pub window: usize,
    /// Snapshot budget per run; once exhausted, later outliers are only
    /// counted in the latency histogram.
    pub max_snapshots: usize,
}

impl Default for FlightRecorderConfig {
    /// p99.9 trigger after 512 requests, 256-span windows, 32 snapshots.
    fn default() -> Self {
        Self {
            quantile: 0.999,
            min_samples: 512,
            window: 256,
            max_snapshots: 32,
        }
    }
}

/// Configuration of the in-run time-series sampler (see [`TimeSeries`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Simulated cycles between samples.
    pub every: Cycle,
    /// Samples retained; when the run outlives the window the oldest
    /// samples fall out of the ring (`TimeSeries::total_samples` still
    /// counts them).
    pub capacity: usize,
}

impl SamplerConfig {
    /// Samples every `every` cycles with the default retention window.
    pub fn every(every: Cycle) -> Self {
        Self {
            every,
            ..Self::default()
        }
    }
}

impl Default for SamplerConfig {
    /// One sample per million cycles (~312 µs simulated), retaining 4096.
    fn default() -> Self {
        Self {
            every: 1_000_000,
            capacity: 4096,
        }
    }
}

/// One time-series sample: deltas cover the interval since the previous
/// sample; occupancy and ring depth are instantaneous at the boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Cycles since measurement start (a multiple of the sampling period).
    pub at: Cycle,
    /// DRAM bandwidth over the interval, GB/s.
    pub bandwidth_gbps: f64,
    /// LLC occupancy by region kind at the boundary, in cache lines.
    pub llc: LlcOccupancy,
    /// Packets queued across all RX rings at the boundary.
    pub rx_ring_depth: usize,
    /// Packets offered during the interval.
    pub offered_delta: u64,
    /// Requests completed during the interval.
    pub completed_delta: u64,
    /// Packets dropped during the interval.
    pub dropped_delta: u64,
    /// DRAM transfers during the interval, per traffic class.
    pub class_delta: ClassCounts,
}

impl Sample {
    /// Structured export for the telemetry layer.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("at_cycles", self.at)
            .with("bandwidth_gbps", self.bandwidth_gbps)
            .with(
                "llc",
                Record::new()
                    .with("rx", self.llc.rx)
                    .with("tx", self.llc.tx)
                    .with("app", self.llc.app)
                    .with("other", self.llc.other),
            )
            .with("rx_ring_depth", self.rx_ring_depth)
            .with("offered_delta", self.offered_delta)
            .with("completed_delta", self.completed_delta)
            .with("dropped_delta", self.dropped_delta)
            .with("class_delta", self.class_delta.to_record())
    }
}

/// The sampled time series of one run (attached to [`RunReport`] when
/// [`ServerConfig::sampler`] is set).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    every: Cycle,
    capacity: usize,
    samples: VecDeque<Sample>,
    total: u64,
}

impl TimeSeries {
    fn new(cfg: SamplerConfig) -> Self {
        Self {
            every: cfg.every,
            capacity: cfg.capacity,
            samples: VecDeque::with_capacity(cfg.capacity.min(1024)),
            total: 0,
        }
    }

    fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
        self.total += 1;
    }

    fn clear(&mut self) {
        self.samples.clear();
        self.total = 0;
    }

    /// The sampling period in cycles.
    pub fn every(&self) -> Cycle {
        self.every
    }

    /// Samples taken over the whole run, including any that fell out of
    /// the retention window.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Structured export for the telemetry layer.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("every_cycles", self.every)
            .with("total_samples", self.total)
            .with("retained", self.samples.len())
            .with(
                "samples",
                self.samples
                    .iter()
                    .map(|s| Value::from(s.to_record()))
                    .collect::<Vec<_>>(),
            )
    }

    /// CSV export in the workspace's shared dialect, one row per sample,
    /// with extra caller-supplied manifest comment lines.
    pub fn to_csv_with_comments(&self, comments: &[(String, String)]) -> String {
        let mut headers = vec![
            "at_cycles",
            "bandwidth_gbps",
            "llc_rx",
            "llc_tx",
            "llc_app",
            "llc_other",
            "rx_ring_depth",
            "offered_delta",
            "completed_delta",
            "dropped_delta",
        ];
        let class_headers: Vec<String> = sweeper_sim::stats::TrafficClass::ALL
            .iter()
            .map(|c| format!("delta[{}]", c.label()))
            .collect();
        headers.extend(class_headers.iter().map(|s| s.as_str()));
        let mut table = CsvTable::new(&headers)
            .comment("artifact", "timeseries")
            .comment("every_cycles", self.every.to_string())
            .comment("total_samples", self.total.to_string())
            .comments(comments);
        for s in &self.samples {
            let mut row = vec![
                Value::from(s.at),
                Value::from(s.bandwidth_gbps),
                Value::from(s.llc.rx),
                Value::from(s.llc.tx),
                Value::from(s.llc.app),
                Value::from(s.llc.other),
                Value::from(s.rx_ring_depth),
                Value::from(s.offered_delta),
                Value::from(s.completed_delta),
                Value::from(s.dropped_delta),
            ];
            row.extend(s.class_delta.iter().map(|(_, n)| Value::from(n)));
            table.value_row(row);
        }
        table.to_csv()
    }
}

/// Live sampler state inside a running server.
#[derive(Debug, Clone)]
struct SamplerState {
    cfg: SamplerConfig,
    next: Cycle,
    prev_accesses: u64,
    prev_classes: ClassCounts,
    prev_offered: u64,
    prev_completed: u64,
    prev_dropped: u64,
    series: TimeSeries,
}

impl SamplerState {
    fn new(cfg: SamplerConfig) -> Self {
        Self {
            cfg,
            next: 0,
            prev_accesses: 0,
            prev_classes: ClassCounts::new(),
            prev_offered: 0,
            prev_completed: 0,
            prev_dropped: 0,
            series: TimeSeries::new(cfg),
        }
    }
}

/// Stop conditions for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Requests completed before measurement starts (statistics reset).
    pub warmup_requests: u64,
    /// Requests measured after warmup; the run stops once reached.
    pub measure_requests: u64,
    /// Hard wall on simulated time; exceeded ⇒ `timed_out` in the report.
    pub max_cycles: Cycle,
    /// Minimum simulated warmup duration: measurement does not start before
    /// this many cycles even if the request quota is met. Used when a slow
    /// collocated tenant needs its cold pass covered (§VI-E).
    pub min_warmup_cycles: Cycle,
    /// Minimum measurement-window duration: the run continues past the
    /// request quota until the window spans this many cycles.
    pub min_measure_cycles: Cycle,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            warmup_requests: 5_000,
            measure_requests: 20_000,
            max_cycles: 20_000_000_000, // 6.25 s of simulated time
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        }
    }
}

impl RunOptions {
    /// Quick options for unit tests.
    pub fn quick() -> Self {
        Self {
            warmup_requests: 200,
            measure_requests: 1_000,
            max_cycles: 2_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        }
    }
}

/// Measured results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Requests completed inside the measurement window.
    pub completed: u64,
    /// Packets offered (delivered + dropped) inside the window.
    pub offered: u64,
    /// Packets dropped (RX ring full) inside the window.
    pub dropped: u64,
    /// Length of the measurement window in cycles.
    pub elapsed_cycles: Cycle,
    /// Memory-system statistics over the window.
    pub mem: MemStats,
    /// End-to-end request latency (arrival → response transmitted), cycles.
    pub request_latency: Histogram,
    /// Per-request service time (dequeue → response transmitted), cycles.
    pub service_time: Histogram,
    /// DRAM read access latency over the window, cycles (Figure 6).
    pub dram_latency: Histogram,
    /// Background-tenant iterations completed inside the window (§VI-E).
    pub background_iterations: u64,
    /// Whether the run hit `max_cycles` before completing its quota.
    pub timed_out: bool,
    /// Per-channel `(reads, writes)` DRAM transfer counts over the window —
    /// a channel-imbalance diagnostic.
    pub channel_transfers: Vec<(u64, u64)>,
    /// In-run time series, present when [`ServerConfig::sampler`] was set.
    pub timeseries: Option<TimeSeries>,
    /// Retained request spans, present when [`ServerConfig::spans`] (or the
    /// flight recorder, which forces them on) was set.
    pub spans: Option<SpanRing>,
    /// Hierarchical cycle/DRAM attribution, present when
    /// [`ServerConfig::profiler`] was set.
    pub profile: Option<ProfileNode>,
    /// Tail-latency outlier snapshots, present when
    /// [`ServerConfig::flight`] was set (possibly empty).
    pub outliers: Option<Vec<OutlierSnapshot>>,
    /// Retained memory-event trace, present when
    /// [`ServerConfig::memtrace`] was set.
    pub memtrace: Option<Trace>,
    /// Correctness-harness verdict, present when [`ServerConfig::check`]
    /// was set.
    pub check: Option<CheckReport>,
}

impl RunReport {
    /// Application throughput in millions of requests per second.
    pub fn throughput_mrps(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / sweeper_sim::engine::cycles_to_secs(self.elapsed_cycles) / 1e6
    }

    /// Memory bandwidth utilization in GB/s over the window (Figures 1b,
    /// 2b, 5b, 8b).
    pub fn memory_bandwidth_gbps(&self) -> f64 {
        self.mem.bandwidth_gbps(self.elapsed_cycles)
    }

    /// Memory accesses per completed request, split by traffic class
    /// (Figures 1c, 2c, 5c, 7b).
    pub fn accesses_per_request(&self) -> Vec<(sweeper_sim::stats::TrafficClass, f64)> {
        let combined = self.mem.combined();
        let n = self.completed.max(1) as f64;
        combined.iter().map(|(c, v)| (c, v as f64 / n)).collect()
    }

    /// Total memory accesses per completed request.
    pub fn total_accesses_per_request(&self) -> f64 {
        self.mem.dram_accesses() as f64 / self.completed.max(1) as f64
    }

    /// Fraction of offered packets dropped in the window (Figure 10b).
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Fraction of offered packets completed; < 1 under overload.
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Background-tenant progress in million iterations per second.
    pub fn background_mips(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        self.background_iterations as f64
            / sweeper_sim::engine::cycles_to_secs(self.elapsed_cycles)
            / 1e6
    }

    /// Raw per-class DRAM transfer counts over the window.
    pub fn class_counts(&self) -> ClassCounts {
        self.mem.combined()
    }
}

/// Simple round-robin TX buffer ring.
#[derive(Debug, Clone)]
struct TxRing {
    base: Addr,
    entries: u64,
    entry_bytes: u64,
    next: u64,
}

impl TxRing {
    fn new(
        map: &mut sweeper_sim::addr::AddressMap,
        core: u16,
        entries: usize,
        entry_bytes: u64,
    ) -> Self {
        let base = map.alloc(entries as u64 * entry_bytes, RegionKind::Tx { core });
        Self {
            base,
            entries: entries as u64,
            entry_bytes,
            next: 0,
        }
    }

    fn next_addr(&mut self) -> Addr {
        let a = self
            .base
            .offset((self.next % self.entries) * self.entry_bytes);
        self.next += 1;
        a
    }
}

/// Cycles, executions, and DRAM-transfer classes attributed to one stage.
#[derive(Debug, Clone, Copy, Default)]
struct StageDelta {
    cycles: u64,
    count: u64,
    classes: ClassCounts,
}

impl StageDelta {
    fn add(&mut self, cycles: Cycle, classes: ClassCounts) {
        self.cycles += cycles;
        self.count += 1;
        for (class, n) in classes.iter() {
            self.classes[class] += n;
        }
    }

    fn merge(&mut self, other: &StageDelta) {
        self.cycles += other.cycles;
        self.count += other.count;
        for (class, n) in other.classes.iter() {
            self.classes[class] += n;
        }
    }

    fn into_node(self, label: &str) -> ProfileNode {
        ProfileNode {
            label: label.to_string(),
            cycles: self.cycles,
            count: self.count,
            classes: self.classes,
            children: Vec::new(),
        }
    }
}

/// Per-request service-stage accumulator, embedded in [`Active`] so the
/// hot path stays allocation-free. Folded into [`ProfilerState`] only when
/// the request finishes inside the measurement window.
#[derive(Debug, Clone, Copy, Default)]
struct ActiveProfile {
    cpu_read: StageDelta,
    app: StageDelta,
    sweep: StageDelta,
}

/// The service stage an operation's cycles belong to.
#[derive(Debug, Clone, Copy)]
enum Stage {
    CpuRead,
    App,
    Sweep,
}

/// Run-wide cycle-attribution accumulator (the profiler).
#[derive(Debug, Clone, Default)]
struct ProfilerState {
    requests: u64,
    total_cycles: u64,
    nic_dma: StageDelta,
    rx_wait: StageDelta,
    cpu_read: StageDelta,
    app: StageDelta,
    sweep: StageDelta,
    tx: StageDelta,
}

impl ProfilerState {
    /// Builds the report's profile tree. The engine chains a request's
    /// operation events with no gaps, so the cycle accounting is exact:
    /// `request.cycles == nic_dma + rx_ring_wait + service` and
    /// `service.cycles == cpu_read + app_service + sweep + tx`.
    fn to_tree(&self) -> ProfileNode {
        let mut service = ProfileNode::new("service");
        service.count = self.requests;
        for node in [
            self.cpu_read.into_node(SpanKind::CpuRead.label()),
            self.app.into_node(SpanKind::AppService.label()),
            self.sweep.into_node(SpanKind::Sweep.label()),
            self.tx.into_node(SpanKind::Tx.label()),
        ] {
            service.cycles += node.cycles;
            for (class, n) in node.classes.iter() {
                service.classes[class] += n;
            }
            service.children.push(node);
        }
        let mut root = ProfileNode::new("request");
        root.cycles = self.total_cycles;
        root.count = self.requests;
        for node in [
            self.nic_dma.into_node(SpanKind::NicDma.label()),
            self.rx_wait.into_node(SpanKind::RxRingWait.label()),
            service,
        ] {
            for (class, n) in node.classes.iter() {
                root.classes[class] += n;
            }
            root.children.push(node);
        }
        root
    }
}

/// Live flight-recorder state inside a running server.
#[derive(Debug, Clone)]
struct FlightState {
    cfg: FlightRecorderConfig,
    snapshots: Vec<OutlierSnapshot>,
}

/// An in-flight request on one core.
#[derive(Debug)]
struct Active {
    pkt: Packet,
    ops: VecDeque<Op>,
    wq: Option<WqEntry>,
    start: Cycle,
    prof: ActiveProfile,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival,
    CoreStep { core: u16 },
    BackgroundStep { core: u16 },
}

/// The simulated server.
pub struct Server {
    cfg: ServerConfig,
    mem: MemorySystem,
    nic: Nic,
    workload: Box<dyn Workload>,
    background: Option<Box<dyn BackgroundTenant>>,
    background_cores: Vec<u16>,
    qps: Vec<QueuePair>,
    tx_rings: Vec<TxRing>,
    arrivals: Option<PoissonArrivals>,
    assigner: CoreAssigner,
    wl_rng: SimRng,
    events: EventQueue<Event>,
    busy: Vec<bool>,
    active: Vec<Option<Active>>,
    bg_ops: Vec<VecDeque<Op>>,
    // Measurement state.
    measuring: bool,
    opts: RunOptions,
    warmup_left: u64,
    measure_left: u64,
    measure_start: Cycle,
    offered: u64,
    completed: u64,
    background_iterations: u64,
    request_latency: Histogram,
    service_time: Histogram,
    sampler: Option<SamplerState>,
    profiler: Option<ProfilerState>,
    flight: Option<FlightState>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workload", &self.workload.name())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Builds a server around `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` is zero or exceeds the machine's core count,
    /// or if `packet_bytes` exceeds `buffer_bytes`.
    pub fn new(cfg: ServerConfig, workload: Box<dyn Workload>) -> Self {
        assert!(
            cfg.active_cores >= 1 && (cfg.active_cores as usize) <= cfg.machine.cores,
            "active cores out of range"
        );
        assert!(
            cfg.packet_bytes <= cfg.buffer_bytes,
            "packets must fit in a buffer entry"
        );
        let mut root_rng = SimRng::seeded(cfg.seed);
        let mut mem = MemorySystem::new(cfg.machine);
        let nic = Nic::new(
            NicConfig {
                rx_entries: cfg.rx_entries,
                buffer_bytes: cfg.buffer_bytes,
                cores: cfg.active_cores,
                endpoints_per_core: cfg.endpoints_per_core,
            },
            &mut mem,
        );
        let tx_rings = (0..cfg.active_cores)
            .map(|c| TxRing::new(mem.address_map_mut(), c, cfg.tx_entries, cfg.buffer_bytes))
            .collect();
        let qps = (0..cfg.active_cores)
            .map(|_| QueuePair::new(cfg.tx_entries.max(4)))
            .collect();
        let mut workload = workload;
        workload.setup(&mut mem);
        let arrivals = match cfg.arrivals {
            ArrivalProcess::Poisson { rate } => Some(PoissonArrivals::new(rate, root_rng.fork())),
            ArrivalProcess::KeepQueued { .. } => None,
        };
        let assigner = CoreAssigner::new(cfg.assignment, cfg.active_cores, root_rng.fork());
        let wl_rng = root_rng.fork();
        let cores = cfg.machine.cores;
        // Event population is bounded by the cores in flight (one CoreStep
        // each, active + background) plus the single pending Arrival; ring
        // depths bound how much work can queue behind them. Reserving that
        // up front keeps `EventQueue::push` reallocation-free for the whole
        // run.
        let event_capacity = (cores + 1) + cfg.rx_entries + cfg.tx_entries;
        if let Some(sampler) = &cfg.sampler {
            assert!(sampler.every > 0, "sampling period must be positive");
            assert!(sampler.capacity > 0, "sampler capacity must be positive");
        }
        if let Some(flight) = &cfg.flight {
            assert!(
                flight.quantile > 0.0 && flight.quantile < 1.0,
                "flight-recorder quantile must be in (0, 1)"
            );
            assert!(flight.window > 0, "flight-recorder window must be positive");
            assert!(
                flight.max_snapshots > 0,
                "flight-recorder snapshot budget must be positive"
            );
        }
        // The flight recorder triages span windows, so it forces span
        // recording on; an explicit capacity wins.
        match (cfg.spans, &cfg.flight) {
            (Some(capacity), _) => mem.enable_spans(capacity),
            (None, Some(flight)) => mem.enable_spans(flight.window.max(4096)),
            (None, None) => {}
        }
        if let Some(capacity) = cfg.memtrace {
            mem.enable_trace(capacity);
        }
        if let Some(check) = cfg.check {
            mem.enable_check(check);
        }
        // With Sweeper enabled, a request's `relinquish` sweep executes
        // *after* its packet was popped. Immediate slot recycling would let
        // the NIC refill the slot inside that window, so the sweep would
        // destroy the new packet's live data. Deferred recycling holds each
        // slot until the request (including its sweep) has finished.
        let mut nic = nic;
        if cfg.sweeper.is_enabled() {
            for core in 0..cfg.active_cores {
                nic.ring_mut(core).set_defer_recycle(true);
            }
        }
        Self {
            sampler: cfg.sampler.map(SamplerState::new),
            profiler: cfg.profiler.then(ProfilerState::default),
            flight: cfg.flight.map(|cfg| FlightState {
                cfg,
                snapshots: Vec::new(),
            }),
            busy: vec![false; cfg.active_cores as usize],
            active: (0..cfg.active_cores).map(|_| None).collect(),
            bg_ops: vec![VecDeque::new(); cores],
            cfg,
            mem,
            nic,
            workload,
            background: None,
            background_cores: Vec::new(),
            qps,
            tx_rings,
            arrivals,
            assigner,
            wl_rng,
            events: EventQueue::with_capacity(event_capacity),
            measuring: false,
            opts: RunOptions::default(),
            warmup_left: 0,
            measure_left: 0,
            measure_start: 0,
            offered: 0,
            completed: 0,
            background_iterations: 0,
            request_latency: Histogram::new(),
            service_time: Histogram::new(),
        }
    }

    /// Adds a collocated background tenant on the cores *not* running the
    /// networked workload (§VI-E).
    ///
    /// # Panics
    ///
    /// Panics if there are no spare cores.
    pub fn with_background(mut self, mut tenant: Box<dyn BackgroundTenant>) -> Self {
        let first = self.cfg.active_cores;
        let total = self.cfg.machine.cores as u16;
        assert!(first < total, "no spare cores for a background tenant");
        self.background_cores = (first..total).collect();
        for &core in &self.background_cores {
            tenant.setup(core, &mut self.mem);
        }
        self.background = Some(tenant);
        self
    }

    /// The memory system (inspection in tests and reports).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable memory-system access, used by experiment hooks to configure
    /// LLC way partitions before a run (§VI-E).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// The NIC (inspection in tests and reports).
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    fn deliver_packet(&mut self, core: u16, now: Cycle) -> bool {
        if self.measuring {
            self.offered += 1;
        }
        // DMA-stage class attribution is taken at delivery time (the NIC
        // injection and any writebacks it displaces), so it is per-window
        // rather than per-finished-request; the boundary slack is at most
        // the requests in flight when measurement starts or stops.
        let before = self
            .profiler
            .as_ref()
            .filter(|_| self.measuring)
            .map(|_| self.mem.stats().combined());
        let delivered = self
            .nic
            .deliver(core, self.cfg.packet_bytes, now, &mut self.mem)
            .is_some();
        if let Some(before) = before {
            let delta = self.mem.stats().combined().since(&before);
            let prof = self.profiler.as_mut().expect("profiler present");
            for (class, n) in delta.iter() {
                prof.nic_dma.classes[class] += n;
            }
        }
        if delivered && !self.busy[core as usize] {
            self.busy[core as usize] = true;
            self.events.push(now, Event::CoreStep { core });
        }
        delivered
    }

    fn refill_keep_queued(&mut self, core: u16, now: Cycle) {
        if let ArrivalProcess::KeepQueued { depth } = self.cfg.arrivals {
            while self.nic.ring(core).occupancy() < depth {
                // A delivery can still drop when its flow's endpoint ring is
                // full; stop rather than spin (the hot peer is saturated).
                if !self.deliver_packet(core, now) {
                    break;
                }
            }
        }
    }

    fn start_measurement(&mut self, now: Cycle) {
        // Drain point: the warmed-up hierarchy must already satisfy every
        // invariant before measurement begins.
        self.run_check_walk();
        self.measuring = true;
        self.measure_start = now;
        self.offered = 0;
        self.mem.reset_stats();
        self.nic.reset_stats();
        self.request_latency.clear();
        self.service_time.clear();
        self.background_iterations = 0;
        // Warmup traffic is not part of any report: drop its spans and
        // trace events, restart the attribution accumulators.
        self.mem.clear_spans();
        self.mem.clear_trace();
        if let Some(prof) = &mut self.profiler {
            *prof = ProfilerState::default();
        }
        if let Some(flight) = &mut self.flight {
            flight.snapshots.clear();
        }
        if let Some(state) = &mut self.sampler {
            // Counters were just reset; the first interval starts here.
            state.prev_accesses = 0;
            state.prev_classes = ClassCounts::new();
            state.prev_offered = 0;
            state.prev_completed = self.completed;
            state.prev_dropped = 0;
            state.next = now + state.cfg.every;
            state.series.clear();
        }
    }

    /// Takes every due sample (stamped at its interval boundary). Deltas
    /// spanning multiple periods land in the first due sample; later
    /// boundaries in the same gap record zero deltas, so the series stays
    /// aligned to the sampling grid regardless of event spacing.
    fn maybe_sample(&mut self, now: Cycle) {
        if self.sampler.is_none() {
            return;
        }
        let mut state = self.sampler.take().expect("sampler present");
        while now >= state.next {
            let at = state.next - self.measure_start;
            let stats = self.mem.stats();
            let accesses = stats.dram_accesses();
            let classes = stats.combined();
            let dropped = self.nic.stats().dropped;
            let interval_secs = cycles_to_secs(state.cfg.every);
            let bandwidth_gbps = (accesses - state.prev_accesses) as f64
                * sweeper_sim::BLOCK_BYTES as f64
                / interval_secs
                / 1e9;
            let rx_ring_depth = (0..self.cfg.active_cores)
                .map(|c| self.nic.ring(c).occupancy())
                .sum::<usize>();
            state.series.push(Sample {
                at,
                bandwidth_gbps,
                llc: self.mem.llc_occupancy_by_region(),
                rx_ring_depth,
                offered_delta: self.offered - state.prev_offered,
                completed_delta: self.completed - state.prev_completed,
                dropped_delta: dropped - state.prev_dropped,
                class_delta: classes.since(&state.prev_classes),
            });
            state.prev_accesses = accesses;
            state.prev_classes = classes;
            state.prev_offered = self.offered;
            state.prev_completed = self.completed;
            state.prev_dropped = dropped;
            state.next += state.cfg.every;
        }
        self.sampler = Some(state);
    }

    /// Periodic invariant walk, every `walk_every_requests` completed
    /// requests. One branch when the harness is disabled.
    fn maybe_check_walk(&mut self) {
        if let Some(cfg) = self.mem.check_config() {
            let every = cfg.walk_every_requests;
            if every > 0 && self.completed.is_multiple_of(every) {
                self.run_check_walk();
            }
        }
    }

    /// Verifies the RX rings' index/slot invariants, then walks every
    /// hierarchy invariant. No-op when the harness is disabled.
    fn run_check_walk(&mut self) {
        if !self.mem.check_enabled() {
            return;
        }
        for core in 0..self.cfg.active_cores {
            if let Err(e) = self.nic.ring(core).check_consistency() {
                self.mem
                    .check_note_violation(ViolationKind::RingInconsistency, || {
                        format!("core {core}: {e}")
                    });
            }
        }
        self.mem.check_walk();
    }

    /// Builds the trace and transmission plan for a dequeued packet.
    fn begin_request(&mut self, core: u16, pkt: Packet, now: Cycle) {
        let c = core as usize;
        self.mem.set_span_trace(pkt.id.0);
        self.mem
            .record_span(SpanKind::RxRingWait, core, pkt.delivered, now);
        let mut env = CoreEnv::new(core, &mut self.wl_rng);
        let action = self.workload.handle_packet(&pkt, &mut env);
        let mut ops: VecDeque<Op> = env.into_ops().into();

        let wq = match action {
            TxAction::None => None,
            TxAction::Reply { bytes } => {
                let tx_addr = self.tx_rings[c].next_addr();
                let resp_bytes = bytes.min(self.cfg.buffer_bytes);
                ops.push_back(Op::Write {
                    addr: tx_addr,
                    len: resp_bytes,
                });
                Some(WqEntry {
                    dest_node: 0,
                    qp_id: core as u32,
                    transfer_length: resp_bytes,
                    buffer_addr: tx_addr,
                    sweep_buffer: self.cfg.tx_sweep,
                    packet: pkt.id,
                })
            }
            TxAction::ForwardInPlace => Some(WqEntry {
                dest_node: 0,
                qp_id: core as u32,
                transfer_length: pkt.bytes,
                buffer_addr: pkt.addr,
                // §V-D: for zero-copy TX the *NIC* performs the sweep.
                sweep_buffer: self.cfg.sweeper.is_enabled(),
                packet: pkt.id,
            }),
        };

        // RX-path Sweeper (§V-A): relinquish before the slot can be reused —
        // except for zero-copy forwarding, where the buffer is still live
        // until the NIC reads it.
        if self.cfg.sweeper.is_enabled() && action != TxAction::ForwardInPlace {
            ops.push_back(Op::Sweep {
                addr: pkt.addr,
                len: pkt.bytes,
            });
        }

        self.active[c] = Some(Active {
            pkt,
            ops,
            wq,
            start: now,
            prof: ActiveProfile::default(),
        });
    }

    /// Transmits, records metrics, and handles the warmup transition.
    fn finish_request(&mut self, core: u16, active: Active, now: Cycle) {
        if let Some(entry) = active.wq {
            let qp = &mut self.qps[core as usize];
            if qp.wq.push(entry).is_ok() {
                let entry = self.qps[core as usize].wq.pop().expect("just pushed");
                let before = self
                    .profiler
                    .as_ref()
                    .filter(|_| self.measuring)
                    .map(|_| self.mem.stats().combined());
                self.nic.transmit(entry, now, &mut self.mem);
                if let Some(before) = before {
                    let delta = self.mem.stats().combined().since(&before);
                    let prof = self.profiler.as_mut().expect("profiler present");
                    // The transmit is posted — zero cycles on the request's
                    // critical path — but its DRAM traffic is attributed.
                    prof.tx.add(0, delta);
                }
                let _ = self.qps[core as usize].cq.push(CqEntry {
                    packet: entry.packet,
                    completed: now,
                });
                self.qps[core as usize].cq.pop();
            }
        }
        // Deferred recycling: the buffer (swept by now, including the NIC's
        // zero-copy TX sweep in `transmit` above) goes back to the producer.
        // No-op with immediate recycling.
        self.nic.ring_mut(core).recycle(active.pkt.addr);

        if self.measuring {
            self.completed += 1;
            self.measure_left = self.measure_left.saturating_sub(1);
            let latency = now - active.pkt.arrival;
            self.request_latency.record(latency);
            self.service_time.record(now - active.start);
            if let Some(prof) = &mut self.profiler {
                prof.requests += 1;
                prof.total_cycles += latency;
                prof.nic_dma.cycles += active.pkt.delivered - active.pkt.arrival;
                prof.nic_dma.count += 1;
                prof.rx_wait
                    .add(active.start - active.pkt.delivered, ClassCounts::new());
                prof.cpu_read.merge(&active.prof.cpu_read);
                prof.app.merge(&active.prof.app);
                prof.sweep.merge(&active.prof.sweep);
            }
            self.maybe_snapshot_outlier(&active, latency, now);
            self.maybe_check_walk();
        } else {
            self.warmup_left = self.warmup_left.saturating_sub(1);
            if self.warmup_left == 0 && now >= self.opts.min_warmup_cycles {
                self.start_measurement(now);
            } else if self.warmup_left == 0 {
                // Quota met but the time floor not yet reached: keep warming
                // up one request at a time until it is.
                self.warmup_left = 1;
            }
        }
    }

    /// Snapshots the span window around a tail-latency outlier once the
    /// online percentile estimate is trustworthy. Off the hot path: one
    /// `Option` branch per finished request when the recorder is disabled,
    /// and at most `max_snapshots` window copies per run when enabled.
    fn maybe_snapshot_outlier(&mut self, active: &Active, latency: Cycle, now: Cycle) {
        let Some(flight) = &self.flight else { return };
        if flight.snapshots.len() >= flight.cfg.max_snapshots
            || self.request_latency.count() < flight.cfg.min_samples
        {
            return;
        }
        let threshold = self.request_latency.percentile(flight.cfg.quantile);
        if latency <= threshold {
            return;
        }
        let window = flight.cfg.window;
        let spans = self
            .mem
            .spans()
            .expect("flight recorder forces span recording")
            .events();
        let tail = spans.len().saturating_sub(window);
        let flight = self.flight.as_mut().expect("flight recorder present");
        flight.snapshots.push(OutlierSnapshot {
            seq: flight.snapshots.len() as u64,
            trace: active.pkt.id.0,
            core: active.pkt.core,
            at: now,
            latency,
            threshold,
            quantile: flight.cfg.quantile,
            window: spans[tail..].to_vec(),
        });
    }

    /// Advances one core by one operation (or request boundary).
    fn core_step(&mut self, core: u16, now: Cycle) {
        let c = core as usize;
        if let Some(active) = &mut self.active[c] {
            if let Some(op) = active.ops.pop_front() {
                // Every operation of this request runs under its trace id so
                // interleaved cores' memory events stay attributable.
                self.mem.set_span_trace(active.pkt.id.0);
                let before = self
                    .profiler
                    .as_ref()
                    .map(|_| self.mem.stats().combined());
                let lat = execute_op(&mut self.mem, core, now, &op);
                // Sweeps record their span inside `sweep_range` (shared with
                // the NIC's zero-copy TX path); the CPU-visible stages are
                // recorded here, after the fact, when the latency is known.
                let stage = match op {
                    Op::Read { .. } | Op::ReadScatter { .. } => {
                        self.mem.record_span(SpanKind::CpuRead, core, now, now + lat);
                        Stage::CpuRead
                    }
                    Op::Write { .. } | Op::Compute { .. } => {
                        self.mem
                            .record_span(SpanKind::AppService, core, now, now + lat);
                        Stage::App
                    }
                    Op::Sweep { .. } => Stage::Sweep,
                };
                if let Some(before) = before {
                    let delta = self.mem.stats().combined().since(&before);
                    let slot = match stage {
                        Stage::CpuRead => &mut active.prof.cpu_read,
                        Stage::App => &mut active.prof.app,
                        Stage::Sweep => &mut active.prof.sweep,
                    };
                    slot.add(lat, delta);
                }
                self.events.push(now + lat, Event::CoreStep { core });
                return;
            }
            let done = self.active[c].take().expect("active request");
            self.finish_request(core, done, now);
        }
        // The head packet may still be in flight (NIC backpressure); wait
        // for its delivery before starting service.
        if let Some(head) = self.nic.ring(core).peek() {
            if head.delivered > now {
                let at = self
                    .nic
                    .ring(core)
                    .earliest_delivery()
                    .unwrap_or(head.delivered);
                self.events.push(at.max(now + 1), Event::CoreStep { core });
                return;
            }
        }
        match self.nic.ring_mut(core).pop() {
            None => {
                self.busy[c] = false;
            }
            Some(pkt) => {
                // The pop is the consumption point: from here on, sweeping
                // this buffer is legal. One branch when the harness is off.
                self.mem.mark_consumed(pkt.addr, pkt.bytes);
                self.refill_keep_queued(core, now);
                self.begin_request(core, pkt, now);
                self.events.push(now, Event::CoreStep { core });
            }
        }
    }

    /// Advances one background-tenant core by one operation.
    fn background_step(&mut self, core: u16, now: Cycle) {
        let c = core as usize;
        match self.bg_ops[c].pop_front() {
            Some(op) => {
                let lat = execute_op(&mut self.mem, core, now, &op).max(1);
                if self.bg_ops[c].is_empty() && self.measuring {
                    self.background_iterations += 1;
                }
                self.events.push(now + lat, Event::BackgroundStep { core });
            }
            None => {
                let mut tenant = self.background.take().expect("background scheduled");
                let mut env = CoreEnv::new(core, &mut self.wl_rng);
                tenant.step(core, &mut env);
                self.background = Some(tenant);
                self.bg_ops[c] = env.into_ops().into();
                assert!(
                    !self.bg_ops[c].is_empty(),
                    "background tenant must make progress"
                );
                self.events.push(now, Event::BackgroundStep { core });
            }
        }
    }

    /// Runs the simulation and returns the measured report.
    pub fn run(&mut self, opts: RunOptions) -> RunReport {
        assert!(opts.measure_requests > 0, "nothing to measure");
        self.opts = opts;
        self.warmup_left = opts.warmup_requests;
        self.measure_left = opts.measure_requests;
        self.measuring = false;
        self.completed = 0;
        if opts.warmup_requests == 0 {
            self.start_measurement(0);
        }

        // Prime the event queue.
        match self.cfg.arrivals {
            ArrivalProcess::Poisson { .. } => {
                let t = self
                    .arrivals
                    .as_mut()
                    .expect("poisson generator")
                    .next_arrival();
                self.events.push(t, Event::Arrival);
            }
            ArrivalProcess::KeepQueued { .. } => {
                for core in 0..self.cfg.active_cores {
                    self.refill_keep_queued(core, 0);
                }
            }
        }
        for &core in &self.background_cores.clone() {
            self.events.push(0, Event::BackgroundStep { core });
        }

        let mut now = 0;
        let mut timed_out = false;
        while let Some((t, ev)) = self.events.pop() {
            now = t;
            if now > opts.max_cycles {
                timed_out = true;
                break;
            }
            match ev {
                Event::Arrival => {
                    let core = self.assigner.next_core();
                    self.deliver_packet(core, now);
                    let next = self
                        .arrivals
                        .as_mut()
                        .expect("poisson generator")
                        .next_arrival()
                        .max(now + 1);
                    self.events.push(next, Event::Arrival);
                }
                Event::CoreStep { core } => self.core_step(core, now),
                Event::BackgroundStep { core } => self.background_step(core, now),
            }
            if self.measuring {
                self.maybe_sample(now);
            }
            if self.measuring
                && self.measure_left == 0
                && now.saturating_sub(self.measure_start) >= opts.min_measure_cycles
            {
                break;
            }
        }

        let elapsed_cycles = if self.measuring {
            now.saturating_sub(self.measure_start)
        } else {
            timed_out = true;
            0
        };
        // Final drain point: whatever state the run ended in must satisfy
        // every invariant.
        self.run_check_walk();
        RunReport {
            workload: self.workload.name().to_string(),
            completed: self.completed,
            offered: self.offered,
            dropped: self.nic.stats().dropped,
            elapsed_cycles,
            mem: self.mem.stats().clone(),
            request_latency: self.request_latency.clone(),
            service_time: self.service_time.clone(),
            dram_latency: self.mem.dram().read_latency().clone(),
            background_iterations: self.background_iterations,
            timed_out,
            channel_transfers: self.mem.dram().channel_counts(),
            timeseries: self.sampler.as_ref().map(|s| s.series.clone()),
            spans: self.mem.spans().cloned(),
            profile: self.profiler.as_ref().map(ProfilerState::to_tree),
            outliers: self.flight.as_ref().map(|f| f.snapshots.clone()),
            memtrace: self.mem.trace().cloned(),
            check: self.mem.check_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::EchoWorkload;
    use sweeper_sim::stats::TrafficClass;

    fn run_echo(cfg: ServerConfig) -> RunReport {
        let mut server = Server::new(cfg, Box::new(EchoWorkload::with_think(100)));
        server.run(RunOptions::quick())
    }

    #[test]
    fn echo_run_completes_quota() {
        let report = run_echo(ServerConfig::tiny_for_tests());
        assert_eq!(report.completed, 1_000);
        assert!(!report.timed_out);
        assert!(report.throughput_mrps() > 0.0);
        assert!(report.elapsed_cycles > 0);
        assert_eq!(report.workload, "echo");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_echo(ServerConfig::tiny_for_tests());
        let b = run_echo(ServerConfig::tiny_for_tests());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
        assert_eq!(a.mem.dram_accesses(), b.mem.dram_accesses());
        assert_eq!(a.request_latency.mean(), b.request_latency.mean());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.seed = 123;
        let a = run_echo(cfg.clone());
        cfg.seed = 456;
        let b = run_echo(cfg);
        assert_ne!(a.elapsed_cycles, b.elapsed_cycles);
    }

    #[test]
    fn sweeper_eliminates_rx_evictions_in_echo() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.rx_entries = 64; // footprint far beyond the tiny LLC
        let base = run_echo(cfg.clone());
        cfg.sweeper = SweeperMode::Enabled;
        let swept = run_echo(cfg);
        assert!(
            base.class_counts()[TrafficClass::RxEvct] > 0,
            "baseline should leak"
        );
        // With Sweeper, every residual RX eviction is premature (§VI-C):
        // the eviction counts match the CPU's later RX read misses, and
        // consumed-buffer evictions are gone.
        let swept_rx = swept.class_counts()[TrafficClass::RxEvct];
        let swept_premature = swept.class_counts()[TrafficClass::CpuRxRd];
        assert!(
            swept_rx <= swept_premature + 8,
            "sweeper residual evictions ({swept_rx}) must be premature ({swept_premature})"
        );
        assert!(
            swept_rx * 3 < base.class_counts()[TrafficClass::RxEvct],
            "sweeper must remove most RX evictions"
        );
        assert!(swept.mem.sweep_saved_writebacks > 0);
    }

    #[test]
    fn keep_queued_mode_sustains_depth() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.arrivals = ArrivalProcess::KeepQueued { depth: 4 };
        let mut server = Server::new(cfg, Box::new(EchoWorkload::with_think(100)));
        let report = server.run(RunOptions::quick());
        assert_eq!(report.completed, 1_000);
        // Rings stay topped up to ~depth.
        for core in 0..2 {
            assert!(server.nic().ring(core).occupancy() >= 3);
        }
    }

    #[test]
    fn overload_drops_packets() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.rx_entries = 4;
        cfg.arrivals = ArrivalProcess::Poisson { rate: 1.0e9 }; // absurd load
        let report = run_echo(cfg);
        assert!(report.dropped > 0);
        assert!(report.drop_rate() > 0.0);
        assert!(report.goodput_ratio() < 1.0);
    }

    #[test]
    fn latencies_grow_with_load() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.arrivals = ArrivalProcess::Poisson { rate: 0.2e6 };
        let light = run_echo(cfg.clone());
        cfg.arrivals = ArrivalProcess::Poisson { rate: 6.0e6 };
        let heavy = run_echo(cfg);
        assert!(
            heavy.request_latency.mean() > light.request_latency.mean(),
            "heavy {} vs light {}",
            heavy.request_latency.mean(),
            light.request_latency.mean()
        );
    }

    #[test]
    fn tx_sweep_extension_eliminates_tx_evictions() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.rx_entries = 64;
        cfg.tx_entries = 64;
        let base = run_echo(cfg.clone());
        cfg.tx_sweep = true;
        let swept = run_echo(cfg);
        assert!(base.class_counts()[TrafficClass::TxEvct] > 0);
        assert_eq!(swept.class_counts()[TrafficClass::TxEvct], 0);
    }

    #[test]
    fn report_breakdown_sums_to_total() {
        let report = run_echo(ServerConfig::tiny_for_tests());
        let total: f64 = report.accesses_per_request().iter().map(|(_, v)| v).sum();
        assert!((total - report.total_accesses_per_request()).abs() < 1e-9);
    }

    #[test]
    fn requests_from_different_cores_interleave() {
        // With op-granular events, two cores' requests overlap in time: the
        // run must be much shorter than the sum of all service times.
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.arrivals = ArrivalProcess::KeepQueued { depth: 4 };
        let mut server = Server::new(cfg, Box::new(EchoWorkload::with_think(500)));
        let report = server.run(RunOptions::quick());
        let sum_service: f64 = report.service_time.mean() * report.completed as f64;
        assert!(
            (report.elapsed_cycles as f64) < 0.7 * sum_service,
            "elapsed {} vs serial {}",
            report.elapsed_cycles,
            sum_service
        );
    }

    #[test]
    fn min_measure_cycles_extends_the_window() {
        let mut opts = RunOptions::quick();
        opts.min_measure_cycles = 50_000_000;
        let mut server = Server::new(
            ServerConfig::tiny_for_tests(),
            Box::new(EchoWorkload::with_think(100)),
        );
        let report = server.run(opts);
        assert!(report.elapsed_cycles >= 50_000_000);
        // More requests than the quota completed while the clock ran out.
        assert!(report.completed >= 1_000);
    }

    #[test]
    fn min_warmup_cycles_delays_measurement() {
        let mut opts = RunOptions::quick();
        opts.min_warmup_cycles = 20_000_000;
        let mut server = Server::new(
            ServerConfig::tiny_for_tests(),
            Box::new(EchoWorkload::with_think(100)),
        );
        let report = server.run(opts);
        assert!(!report.timed_out);
        assert_eq!(report.completed, 1_000, "quota still respected after the floor");
    }

    #[test]
    fn endpoint_provisioning_multiplies_footprint_and_runs() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.rx_entries = 4;
        cfg.endpoints_per_core = 4;
        let server = Server::new(cfg, Box::new(EchoWorkload::with_think(100)));
        // 2 cores x 4 endpoints x 4 entries x 1KB buffers.
        assert_eq!(server.nic().total_rx_footprint(), 2 * 4 * 4 * 1024);
        let mut server = server;
        let report = server.run(RunOptions::quick());
        assert_eq!(report.completed, 1_000);
        assert!(!report.timed_out);
    }

    #[test]
    fn delivered_time_never_precedes_arrival() {
        // NIC backpressure can only delay delivery; service then waits for
        // it. Request latency therefore is at least the service time.
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.rx_entries = 64;
        cfg.arrivals = ArrivalProcess::Poisson { rate: 8.0e6 };
        let report = {
            let mut server = Server::new(cfg, Box::new(EchoWorkload::with_think(100)));
            server.run(RunOptions::quick())
        };
        assert!(report.request_latency.mean() >= report.service_time.mean());
        assert!(report.request_latency.percentile(0.99) >= report.service_time.percentile(0.99));
    }

    #[test]
    fn sampler_off_by_default() {
        let report = run_echo(ServerConfig::tiny_for_tests());
        assert!(report.timeseries.is_none());
    }

    #[test]
    fn sampler_snapshots_the_run() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.sampler = Some(SamplerConfig::every(100_000));
        let report = run_echo(cfg);
        let ts = report.timeseries.clone().expect("sampler enabled");
        assert_eq!(ts.every(), 100_000);
        assert!(!ts.is_empty());
        assert_eq!(ts.total_samples(), ts.len() as u64, "window not exceeded");
        // Samples land on the sampling grid, strictly increasing.
        for (i, s) in ts.iter().enumerate() {
            assert_eq!(s.at, (i as u64 + 1) * 100_000);
        }
        // Interval deltas sum to the run totals the report carries.
        let completed: u64 = ts.iter().map(|s| s.completed_delta).sum();
        assert!(completed <= report.completed);
        assert!(
            completed >= report.completed * 9 / 10,
            "samples cover the window: {completed} vs {}",
            report.completed
        );
        // Bandwidth deltas agree with the aggregate within sampling slack.
        let mean_gbps: f64 =
            ts.iter().map(|s| s.bandwidth_gbps).sum::<f64>() / ts.len() as f64;
        assert!((mean_gbps - report.memory_bandwidth_gbps()).abs() < 1.0 + mean_gbps * 0.5);
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.sampler = Some(SamplerConfig::every(100_000));
        let a = run_echo(cfg.clone());
        let b = run_echo(cfg);
        assert_eq!(a.timeseries, b.timeseries);
    }

    #[test]
    fn sampler_does_not_perturb_the_simulation() {
        let base = run_echo(ServerConfig::tiny_for_tests());
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.sampler = Some(SamplerConfig::every(50_000));
        let sampled = run_echo(cfg);
        assert_eq!(base.completed, sampled.completed);
        assert_eq!(base.elapsed_cycles, sampled.elapsed_cycles);
        assert_eq!(base.mem.dram_accesses(), sampled.mem.dram_accesses());
    }

    #[test]
    fn check_does_not_perturb_the_simulation() {
        let base = run_echo(ServerConfig::tiny_for_tests());
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.check = Some(CheckConfig::default());
        let checked = run_echo(cfg);
        assert_eq!(base.completed, checked.completed);
        assert_eq!(base.elapsed_cycles, checked.elapsed_cycles);
        assert_eq!(base.mem.dram_accesses(), checked.mem.dram_accesses());
        assert_eq!(
            base.request_latency.mean(),
            checked.request_latency.mean()
        );
        let check = checked.check.expect("check enabled");
        assert!(check.passed(), "echo run violates an invariant: {check:?}");
        assert!(check.events > 0, "oracle mirrored no events");
        assert!(check.walks > 0, "invariant walker never ran");
        assert!(base.check.is_none(), "check report without check config");
    }

    #[test]
    fn zero_request_report_rates_are_finite() {
        // A run that times out before completing anything (or a report built
        // from an empty window) must render zeros, not NaN, in every derived
        // rate. Pin that by building the empty report directly.
        let report = RunReport {
            workload: "empty".into(),
            completed: 0,
            offered: 0,
            dropped: 0,
            elapsed_cycles: 0,
            mem: MemStats::default(),
            request_latency: Histogram::new(),
            service_time: Histogram::new(),
            dram_latency: Histogram::new(),
            background_iterations: 0,
            timed_out: true,
            channel_transfers: Vec::new(),
            timeseries: None,
            spans: None,
            profile: None,
            outliers: None,
            memtrace: None,
            check: None,
        };
        assert_eq!(report.throughput_mrps(), 0.0);
        assert_eq!(report.memory_bandwidth_gbps(), 0.0);
        for (class, per) in report.accesses_per_request() {
            assert!(per.is_finite(), "{class:?} per-request rate is not finite");
        }
        assert_eq!(report.total_accesses_per_request(), 0.0);
        assert_eq!(report.drop_rate(), 0.0);
        assert_eq!(report.goodput_ratio(), 1.0);
        assert_eq!(report.background_mips(), 0.0);
    }

    #[test]
    fn sampler_ring_retains_newest() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.sampler = Some(SamplerConfig {
            every: 50_000,
            capacity: 4,
        });
        let report = run_echo(cfg);
        let ts = report.timeseries.expect("sampler enabled");
        assert!(ts.total_samples() > 4, "run long enough to wrap");
        assert_eq!(ts.len(), 4);
        let last = ts.iter().last().expect("non-empty").at;
        assert_eq!(last, ts.total_samples() * 50_000);
    }

    #[test]
    fn timeseries_exports_are_structured() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.sampler = Some(SamplerConfig::every(100_000));
        let report = run_echo(cfg);
        let ts = report.timeseries.expect("sampler enabled");
        let rec = ts.to_record();
        assert_eq!(rec.get("every_cycles"), Some(&Value::U64(100_000)));
        assert!(matches!(rec.get("samples"), Some(Value::Array(a)) if a.len() == ts.len()));
        let csv = ts.to_csv_with_comments(&[("seed".into(), "1".into())]);
        assert!(csv.starts_with("# artifact: timeseries\n"));
        assert!(csv.contains("# seed: 1\n"));
        assert!(csv.contains("\nat_cycles,bandwidth_gbps,llc_rx"));
        // Header + one row per retained sample + 4 comment lines.
        assert_eq!(csv.lines().count(), 4 + 1 + ts.len());
    }

    #[test]
    #[should_panic(expected = "sampling period must be positive")]
    fn zero_sampling_period_rejected() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.sampler = Some(SamplerConfig {
            every: 0,
            capacity: 16,
        });
        Server::new(cfg, Box::new(EchoWorkload::default()));
    }

    #[test]
    #[should_panic(expected = "packets must fit in a buffer entry")]
    fn oversized_packets_rejected() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.packet_bytes = 4096;
        Server::new(cfg, Box::new(EchoWorkload::default()));
    }

    #[test]
    fn tracing_features_off_by_default() {
        let report = run_echo(ServerConfig::tiny_for_tests());
        assert!(report.spans.is_none());
        assert!(report.profile.is_none());
        assert!(report.outliers.is_none());
        assert!(report.memtrace.is_none());
    }

    #[test]
    fn spans_cover_the_request_pipeline() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.spans = Some(65_536);
        cfg.sweeper = SweeperMode::Enabled;
        let report = run_echo(cfg);
        let spans = report.spans.expect("span recording enabled");
        assert!(spans.recorded() > 0);
        for kind in [
            SpanKind::NicDma,
            SpanKind::RxRingWait,
            SpanKind::CpuRead,
            SpanKind::AppService,
            SpanKind::Sweep,
            SpanKind::Tx,
        ] {
            assert!(
                !spans.events_of(kind).is_empty(),
                "no {kind} spans recorded"
            );
        }
        // Request-stage spans are tagged with their packet's trace id.
        for event in spans.events_of(SpanKind::RxRingWait) {
            assert_ne!(event.trace, sweeper_sim::span::NO_TRACE);
            assert!(event.end >= event.start);
        }
    }

    #[test]
    fn observability_does_not_perturb_the_simulation() {
        let base = run_echo(ServerConfig::tiny_for_tests());
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.spans = Some(4096);
        cfg.profiler = true;
        cfg.flight = Some(FlightRecorderConfig::default());
        cfg.memtrace = Some(1024);
        let traced = run_echo(cfg);
        assert_eq!(base.completed, traced.completed);
        assert_eq!(base.elapsed_cycles, traced.elapsed_cycles);
        assert_eq!(base.mem.dram_accesses(), traced.mem.dram_accesses());
        assert_eq!(base.request_latency.mean(), traced.request_latency.mean());
    }

    #[test]
    fn profiler_accounts_every_request_cycle() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.profiler = true;
        cfg.sweeper = SweeperMode::Enabled;
        let report = run_echo(cfg);
        let profile = report.profile.expect("profiler enabled");
        assert_eq!(profile.label, "request");
        assert_eq!(profile.count, report.completed);
        // The engine chains operation events with no gaps, so attribution
        // is exact at both tree levels.
        assert_eq!(profile.cycles, profile.child_cycles());
        let service = profile
            .children
            .iter()
            .find(|c| c.label == "service")
            .expect("service node");
        assert_eq!(service.cycles, service.child_cycles());
        // Total attributed cycles equal the latency histogram's mass.
        let total = (report.request_latency.mean() * report.completed as f64).round() as u64;
        assert!(
            profile.cycles.abs_diff(total) <= report.completed,
            "profiled {} vs histogram {total}",
            profile.cycles
        );
        assert!(profile.dram_accesses() > 0);
    }

    #[test]
    fn profiler_is_deterministic() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.profiler = true;
        let a = run_echo(cfg.clone());
        let b = run_echo(cfg);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn flight_recorder_captures_outliers() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.flight = Some(FlightRecorderConfig {
            quantile: 0.9,
            min_samples: 100,
            window: 64,
            max_snapshots: 4,
        });
        let report = run_echo(cfg);
        // Forcing spans on is part of the contract.
        assert!(report.spans.is_some());
        let outliers = report.outliers.expect("flight recorder enabled");
        assert!(!outliers.is_empty(), "p90 trigger must fire in 1000 requests");
        assert!(outliers.len() <= 4);
        for (i, snap) in outliers.iter().enumerate() {
            assert_eq!(snap.seq, i as u64);
            assert!(snap.latency > snap.threshold);
            assert!(!snap.window.is_empty());
            assert!(snap.window.len() <= 64);
        }
    }

    #[test]
    fn memtrace_rides_the_report_and_carries_trace_ids() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.memtrace = Some(1024);
        cfg.spans = Some(1024);
        let report = run_echo(cfg);
        let trace = report.memtrace.expect("memtrace enabled");
        assert!(trace.recorded() > 0);
        let csv = trace.to_csv();
        assert!(
            csv.contains(",latency,trace\n"),
            "span-tagged trace must export the trace column"
        );
    }

    #[test]
    fn memtrace_alone_keeps_the_golden_columns() {
        let mut cfg = ServerConfig::tiny_for_tests();
        cfg.memtrace = Some(1024);
        let report = run_echo(cfg);
        let csv = report.memtrace.expect("memtrace enabled").to_csv();
        assert!(csv.contains("\ncycle,kind,core,block,blocks,latency\n"));
        assert!(!csv.contains(",latency,trace"));
    }

    #[test]
    #[should_panic(expected = "nothing to measure")]
    fn zero_measure_rejected() {
        let mut server = Server::new(
            ServerConfig::tiny_for_tests(),
            Box::new(EchoWorkload::default()),
        );
        server.run(RunOptions {
            warmup_requests: 0,
            measure_requests: 0,
            max_cycles: 1000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    }
}
