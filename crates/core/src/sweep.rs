//! Sweeper's software interface and instruction semantics.
//!
//! §V-A introduces a single library function,
//! `relinquish(buffer_address, size)`: the application declares that a
//! network buffer instance's contents have been conclusively used and will
//! never be read again before the NIC overwrites them. The call compiles to
//! one [`clsweep`] per cache block of the buffer; each `clsweep` injects a
//! *sweep* message that invalidates every copy of the block throughout the
//! cache hierarchy **without writing dirty data back to memory** (§V-B).
//!
//! Dropping dirty data is safe here because the next use of the buffer is a
//! full overwrite by the NIC — but it is *undefined behaviour* for the
//! application to read a relinquished buffer, exactly like reading memory
//! after `free()`.

use sweeper_sim::addr::{blocks_for_len, Addr, BlockAddr};
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::Cycle;

/// Whether the Sweeper RX-path mechanism is active for a run.
///
/// `Enabled` means the networking library calls [`relinquish`] on every RX
/// buffer after the application's last use, before the slot is recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweeperMode {
    /// Baseline: consumed buffers stay dirty and eventually leak to memory.
    #[default]
    Disabled,
    /// Sweeper: consumed buffers are relinquished; their writebacks are
    /// suppressed.
    Enabled,
}

impl SweeperMode {
    /// `true` when Sweeper is active.
    pub fn is_enabled(self) -> bool {
        matches!(self, SweeperMode::Enabled)
    }

    /// Label used in experiment tables ("DDIO 2 Ways + Sweeper").
    pub fn suffix(self) -> &'static str {
        match self {
            SweeperMode::Disabled => "",
            SweeperMode::Enabled => " + Sweeper",
        }
    }
}

impl std::fmt::Display for SweeperMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweeperMode::Disabled => f.write_str("baseline"),
            SweeperMode::Enabled => f.write_str("sweeper"),
        }
    }
}

/// Executes one `clsweep` instruction: invalidates every copy of `block`
/// without writeback (§V-B). Returns the number of dirty copies whose
/// writeback was suppressed.
///
/// `clsweep` is unprivileged; see [`crate::os`] for the system-call gate and
/// the page-recycling privacy mitigation the paper discusses.
pub fn clsweep(mem: &mut MemorySystem, block: BlockAddr) -> u64 {
    mem.sweep_block(block)
}

/// The `relinquish(buffer_address, size)` library call of §V-A.
///
/// Invalidates all cache blocks of `[addr, addr+len)` without writebacks and
/// returns the latency charged to the calling core (the sweeps pipeline; the
/// cost is a couple of cycles per block).
///
/// A networking library **must** call this before recycling the buffer for
/// NIC reuse, to avoid racing the invalidation against the NIC's next write
/// (§V-A).
pub fn relinquish(mem: &mut MemorySystem, addr: Addr, len: u64, now: Cycle) -> Cycle {
    mem.sweep_range(addr, len, now)
}

/// Estimated instruction count of a `relinquish` call: one `clsweep` per
/// block (§V-C: "the function call is compiled into a set of clsweep
/// instructions, one per cache block comprising the target buffer").
pub fn relinquish_instruction_count(len: u64) -> u64 {
    blocks_for_len(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_sim::addr::RegionKind;
    use sweeper_sim::hierarchy::{InjectionPolicy, MachineConfig};
    use sweeper_sim::stats::TrafficClass;

    fn mem() -> MemorySystem {
        MemorySystem::new(MachineConfig::tiny_for_tests().with_injection(InjectionPolicy::Ddio))
    }

    #[test]
    fn mode_helpers() {
        assert!(!SweeperMode::Disabled.is_enabled());
        assert!(SweeperMode::Enabled.is_enabled());
        assert_eq!(SweeperMode::Enabled.suffix(), " + Sweeper");
        assert_eq!(SweeperMode::default(), SweeperMode::Disabled);
        assert_eq!(format!("{}", SweeperMode::Enabled), "sweeper");
    }

    #[test]
    fn relinquish_sweeps_whole_buffer() {
        let mut m = mem();
        let rx = m.address_map_mut().alloc(1024, RegionKind::Rx { core: 0 });
        m.nic_write(rx, 1024, 0);
        m.cpu_read(0, rx, 1024, 10);
        let cost = relinquish(&mut m, rx, 1024, 20);
        assert_eq!(cost, 16 * m.config().sweep_issue_cost);
        for i in 0..16 {
            assert!(!m.resident_anywhere(rx.block().step(i)));
        }
        assert!(m.stats().sweep_saved_writebacks >= 16);
    }

    #[test]
    fn relinquish_after_consumption_prevents_rx_evictions() {
        let mut m = mem();
        // A buffer region several times the tiny LLC.
        let total = 64 * 64 * 32;
        let rx = m.address_map_mut().alloc(total, RegionKind::Rx { core: 0 });
        // Simulate buffer churn: NIC writes a 1 KB packet, CPU reads it,
        // library relinquishes — repeatedly over the whole region.
        let mut t = 0;
        for i in 0..(total / 1024) {
            let a = rx.offset(i * 1024);
            m.nic_write(a, 1024, t);
            m.cpu_read(0, a, 1024, t + 10);
            t += relinquish(&mut m, a, 1024, t + 20) + 100;
        }
        assert_eq!(
            m.stats().dram_writes[TrafficClass::RxEvct],
            0,
            "Sweeper must eliminate consumed-buffer evictions entirely"
        );
    }

    #[test]
    fn without_relinquish_buffers_leak() {
        let mut m = mem();
        let total = 64 * 64 * 32;
        let rx = m.address_map_mut().alloc(total, RegionKind::Rx { core: 0 });
        let mut t = 0;
        for i in 0..(total / 1024) {
            let a = rx.offset(i * 1024);
            m.nic_write(a, 1024, t);
            m.cpu_read(0, a, 1024, t + 10);
            t += 100;
        }
        assert!(
            m.stats().dram_writes[TrafficClass::RxEvct] > 0,
            "baseline must exhibit consumed-buffer leaks"
        );
    }

    #[test]
    fn reading_after_relinquish_is_a_fresh_miss() {
        // "A read access after such a guarantee has been declared would have
        // undefined behavior" — in the model it simply refetches stale data
        // from memory.
        let mut m = mem();
        let rx = m.address_map_mut().alloc(64, RegionKind::Rx { core: 0 });
        m.nic_write(rx, 64, 0);
        m.cpu_read(0, rx, 64, 1);
        relinquish(&mut m, rx, 64, 2);
        let r = m.cpu_read(0, rx, 64, 3);
        assert_eq!(r.dram_fetches, 1);
    }

    #[test]
    fn clsweep_on_absent_block_is_harmless() {
        let mut m = mem();
        assert_eq!(clsweep(&mut m, BlockAddr(12345)), 0);
        assert_eq!(m.stats().dram_accesses(), 0);
    }

    #[test]
    fn instruction_count_is_one_per_block() {
        assert_eq!(relinquish_instruction_count(1024), 16);
        assert_eq!(relinquish_instruction_count(1), 1);
        assert_eq!(relinquish_instruction_count(512), 8);
    }
}
