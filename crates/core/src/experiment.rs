//! Experiment harness: load sweeps, the Appendix-A SLO rule, and
//! peak-throughput search.
//!
//! The paper does not cap network bandwidth; instead it reports "the peak
//! network bandwidth the CPU can effectively handle in each system
//! configuration" (§III), defined as the highest Poisson arrival rate whose
//! p99 request latency stays within 100× the workload's unloaded average
//! service time (Appendix A). [`Experiment::find_peak`] implements that
//! search; [`Experiment::run_at_rate`] and
//! [`Experiment::run_keep_queued`] drive single configurations for the
//! breakdown and CDF figures.

use sweeper_nic::traffic::{ArrivalProcess, CoreAssignment};
use sweeper_sim::hierarchy::{InjectionPolicy, MachineConfig};
use sweeper_sim::Cycle;

use crate::server::{RunOptions, RunReport, Server, ServerConfig, SweeperMode};
use crate::workload::{BackgroundTenant, Workload};

/// Declarative configuration of one experiment point.
///
/// Thin builder over [`ServerConfig`] + [`RunOptions`] with the knobs the
/// paper sweeps: injection policy, DDIO ways, RX buffers per core, packet
/// size, memory channels, and Sweeper mode.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    server: ServerConfig,
    options: RunOptions,
}

impl ExperimentConfig {
    /// Paper-sized machine (Table I) with default run lengths.
    pub fn paper_default() -> Self {
        Self {
            server: ServerConfig::paper_default(),
            options: RunOptions::default(),
        }
    }

    /// Tiny machine and short runs, for tests and doctests.
    pub fn tiny_for_tests() -> Self {
        Self {
            server: ServerConfig::tiny_for_tests(),
            options: RunOptions::quick(),
        }
    }

    /// Sets the injection policy (DMA / DDIO / Ideal-DDIO).
    pub fn injection(mut self, policy: InjectionPolicy) -> Self {
        self.server.machine.injection = policy;
        self
    }

    /// Sets the number of DDIO LLC ways.
    pub fn ddio_ways(mut self, ways: u32) -> Self {
        self.server.machine.ddio_ways = ways;
        self
    }

    /// Sets the DRAM channel count (§VI-D sweeps 3, 4, 8).
    pub fn channels(mut self, channels: usize) -> Self {
        self.server.machine = self.server.machine.with_channels(channels);
        self
    }

    /// Sets the Sweeper RX-path mode.
    pub fn sweeper(mut self, mode: SweeperMode) -> Self {
        self.server.sweeper = mode;
        self
    }

    /// Enables NIC-driven sweeping of copied TX buffers (§V-D extension).
    pub fn tx_sweep(mut self, on: bool) -> Self {
        self.server.tx_sweep = on;
        self
    }

    /// Sets RX ring entries per core (the paper's *B*).
    pub fn rx_buffers_per_core(mut self, entries: usize) -> Self {
        self.server.rx_entries = entries;
        self
    }

    /// Sets the number of communicating endpoints per core, each with its
    /// own RX ring (VIA/RDMA provisioning, §II-C). Multiplies the aggregate
    /// buffer footprint.
    pub fn endpoints_per_core(mut self, endpoints: usize) -> Self {
        self.server.endpoints_per_core = endpoints;
        self
    }

    /// Sets TX ring entries per core (transmit-side buffer bloat, §V-D).
    pub fn tx_buffers_per_core(mut self, entries: usize) -> Self {
        self.server.tx_entries = entries;
        self
    }

    /// Sets the request packet size in bytes (and grows buffer entries to
    /// fit).
    pub fn packet_bytes(mut self, bytes: u64) -> Self {
        self.server.packet_bytes = bytes;
        self.server.buffer_bytes = self.server.buffer_bytes.max(bytes);
        self
    }

    /// Sets how many cores run the networked workload (the rest may host a
    /// background tenant).
    pub fn active_cores(mut self, cores: u16) -> Self {
        self.server.active_cores = cores;
        self
    }

    /// Sets the core-assignment policy for arriving packets.
    pub fn assignment(mut self, assignment: CoreAssignment) -> Self {
        self.server.assignment = assignment;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.server.seed = seed;
        self
    }

    /// Enables in-run time-series sampling (see
    /// [`SamplerConfig`](crate::server::SamplerConfig)); the resulting
    /// reports carry a `timeseries`.
    pub fn sampling(mut self, sampler: crate::server::SamplerConfig) -> Self {
        self.server.sampler = Some(sampler);
        self
    }

    /// Enables request-level span recording with a ring of `capacity`
    /// spans; the resulting reports carry `spans`.
    pub fn spans(mut self, capacity: usize) -> Self {
        self.server.spans = Some(capacity);
        self
    }

    /// Enables the hierarchical cycle/DRAM profiler; the resulting reports
    /// carry a `profile` tree.
    pub fn profiler(mut self) -> Self {
        self.server.profiler = true;
        self
    }

    /// Enables the tail-latency flight recorder (see
    /// [`FlightRecorderConfig`](crate::server::FlightRecorderConfig));
    /// forces span recording on and the resulting reports carry `outliers`.
    pub fn flight(mut self, cfg: crate::server::FlightRecorderConfig) -> Self {
        self.server.flight = Some(cfg);
        self
    }

    /// Enables memory-event tracing with a ring of `capacity` events; the
    /// resulting reports carry a `memtrace`.
    pub fn memtrace(mut self, capacity: usize) -> Self {
        self.server.memtrace = Some(capacity);
        self
    }

    /// Enables the correctness harness (shadow-memory oracle + invariant
    /// walks, see [`CheckConfig`](sweeper_sim::check::CheckConfig)); the
    /// resulting reports carry a `check` section.
    pub fn check(mut self, check: sweeper_sim::check::CheckConfig) -> Self {
        self.server.check = Some(check);
        self
    }

    /// The configured RNG seed. The fleet runner treats this as the *base*
    /// seed and derives per-point seeds from it with [`seed_for_point`].
    pub fn base_seed(&self) -> u64 {
        self.server.seed
    }

    /// Finishes the builder into an [`Experiment`] over a workload factory
    /// — `cfg.experiment(f)` reads as the build step of the chain:
    ///
    /// ```
    /// use sweeper_core::experiment::ExperimentConfig;
    /// use sweeper_core::workload::EchoWorkload;
    ///
    /// let exp = ExperimentConfig::tiny_for_tests()
    ///     .seed(7)
    ///     .experiment(EchoWorkload::default);
    /// assert_eq!(exp.config().base_seed(), 7);
    /// ```
    pub fn experiment<W, F>(self, make: F) -> Experiment
    where
        W: Workload + 'static,
        F: Fn() -> W + Send + Sync + 'static,
    {
        Experiment::new(self, make)
    }

    /// A compact human-readable summary of the sweep-relevant knobs —
    /// the default point label when a caller doesn't provide one.
    pub fn summary(&self) -> String {
        let policy = match self.server.machine.injection {
            InjectionPolicy::Dma => "dma".to_string(),
            InjectionPolicy::Ideal => "ideal".to_string(),
            InjectionPolicy::Ddio => format!("ddio{}", self.server.machine.ddio_ways),
        };
        let sweeper = if self.server.sweeper.is_enabled() {
            "+sweeper"
        } else {
            ""
        };
        format!(
            "{policy}{sweeper} rx={} pkt={} ch={}",
            self.server.rx_entries,
            self.server.packet_bytes,
            self.server.machine.dram.channels,
        )
    }

    /// Overrides run lengths (warmup / measured requests, time cap).
    pub fn run_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// The underlying server configuration.
    pub fn server_config(&self) -> &ServerConfig {
        &self.server
    }

    /// The underlying machine configuration.
    pub fn machine(&self) -> &MachineConfig {
        &self.server.machine
    }

    /// Replaces the whole machine configuration (fine-grained overrides the
    /// named builder methods don't cover, e.g. DRAM timing ablations).
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.server.machine = machine;
        self
    }

    /// Aggregate RX buffer footprint in bytes implied by this configuration.
    pub fn rx_footprint_bytes(&self) -> u64 {
        self.server.active_cores as u64
            * self.server.endpoints_per_core as u64
            * self.server.rx_entries as u64
            * self.server.buffer_bytes
    }
}

/// Pass/fail criteria for the peak-throughput search.
#[derive(Debug, Clone, Copy)]
pub struct PeakCriteria {
    /// SLO = `slo_multiplier` × unloaded mean service time (Appendix A:
    /// 100×).
    pub slo_multiplier: f64,
    /// Maximum tolerated packet-drop fraction. The paper's main experiments
    /// effectively require no drops; Figure 10a explicitly reports "peak
    /// throughput achievable without packet drops" (use 0.0 there).
    pub max_drop_rate: f64,
    /// Minimum completed/offered ratio (stability guard).
    pub min_goodput: f64,
    /// Relative rate precision at which bisection stops.
    pub rate_tolerance: f64,
}

impl Default for PeakCriteria {
    fn default() -> Self {
        Self {
            slo_multiplier: 100.0,
            max_drop_rate: 0.001,
            // Coarse overload guard only — the binding rule is the p99 SLO,
            // exactly as in Appendix A. A tight goodput bound would make the
            // search knife-edge on transient backlog drift.
            min_goodput: 0.90,
            rate_tolerance: 0.03,
        }
    }
}

impl PeakCriteria {
    /// Figure 10a's rule: any packet drop fails the rate, and — per
    /// Appendix A, which excludes §VI-F from the p99 SLO rule — latency is
    /// unconstrained (the spiky workload's p99 *is* its spike tail, so an
    /// SLO would bind at every rate).
    pub fn no_drops() -> Self {
        Self {
            max_drop_rate: 0.0,
            slo_multiplier: f64::INFINITY,
            ..Self::default()
        }
    }
}

/// Result of a peak-throughput search.
#[derive(Debug, Clone)]
pub struct PeakResult {
    /// Highest passing offered rate (packets/second).
    pub rate: f64,
    /// Report of the run at that rate.
    pub report: RunReport,
    /// The SLO applied, in cycles.
    pub slo_cycles: Cycle,
    /// Unloaded mean service time used as the SLO base, in cycles.
    pub unloaded_service_cycles: f64,
}

impl PeakResult {
    /// Peak application throughput in Mrps (the paper's headline metric).
    pub fn throughput_mrps(&self) -> f64 {
        self.report.throughput_mrps()
    }
}

/// Derives the RNG seed of sweep point `index` from a base seed.
///
/// The derivation is a splitmix64 finalizer over `base + φ·index`, the
/// standard way to fan one seed out into decorrelated streams. Properties
/// the fleet relies on:
///
/// * **pure** — depends only on `(base, index)`, never on execution order
///   or shared RNG state, so results are identical for any `--jobs` value;
/// * **decorrelated** — adjacent indices land on unrelated streams, so two
///   points with identical configurations still sample independent traffic.
pub fn seed_for_point(base: u64, index: usize) -> u64 {
    // φ = 2^64 / golden ratio; the same increment splitmix64 itself uses.
    let mut z = base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Factories are `Send + Sync` so an `Experiment` can move to a fleet worker
// thread; the workloads they *create* live and die on that worker.
type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>;
type BackgroundFactory = Box<dyn Fn() -> Box<dyn BackgroundTenant> + Send + Sync>;
type ServerHook = Box<dyn Fn(&mut Server) + Send + Sync>;

/// A repeatable experiment: a configuration plus workload factories.
///
/// Each run builds a fresh, independent server so that load points do not
/// contaminate each other.
pub struct Experiment {
    cfg: ExperimentConfig,
    make_workload: WorkloadFactory,
    make_background: Option<BackgroundFactory>,
    hook: Option<ServerHook>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("cfg", &self.cfg)
            .field("background", &self.make_background.is_some())
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// Creates an experiment from a configuration and a workload factory.
    pub fn new<W, F>(cfg: ExperimentConfig, make: F) -> Self
    where
        W: Workload + 'static,
        F: Fn() -> W + Send + Sync + 'static,
    {
        Self {
            cfg,
            make_workload: Box::new(move || Box::new(make())),
            make_background: None,
            hook: None,
        }
    }

    /// Adds a collocated background tenant on the spare cores (§VI-E).
    pub fn with_background<B, F>(mut self, make: F) -> Self
    where
        B: BackgroundTenant + 'static,
        F: Fn() -> B + Send + Sync + 'static,
    {
        self.make_background = Some(Box::new(move || Box::new(make())));
        self
    }

    /// Registers a hook run on every freshly-built server, e.g. to install
    /// LLC way partitions before the run starts.
    pub fn with_server_hook<F>(mut self, hook: F) -> Self
    where
        F: Fn(&mut Server) + Send + Sync + 'static,
    {
        self.hook = Some(Box::new(hook));
        self
    }

    /// The experiment's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Replaces the RNG seed in place; the fleet runner uses this to give
    /// each enumerated point its [`seed_for_point`]-derived stream.
    pub fn reseed(&mut self, seed: u64) {
        self.cfg.server.seed = seed;
    }

    /// Enables the correctness harness in place (`--validate` and
    /// `sweeper check` retrofit existing experiments this way).
    pub fn enable_check(&mut self, check: sweeper_sim::check::CheckConfig) {
        self.cfg.server.check = Some(check);
    }

    fn build(&self, arrivals: ArrivalProcess) -> Server {
        let mut server_cfg = self.cfg.server.clone();
        server_cfg.arrivals = arrivals;
        let mut server = Server::new(server_cfg, (self.make_workload)());
        if let Some(make_bg) = &self.make_background {
            server = server.with_background(make_bg());
        }
        if let Some(hook) = &self.hook {
            hook(&mut server);
        }
        server
    }

    /// Runs once with Poisson arrivals at `rate` packets/second.
    pub fn run_at_rate(&self, rate: f64) -> RunReport {
        self.build(ArrivalProcess::Poisson { rate })
            .run(self.cfg.options)
    }

    /// Runs once in keep-queued mode with per-core depth `depth` (§IV-B's
    /// batching emulation).
    pub fn run_keep_queued(&self, depth: usize) -> RunReport {
        self.build(ArrivalProcess::KeepQueued { depth })
            .run(self.cfg.options)
    }

    /// Measures the unloaded mean service time (cycles) with a light Poisson
    /// probe.
    pub fn unloaded_service_time(&self) -> f64 {
        let mut opts = self.cfg.options;
        opts.warmup_requests = (opts.warmup_requests / 4).max(50);
        opts.measure_requests = (opts.measure_requests / 4).max(200);
        let probe_rate = 1.0e5 * self.cfg.server.active_cores as f64 / 24.0;
        let report = self
            .build(ArrivalProcess::Poisson { rate: probe_rate.max(1.0e4) })
            .run(opts);
        report.service_time.mean().max(1.0)
    }

    fn passes(&self, report: &RunReport, slo: Cycle, criteria: &PeakCriteria) -> bool {
        !report.timed_out
            && report.goodput_ratio() >= criteria.min_goodput
            && report.drop_rate() <= criteria.max_drop_rate
            && report.request_latency.percentile(0.99) <= slo
    }

    /// Finds the peak sustainable throughput under `criteria`.
    ///
    /// The search brackets the knee geometrically from a capacity estimate
    /// (`cores / unloaded service time`) and then bisects to
    /// `criteria.rate_tolerance` relative precision. Cost: ~10 full runs.
    pub fn find_peak(&self, criteria: PeakCriteria) -> PeakResult {
        let unloaded = self.unloaded_service_time();
        let slo = (criteria.slo_multiplier * unloaded).ceil() as Cycle;
        let capacity = self.cfg.server.active_cores as f64 * sweeper_sim::engine::CLOCK_HZ as f64
            / unloaded;

        // Grow an upper bound that fails.
        let mut lo = capacity * 0.05;
        let mut lo_report = None;
        let mut hi = capacity * 0.6;
        loop {
            let report = self.run_at_rate(hi);
            if self.passes(&report, slo, &criteria) {
                lo = hi;
                lo_report = Some(report);
                hi *= 1.5;
                if hi > capacity * 16.0 {
                    break; // workload never saturates under these criteria
                }
            } else {
                break;
            }
        }

        // Bisect the knee.
        while hi - lo > criteria.rate_tolerance * hi {
            let mid = 0.5 * (lo + hi);
            let report = self.run_at_rate(mid);
            if self.passes(&report, slo, &criteria) {
                lo = mid;
                lo_report = Some(report);
            } else {
                hi = mid;
            }
        }

        let report = lo_report.unwrap_or_else(|| self.run_at_rate(lo));
        PeakResult {
            rate: lo,
            report,
            slo_cycles: slo,
            unloaded_service_cycles: unloaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::EchoWorkload;
    use sweeper_sim::stats::TrafficClass;

    fn echo_experiment(cfg: ExperimentConfig) -> Experiment {
        Experiment::new(cfg, || EchoWorkload::with_think(200))
    }

    #[test]
    fn builder_round_trip() {
        let cfg = ExperimentConfig::tiny_for_tests()
            .injection(InjectionPolicy::Dma)
            .ddio_ways(1)
            .sweeper(SweeperMode::Enabled)
            .rx_buffers_per_core(32)
            .packet_bytes(512)
            .seed(99);
        assert_eq!(cfg.machine().injection, InjectionPolicy::Dma);
        assert_eq!(cfg.machine().ddio_ways, 1);
        assert_eq!(cfg.server_config().sweeper, SweeperMode::Enabled);
        assert_eq!(cfg.server_config().rx_entries, 32);
        assert_eq!(cfg.server_config().packet_bytes, 512);
        assert_eq!(cfg.server_config().seed, 99);
        assert_eq!(cfg.rx_footprint_bytes(), 2 * 32 * 1024);
    }

    #[test]
    fn seed_for_point_is_pure_and_decorrelated() {
        assert_eq!(seed_for_point(7, 3), seed_for_point(7, 3));
        // Distinct indices and distinct bases land on distinct streams.
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 0x5eed] {
            for index in 0..64 {
                assert!(seen.insert(seed_for_point(base, index)));
            }
        }
        // Index 0 is not the identity: even the first point gets a mixed
        // stream, so fleet and legacy sequential runs are distinguishable.
        assert_ne!(seed_for_point(0x5eed, 0), 0x5eed);
    }

    #[test]
    fn config_summary_and_build_access() {
        let cfg = ExperimentConfig::tiny_for_tests()
            .injection(InjectionPolicy::Ddio)
            .ddio_ways(4)
            .sweeper(SweeperMode::Enabled)
            .rx_buffers_per_core(128)
            .seed(41);
        assert_eq!(cfg.base_seed(), 41);
        let summary = cfg.summary();
        assert!(summary.contains("ddio4+sweeper"), "summary: {summary}");
        assert!(summary.contains("rx=128"), "summary: {summary}");
        let mut exp = cfg.experiment(EchoWorkload::default);
        exp.reseed(seed_for_point(41, 5));
        assert_eq!(exp.config().base_seed(), seed_for_point(41, 5));
    }

    #[test]
    fn run_at_rate_produces_report() {
        let exp = echo_experiment(ExperimentConfig::tiny_for_tests());
        let report = exp.run_at_rate(1.0e6);
        assert!(report.completed > 0);
        assert!(report.throughput_mrps() > 0.0);
    }

    #[test]
    fn keep_queued_run_works() {
        let exp = echo_experiment(ExperimentConfig::tiny_for_tests());
        let report = exp.run_keep_queued(4);
        assert!(report.completed > 0);
        // Closed loop: offered tracks completions, no huge backlog.
        assert!(report.offered >= report.completed);
    }

    #[test]
    fn unloaded_service_time_is_sane() {
        let exp = echo_experiment(ExperimentConfig::tiny_for_tests());
        let s = exp.unloaded_service_time();
        // Echo with think=200 plus some memory access: hundreds of cycles.
        assert!(s > 200.0, "service {s}");
        assert!(s < 100_000.0, "service {s}");
    }

    #[test]
    fn find_peak_brackets_a_knee() {
        let cfg = ExperimentConfig::tiny_for_tests().run_options(RunOptions {
            warmup_requests: 100,
            measure_requests: 600,
            max_cycles: 4_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
        let exp = echo_experiment(cfg);
        let peak = exp.find_peak(PeakCriteria::default());
        assert!(peak.rate > 0.0);
        assert!(peak.throughput_mrps() > 0.0);
        // The peak must not exceed the nominal capacity estimate wildly.
        let capacity_mrps = 2.0 * sweeper_sim::engine::CLOCK_HZ as f64
            / peak.unloaded_service_cycles
            / 1e6;
        assert!(
            peak.throughput_mrps() <= capacity_mrps * 1.3,
            "peak {} vs capacity {}",
            peak.throughput_mrps(),
            capacity_mrps
        );
    }

    #[test]
    fn sweeper_peak_at_least_matches_baseline_with_big_buffers() {
        let cfg = ExperimentConfig::tiny_for_tests()
            .rx_buffers_per_core(64)
            .run_options(RunOptions {
                warmup_requests: 100,
                measure_requests: 500,
                max_cycles: 4_000_000_000,
                min_warmup_cycles: 0,
                min_measure_cycles: 0,
            });
        let base = echo_experiment(cfg.clone()).find_peak(PeakCriteria::default());
        let swept =
            echo_experiment(cfg.sweeper(SweeperMode::Enabled)).find_peak(PeakCriteria::default());
        assert!(
            swept.throughput_mrps() >= base.throughput_mrps() * 0.9,
            "sweeper {} vs base {}",
            swept.throughput_mrps(),
            base.throughput_mrps()
        );
    }

    #[test]
    fn no_drops_criteria_drops_the_slo() {
        let strict = PeakCriteria::no_drops();
        let default = PeakCriteria::default();
        assert_eq!(strict.max_drop_rate, 0.0);
        assert!(default.max_drop_rate > 0.0);
        // §VI-F is excluded from the Appendix-A SLO rule.
        assert!(strict.slo_multiplier.is_infinite());
    }

    #[test]
    fn no_drop_peak_really_has_no_drops() {
        let cfg = ExperimentConfig::tiny_for_tests()
            .rx_buffers_per_core(4) // shallow: drops appear early
            .run_options(RunOptions {
                warmup_requests: 100,
                measure_requests: 600,
                max_cycles: 4_000_000_000,
                min_warmup_cycles: 0,
                min_measure_cycles: 0,
            });
        let exp = echo_experiment(cfg);
        let strict = exp.find_peak(PeakCriteria::no_drops());
        assert_eq!(strict.report.dropped, 0, "no-drop peak must not drop");
        assert!(strict.rate > 0.0);
    }

    #[test]
    fn server_hook_runs() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let fired = Arc::new(AtomicBool::new(false));
        let flag = fired.clone();
        let exp = echo_experiment(ExperimentConfig::tiny_for_tests())
            .with_server_hook(move |_s| flag.store(true, Ordering::SeqCst));
        exp.run_at_rate(1.0e6);
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn ideal_ddio_has_no_network_traffic() {
        let exp = echo_experiment(
            ExperimentConfig::tiny_for_tests().injection(InjectionPolicy::Ideal),
        );
        let report = exp.run_at_rate(1.0e6);
        let counts = report.class_counts();
        assert_eq!(counts[TrafficClass::NicRxWr], 0);
        assert_eq!(counts[TrafficClass::NicTxRd], 0);
        assert_eq!(counts[TrafficClass::RxEvct], 0);
        assert_eq!(counts[TrafficClass::TxEvct], 0);
        assert_eq!(counts[TrafficClass::CpuRxRd], 0);
    }
}
