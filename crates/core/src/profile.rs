//! Run-length profiles: how much simulated work an evaluation spends.
//!
//! The benchmark harness used to branch on a stringly `SWEEPER_FAST`
//! environment check at every call site. [`RunProfile`] replaces that: the
//! profile is parsed **once** (from `--profile` or the environment) and
//! threaded explicitly through the figure registry, the fleet runner, and
//! the CLI.
//!
//! * [`RunProfile::Full`] — paper-fidelity run lengths (default),
//! * [`RunProfile::Fast`] — quartered measurement windows for CI smokes
//!   (what `SWEEPER_FAST=1` historically selected),
//! * [`RunProfile::Smoke`] — minimal windows that only prove the plumbing;
//!   used to size long-running tests so `cargo test -q` stays quick.

use std::fmt;
use std::str::FromStr;

/// How long the evaluation's simulation windows run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RunProfile {
    /// Paper-fidelity run lengths.
    #[default]
    Full,
    /// Quartered windows for a quick CI pass (`SWEEPER_FAST=1`).
    Fast,
    /// Minimal windows for unit/integration tests.
    Smoke,
}

impl RunProfile {
    /// Resolves the profile from the environment, parsed once at startup:
    /// `SWEEPER_PROFILE=full|fast|smoke` wins; otherwise a non-empty
    /// `SWEEPER_FAST` still selects [`RunProfile::Fast`] for backwards
    /// compatibility.
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("SWEEPER_PROFILE") {
            if let Ok(p) = v.parse() {
                return p;
            }
        }
        match std::env::var("SWEEPER_FAST") {
            Ok(v) if !v.is_empty() => Self::Fast,
            _ => Self::Full,
        }
    }

    /// Divisor applied to measurement windows relative to [`RunProfile::Full`].
    pub fn window_divisor(self) -> u64 {
        match self {
            Self::Full => 1,
            Self::Fast => 4,
            Self::Smoke => 24,
        }
    }

    /// Scales a [`RunProfile::Full`]-sized quantity down, keeping `floor`.
    pub fn scale(self, full_value: u64, floor: u64) -> u64 {
        (full_value / self.window_divisor()).max(floor)
    }

    /// The profile's canonical name (`full` / `fast` / `smoke`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::Fast => "fast",
            Self::Smoke => "smoke",
        }
    }
}

impl fmt::Display for RunProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RunProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Ok(Self::Full),
            "fast" => Ok(Self::Fast),
            "smoke" => Ok(Self::Smoke),
            other => Err(format!(
                "unknown profile '{other}' (expected full, fast, or smoke)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_round_trips() {
        for p in [RunProfile::Full, RunProfile::Fast, RunProfile::Smoke] {
            assert_eq!(p.name().parse::<RunProfile>().unwrap(), p);
            assert_eq!(p.name().to_uppercase().parse::<RunProfile>().unwrap(), p);
        }
        assert!("turbo".parse::<RunProfile>().is_err());
    }

    #[test]
    fn scaling_respects_floor_and_order() {
        assert_eq!(RunProfile::Full.scale(30_000, 100), 30_000);
        assert_eq!(RunProfile::Fast.scale(30_000, 100), 7_500);
        assert_eq!(RunProfile::Smoke.scale(30_000, 100), 1_250);
        assert_eq!(RunProfile::Smoke.scale(1_000, 500), 500);
        assert!(RunProfile::Fast.window_divisor() < RunProfile::Smoke.window_divisor());
    }
}
