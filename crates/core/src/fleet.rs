//! Parallel experiment fleet: run independent simulation points across a
//! worker pool of OS threads.
//!
//! Regenerating a paper figure means running tens of *independent*
//! simulation points (policy × ways × buffer depth …). Each point is a
//! self-contained [`Experiment`] with its own seed, so points can execute
//! on any thread in any order without changing results — the fleet
//! guarantees **determinism by construction**:
//!
//! 1. every point receives a seed derived from its *declaration index*
//!    ([`seed_for_point`]), never from shared RNG state, and
//! 2. outcomes are collected back in declaration order, so rendered tables
//!    and CSVs are byte-identical for any `--jobs` value.
//!
//! The worker count comes from [`Fleet::from_env`] (`SWEEPER_JOBS`, default
//! = available parallelism) or an explicit [`Fleet::new`]. A single-point
//! fleet, or `--jobs 1`, degrades to plain sequential execution on the
//! calling thread.
//!
//! ```
//! use sweeper_core::experiment::ExperimentConfig;
//! use sweeper_core::fleet::{ExperimentPoint, Fleet};
//! use sweeper_core::workload::EchoWorkload;
//!
//! let points = (0..4)
//!     .map(|i| {
//!         ExperimentPoint::at_rate(
//!             format!("echo#{i}"),
//!             ExperimentConfig::tiny_for_tests().experiment(EchoWorkload::default),
//!             2.0e6,
//!         )
//!     })
//!     .collect();
//! let outcomes = Fleet::new(2).quiet().run(points);
//! assert_eq!(outcomes.len(), 4);
//! assert!(outcomes.iter().all(|o| o.report.completed > 0));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::experiment::{seed_for_point, Experiment, PeakCriteria};
use crate::server::RunReport;

/// How the fleet drives one experiment point.
#[derive(Debug, Clone, Copy)]
pub enum PointAction {
    /// Peak-throughput search under the given criteria
    /// ([`Experiment::find_peak`]). The bisection stays sequential *within*
    /// the point; independent points still fan out.
    Peak(PeakCriteria),
    /// One open-loop run at a Poisson rate in packets/second
    /// ([`Experiment::run_at_rate`]).
    AtRate(f64),
    /// One closed-loop keep-queued run at depth *D*
    /// ([`Experiment::run_keep_queued`]).
    KeepQueued(usize),
}

/// One self-describing unit of fleet work: a labelled experiment plus the
/// action that drives it.
pub struct ExperimentPoint {
    label: String,
    experiment: Experiment,
    action: PointAction,
}

impl ExperimentPoint {
    /// A point with an explicit action.
    pub fn new(label: impl Into<String>, experiment: Experiment, action: PointAction) -> Self {
        Self {
            label: label.into(),
            experiment,
            action,
        }
    }

    /// Peak search under default criteria.
    pub fn peak(label: impl Into<String>, experiment: Experiment) -> Self {
        Self::new(label, experiment, PointAction::Peak(PeakCriteria::default()))
    }

    /// Peak search under explicit criteria.
    pub fn peak_with(
        label: impl Into<String>,
        experiment: Experiment,
        criteria: PeakCriteria,
    ) -> Self {
        Self::new(label, experiment, PointAction::Peak(criteria))
    }

    /// Open-loop run at `rate` packets/second.
    pub fn at_rate(label: impl Into<String>, experiment: Experiment, rate: f64) -> Self {
        Self::new(label, experiment, PointAction::AtRate(rate))
    }

    /// Closed-loop keep-queued run at `depth`.
    pub fn keep_queued(label: impl Into<String>, experiment: Experiment, depth: usize) -> Self {
        Self::new(label, experiment, PointAction::KeepQueued(depth))
    }

    /// Enables the correctness harness on the point's experiment
    /// (`sweeper check` drives whole figures through checked mode this way).
    pub fn enable_check(&mut self, check: sweeper_sim::check::CheckConfig) {
        self.experiment.enable_check(check);
    }

    /// The point's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The point's experiment.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The action the fleet will run.
    pub fn action(&self) -> PointAction {
        self.action
    }

    fn execute(self) -> PointOutcome {
        let start = Instant::now();
        let (report, peak_rate) = match self.action {
            PointAction::Peak(criteria) => {
                let peak = self.experiment.find_peak(criteria);
                (peak.report, Some(peak.rate))
            }
            PointAction::AtRate(rate) => (self.experiment.run_at_rate(rate), None),
            PointAction::KeepQueued(depth) => (self.experiment.run_keep_queued(depth), None),
        };
        PointOutcome {
            label: self.label,
            report,
            peak_rate,
            wall: start.elapsed(),
        }
    }

    /// One validation pass of the point: rate and keep-queued points run
    /// exactly as declared; peak points run a single closed-loop
    /// keep-queued pass instead of the full ~10-run bisection, because a
    /// correctness check needs the configuration's memory paths exercised
    /// once, not the search repeated.
    fn execute_validation(self) -> PointOutcome {
        let start = Instant::now();
        let report = match self.action {
            PointAction::Peak(_) => self.experiment.run_keep_queued(8),
            PointAction::AtRate(rate) => self.experiment.run_at_rate(rate),
            PointAction::KeepQueued(depth) => self.experiment.run_keep_queued(depth),
        };
        PointOutcome {
            label: self.label,
            report,
            peak_rate: None,
            wall: start.elapsed(),
        }
    }
}

/// Result of one executed point, in declaration order.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The point's label, copied through from [`ExperimentPoint`].
    pub label: String,
    /// The run's report (the peak-rate run's report for
    /// [`PointAction::Peak`] points).
    pub report: RunReport,
    /// The peak offered rate in packets/second, for peak points.
    pub peak_rate: Option<f64>,
    /// Host wall-clock time this point took.
    pub wall: Duration,
}

impl PointOutcome {
    /// Application throughput of the point's report, in Mrps.
    pub fn throughput_mrps(&self) -> f64 {
        self.report.throughput_mrps()
    }

    /// Structured export for the telemetry layer.
    ///
    /// Wall-clock time is deliberately excluded: fleet JSON must be
    /// byte-identical for any `--jobs` value, and `wall` depends on host
    /// scheduling. `peak_rate` appears only for peak points.
    pub fn to_record(&self) -> sweeper_sim::telemetry::Record {
        let mut rec = sweeper_sim::telemetry::Record::new().with("label", self.label.as_str());
        if let Some(rate) = self.peak_rate {
            rec.push("peak_rate", rate);
        }
        rec.push(
            "report",
            crate::report::json_record(&self.report, crate::report::ReportStyle::default()),
        );
        rec
    }
}

/// A worker pool executing [`ExperimentPoint`]s.
#[derive(Debug, Clone)]
pub struct Fleet {
    jobs: usize,
    progress: bool,
}

impl Default for Fleet {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Fleet {
    /// A fleet with an explicit worker count (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            progress: true,
        }
    }

    /// Worker count from `SWEEPER_JOBS`, defaulting to the host's available
    /// parallelism.
    pub fn from_env() -> Self {
        let jobs = std::env::var("SWEEPER_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self::new(jobs)
    }

    /// A single-worker (sequential) fleet.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Disables per-point progress lines on stderr.
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes the points and returns their outcomes **in declaration
    /// order**, regardless of worker count or completion order.
    ///
    /// Before anything runs, every point's experiment is re-seeded with
    /// [`seed_for_point`]`(base, index)` over its declaration index, so the
    /// realized random streams are a function of the point list alone —
    /// identical for `--jobs 1` and `--jobs N`.
    pub fn run(&self, points: Vec<ExperimentPoint>) -> Vec<PointOutcome> {
        let total = points.len();
        let seeded: Vec<ExperimentPoint> = points
            .into_iter()
            .enumerate()
            .map(|(index, mut point)| {
                let base = point.experiment.config().base_seed();
                point.experiment.reseed(seed_for_point(base, index));
                point
            })
            .collect();

        let done = AtomicUsize::new(0);
        let progress = self.progress;
        let tasks: Vec<_> = seeded
            .into_iter()
            .map(|point| {
                let done = &done;
                move || {
                    let outcome = point.execute();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        eprintln!(
                            "[fleet {finished}/{total}] {}: {:.2} Mrps in {:.1?}",
                            outcome.label,
                            outcome.throughput_mrps(),
                            outcome.wall,
                        );
                    }
                    outcome
                }
            })
            .collect();
        self.run_tasks(tasks)
    }

    /// Executes every point once in checked mode and returns outcomes in
    /// declaration order. Seeding matches [`Fleet::run`]; the difference is
    /// that every point gets the correctness harness enabled (so each
    /// report carries a `check` section) and peak points run one
    /// keep-queued pass instead of the full bisection (see
    /// `execute_validation`). `sweeper check` drives the figure registry
    /// through this.
    pub fn run_validation(
        &self,
        points: Vec<ExperimentPoint>,
        check: sweeper_sim::check::CheckConfig,
    ) -> Vec<PointOutcome> {
        let total = points.len();
        let seeded: Vec<ExperimentPoint> = points
            .into_iter()
            .enumerate()
            .map(|(index, mut point)| {
                let base = point.experiment.config().base_seed();
                point.experiment.reseed(seed_for_point(base, index));
                point.experiment.enable_check(check);
                point
            })
            .collect();

        let done = AtomicUsize::new(0);
        let progress = self.progress;
        let tasks: Vec<_> = seeded
            .into_iter()
            .map(|point| {
                let done = &done;
                move || {
                    let outcome = point.execute_validation();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        let status = match &outcome.report.check {
                            Some(c) if c.passed() => "pass".to_string(),
                            Some(c) => format!("FAIL ({} violations)", c.total_violations()),
                            None => "unchecked".to_string(),
                        };
                        eprintln!(
                            "[check {finished}/{total}] {}: {status} in {:.1?}",
                            outcome.label, outcome.wall,
                        );
                    }
                    outcome
                }
            })
            .collect();
        self.run_tasks(tasks)
    }

    /// Low-level entry point: executes arbitrary closures across the worker
    /// pool, returning results in declaration order. Used by [`Fleet::run`]
    /// and by callers whose work units are not [`ExperimentPoint`]s (e.g.
    /// parallel load sweeps).
    pub fn run_tasks<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.jobs.min(n.max(1));
        if workers <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }

        let queue: Mutex<VecDeque<(usize, F)>> =
            Mutex::new(tasks.into_iter().enumerate().collect());
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = queue.lock().expect("fleet queue poisoned").pop_front();
                    let Some((index, task)) = job else { break };
                    let value = task();
                    *results[index].lock().expect("fleet slot poisoned") = Some(value);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("fleet slot poisoned")
                    .expect("every task ran to completion")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::workload::EchoWorkload;

    fn echo_point(i: usize, rate: f64) -> ExperimentPoint {
        ExperimentPoint::at_rate(
            format!("echo#{i}"),
            ExperimentConfig::tiny_for_tests().experiment(|| EchoWorkload::with_think(150)),
            rate,
        )
    }

    fn fingerprint(outcomes: &[PointOutcome]) -> Vec<String> {
        outcomes
            .iter()
            .map(|o| {
                format!(
                    "{}|{}|{}|{}|{}|{}",
                    o.label,
                    o.report.completed,
                    o.report.offered,
                    o.report.elapsed_cycles,
                    o.report.mem.dram_accesses(),
                    o.report.request_latency.percentile(0.99),
                )
            })
            .collect()
    }

    #[test]
    fn outcomes_keep_declaration_order() {
        let points = (0..8).map(|i| echo_point(i, 1.0e6 + i as f64 * 1.0e5)).collect();
        let outcomes = Fleet::new(4).quiet().run(points);
        let labels: Vec<_> = outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(
            labels,
            ["echo#0", "echo#1", "echo#2", "echo#3", "echo#4", "echo#5", "echo#6", "echo#7"]
        );
    }

    #[test]
    fn results_are_identical_for_any_worker_count() {
        let build = || (0..6).map(|i| echo_point(i, 2.0e6)).collect::<Vec<_>>();
        let sequential = fingerprint(&Fleet::sequential().quiet().run(build()));
        let parallel = fingerprint(&Fleet::new(4).quiet().run(build()));
        let oversubscribed = fingerprint(&Fleet::new(64).quiet().run(build()));
        assert_eq!(sequential, parallel);
        assert_eq!(sequential, oversubscribed);
    }

    #[test]
    fn per_point_seeds_decorrelate_identical_configs() {
        // Same config, same rate, different declaration index ⇒ different
        // realized streams (each point gets seed_for_point(base, i)).
        let outcomes = Fleet::sequential().quiet().run(
            (0..2).map(|i| echo_point(i, 2.0e6)).collect(),
        );
        assert_ne!(
            outcomes[0].report.request_latency.percentile(0.99),
            outcomes[1].report.request_latency.percentile(0.99),
            "points with distinct indices should not replay the same stream",
        );
    }

    #[test]
    fn sampled_and_traced_fleet_is_byte_identical_across_job_counts() {
        // The observability layer must not break determinism-by-construction:
        // with in-run sampling AND span tracing enabled, the fleet JSON, the
        // per-point Perfetto exports, and the per-point timeseries must all
        // be byte-identical for --jobs 1 and --jobs N.
        use crate::server::SamplerConfig;
        use crate::telemetry::{fleet_document, perfetto_document, RunManifest};

        let build = || -> Vec<ExperimentPoint> {
            (0..4)
                .map(|i| {
                    ExperimentPoint::at_rate(
                        format!("traced#{i}"),
                        ExperimentConfig::tiny_for_tests()
                            .sampling(SamplerConfig {
                                every: 50_000,
                                capacity: 64,
                            })
                            .spans(4096)
                            .experiment(|| EchoWorkload::with_think(150)),
                        2.0e6,
                    )
                })
                .collect()
        };
        let manifest = RunManifest::new();
        let artifacts = |outcomes: &[PointOutcome]| -> Vec<String> {
            let mut out = vec![fleet_document(outcomes, &manifest).to_json_pretty()];
            for o in outcomes {
                let spans = o.report.spans.as_ref().expect("spans enabled");
                assert!(!spans.is_empty(), "{}: traced run recorded no spans", o.label);
                out.push(perfetto_document(spans, &manifest).to_json_pretty());
                let ts = o.report.timeseries.as_ref().expect("sampler enabled");
                out.push(ts.to_record().to_json_pretty());
            }
            out
        };
        let sequential = artifacts(&Fleet::sequential().quiet().run(build()));
        let parallel = artifacts(&Fleet::new(4).quiet().run(build()));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn run_tasks_handles_more_tasks_than_workers() {
        let tasks: Vec<_> = (0..50)
            .map(|i| move || i * 2)
            .collect();
        let out = Fleet::new(3).run_tasks(tasks);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn env_fleet_clamps_to_at_least_one_worker() {
        assert!(Fleet::new(0).jobs() >= 1);
        assert!(Fleet::from_env().jobs() >= 1);
    }

    #[test]
    fn keep_queued_and_peak_actions_run() {
        let cfg = ExperimentConfig::tiny_for_tests();
        let points = vec![
            ExperimentPoint::keep_queued(
                "kq",
                cfg.clone().experiment(|| EchoWorkload::with_think(150)),
                4,
            ),
            ExperimentPoint::peak_with(
                "pk",
                cfg.run_options(crate::server::RunOptions {
                    warmup_requests: 100,
                    measure_requests: 400,
                    max_cycles: 4_000_000_000,
                    min_warmup_cycles: 0,
                    min_measure_cycles: 0,
                })
                .experiment(|| EchoWorkload::with_think(150)),
                PeakCriteria::default(),
            ),
        ];
        let outcomes = Fleet::new(2).quiet().run(points);
        assert!(outcomes[0].peak_rate.is_none());
        assert!(outcomes[1].peak_rate.is_some());
        assert!(outcomes.iter().all(|o| o.report.completed > 0));
    }
}
