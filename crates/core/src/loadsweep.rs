//! Load–latency sweeps: the classic "hockey-stick" characterization.
//!
//! The paper reports peak throughput under an SLO (Appendix A); operators
//! usually also want the whole curve — throughput, latency percentiles,
//! memory bandwidth, and leak counts as functions of offered load. A
//! [`LoadSweep`] drives an [`Experiment`](crate::experiment::Experiment)
//! across a rate grid and returns one [`LoadPoint`] per rate, ready for
//! plotting or CSV export.

use crate::experiment::Experiment;
use crate::fleet::Fleet;
use crate::server::RunReport;
use sweeper_sim::stats::TrafficClass;
use sweeper_sim::telemetry::{CsvTable, Record, Value};
use sweeper_sim::Cycle;

/// One measured operating point.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered load, packets per second.
    pub offered_rate: f64,
    /// Achieved throughput in Mrps.
    pub throughput_mrps: f64,
    /// Mean end-to-end request latency, cycles.
    pub latency_mean: f64,
    /// Median end-to-end request latency, cycles.
    pub latency_p50: Cycle,
    /// Tail end-to-end request latency, cycles.
    pub latency_p99: Cycle,
    /// Memory bandwidth, GB/s.
    pub memory_gbps: f64,
    /// Consumed + premature RX leak blocks per request.
    pub rx_leaks_per_request: f64,
    /// Fraction of offered packets dropped.
    pub drop_rate: f64,
    /// Completed / offered.
    pub goodput_ratio: f64,
}

impl LoadPoint {
    /// Summarizes one run at `offered_rate` into a sweep point. Public so
    /// drivers that need the full per-point [`RunReport`] (e.g. `sweep
    /// --validate`, which inspects each report's check section) can build a
    /// [`LoadSweep`] from reports they ran themselves.
    pub fn from_report(offered_rate: f64, report: &RunReport) -> Self {
        let counts = report.class_counts();
        let per_req = |c: TrafficClass| counts[c] as f64 / report.completed.max(1) as f64;
        let latency = report.request_latency.summary();
        Self {
            offered_rate,
            throughput_mrps: report.throughput_mrps(),
            latency_mean: latency.mean,
            latency_p50: latency.p50,
            latency_p99: latency.p99,
            memory_gbps: report.memory_bandwidth_gbps(),
            rx_leaks_per_request: per_req(TrafficClass::RxEvct) + per_req(TrafficClass::CpuRxRd),
            drop_rate: report.drop_rate(),
            goodput_ratio: report.goodput_ratio(),
        }
    }

    /// Structured export for the telemetry layer.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("offered_rate", self.offered_rate)
            .with("throughput_mrps", self.throughput_mrps)
            .with("latency_mean", self.latency_mean)
            .with("latency_p50", self.latency_p50)
            .with("latency_p99", self.latency_p99)
            .with("memory_gbps", self.memory_gbps)
            .with("rx_leaks_per_request", self.rx_leaks_per_request)
            .with("drop_rate", self.drop_rate)
            .with("goodput_ratio", self.goodput_ratio)
    }
}

/// A rate grid to sweep.
#[derive(Debug, Clone)]
pub struct RateGrid {
    rates: Vec<f64>,
}

impl RateGrid {
    /// Linear grid of `points` rates from `lo` to `hi` (packets/second).
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive and increasing or `points < 2`.
    pub fn linear(lo: f64, hi: f64, points: usize) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        assert!(points >= 2, "need at least two points");
        let step = (hi - lo) / (points - 1) as f64;
        Self {
            rates: (0..points).map(|i| lo + step * i as f64).collect(),
        }
    }

    /// Geometric grid of `points` rates from `lo` to `hi`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive and increasing or `points < 2`.
    pub fn geometric(lo: f64, hi: f64, points: usize) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        assert!(points >= 2, "need at least two points");
        let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
        Self {
            rates: (0..points).map(|i| lo * ratio.powi(i as i32)).collect(),
        }
    }

    /// An explicit list of rates.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or not strictly increasing.
    pub fn explicit(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "need at least one rate");
        assert!(
            rates.windows(2).all(|w| w[0] < w[1]),
            "rates must be strictly increasing"
        );
        Self { rates }
    }

    /// The rates, ascending.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

/// Result of sweeping an experiment across a rate grid.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    points: Vec<LoadPoint>,
}

impl LoadSweep {
    /// Runs `experiment` at every rate of `grid`.
    ///
    /// `stop_when_saturated` aborts the sweep once goodput drops below 50%
    /// — everything beyond is deep overload and costs simulation time
    /// without adding information.
    pub fn run(experiment: &Experiment, grid: &RateGrid, stop_when_saturated: bool) -> Self {
        let mut points = Vec::with_capacity(grid.rates().len());
        for &rate in grid.rates() {
            let report = experiment.run_at_rate(rate);
            let point = LoadPoint::from_report(rate, &report);
            let saturated = point.goodput_ratio < 0.5;
            points.push(point);
            if stop_when_saturated && saturated {
                break;
            }
        }
        Self { points }
    }

    /// Runs `experiment` at every rate of `grid`, fanning the rates out
    /// across `fleet`'s workers.
    ///
    /// Every rate reuses the experiment's own seed — exactly like the
    /// sequential [`LoadSweep::run`] — so the two produce identical points
    /// for any worker count. The saturation early-exit is unavailable here
    /// (later rates start before earlier ones finish); callers who want it
    /// should bound the grid instead.
    pub fn run_parallel(experiment: &Experiment, grid: &RateGrid, fleet: &Fleet) -> Self {
        let tasks: Vec<_> = grid
            .rates()
            .iter()
            .map(|&rate| {
                move || {
                    let report = experiment.run_at_rate(rate);
                    LoadPoint::from_report(rate, &report)
                }
            })
            .collect();
        Self {
            points: fleet.run_tasks(tasks),
        }
    }

    /// Assembles a sweep from points measured elsewhere (companion of
    /// [`LoadPoint::from_report`]; points must be in offered-rate order).
    pub fn from_points(points: Vec<LoadPoint>) -> Self {
        Self { points }
    }

    /// The measured points, in offered-rate order.
    pub fn points(&self) -> &[LoadPoint] {
        &self.points
    }

    /// The highest rate whose p99 latency stayed within `slo` cycles.
    pub fn peak_under_slo(&self, slo: Cycle) -> Option<&LoadPoint> {
        self.points
            .iter()
            .rfind(|p| p.latency_p99 <= slo && p.goodput_ratio >= 0.9)
    }

    /// The knee: the first point whose p99 at least doubled relative to the
    /// lowest-load point (a scale-free definition of "where queuing starts").
    pub fn knee(&self) -> Option<&LoadPoint> {
        let base = self.points.first()?.latency_p99.max(1);
        self.points.iter().find(|p| p.latency_p99 >= 2 * base)
    }

    /// Renders the sweep as CSV (header + one row per point).
    pub fn to_csv(&self) -> String {
        self.to_csv_with_comments(&[])
    }

    /// Like [`LoadSweep::to_csv`], with `# key: value` manifest comment
    /// lines (in the workspace's shared dialect) prepended.
    pub fn to_csv_with_comments(&self, comments: &[(String, String)]) -> String {
        let mut table = CsvTable::new(&[
            "offered_rate",
            "throughput_mrps",
            "latency_mean",
            "latency_p50",
            "latency_p99",
            "memory_gbps",
            "rx_leaks_per_request",
            "drop_rate",
            "goodput_ratio",
        ])
        .comments(comments);
        for p in &self.points {
            table.row(vec![
                format!("{:.0}", p.offered_rate),
                format!("{:.4}", p.throughput_mrps),
                format!("{:.1}", p.latency_mean),
                p.latency_p50.to_string(),
                p.latency_p99.to_string(),
                format!("{:.3}", p.memory_gbps),
                format!("{:.3}", p.rx_leaks_per_request),
                format!("{:.6}", p.drop_rate),
                format!("{:.4}", p.goodput_ratio),
            ]);
        }
        table.to_csv()
    }

    /// Structured export for the telemetry layer: one record per point.
    pub fn to_record(&self) -> Record {
        Record::new().with(
            "points",
            self.points
                .iter()
                .map(|p| Value::from(p.to_record()))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::workload::EchoWorkload;

    fn tiny_experiment() -> Experiment {
        Experiment::new(ExperimentConfig::tiny_for_tests(), || {
            EchoWorkload::with_think(200)
        })
    }

    #[test]
    fn linear_grid_has_exact_endpoints() {
        let g = RateGrid::linear(1e6, 5e6, 5);
        assert_eq!(g.rates().len(), 5);
        assert!((g.rates()[0] - 1e6).abs() < 1.0);
        assert!((g.rates()[4] - 5e6).abs() < 1.0);
        assert!((g.rates()[2] - 3e6).abs() < 1.0);
    }

    #[test]
    fn geometric_grid_has_constant_ratio() {
        let g = RateGrid::geometric(1e6, 16e6, 5);
        for w in g.rates().windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn explicit_grid_validates_order() {
        let g = RateGrid::explicit(vec![1.0, 2.0, 4.0]);
        assert_eq!(g.rates(), &[1.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn explicit_grid_rejects_disorder() {
        RateGrid::explicit(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn linear_grid_rejects_bad_bounds() {
        RateGrid::linear(5e6, 1e6, 3);
    }

    #[test]
    fn sweep_produces_monotone_offered_rates_and_knee() {
        let exp = tiny_experiment();
        let sweep = LoadSweep::run(&exp, &RateGrid::geometric(0.2e6, 12.8e6, 7), true);
        assert!(!sweep.points().is_empty());
        for w in sweep.points().windows(2) {
            assert!(w[1].offered_rate > w[0].offered_rate);
            // Throughput never decreases dramatically below offered at low load.
            assert!(w[0].goodput_ratio > 0.3);
        }
        // Low load tracks offered; the last point should show queueing or
        // saturation relative to the first.
        let first = sweep.points().first().unwrap();
        let last = sweep.points().last().unwrap();
        assert!(last.latency_p99 >= first.latency_p99);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let exp = tiny_experiment();
        let grid = RateGrid::geometric(0.5e6, 8.0e6, 5);
        let sequential = LoadSweep::run(&exp, &grid, false);
        let parallel = LoadSweep::run_parallel(&exp, &grid, &Fleet::new(4));
        assert_eq!(sequential.to_csv(), parallel.to_csv());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let exp = tiny_experiment();
        let sweep = LoadSweep::run(&exp, &RateGrid::linear(0.5e6, 1.5e6, 2), false);
        let csv = sweep.to_csv();
        assert!(csv.starts_with("offered_rate,"));
        assert_eq!(csv.lines().count(), 1 + sweep.points().len());
    }

    #[test]
    fn csv_comments_and_record_share_the_points() {
        let exp = tiny_experiment();
        let sweep = LoadSweep::run(&exp, &RateGrid::linear(0.5e6, 1.5e6, 2), false);
        let csv =
            sweep.to_csv_with_comments(&[("artifact".to_string(), "loadsweep".to_string())]);
        assert!(csv.starts_with("# artifact: loadsweep\noffered_rate,"));
        let rec = sweep.to_record();
        let Some(Value::Array(points)) = rec.get("points") else {
            panic!("points missing");
        };
        assert_eq!(points.len(), sweep.points().len());
        let Value::Record(first) = &points[0] else {
            panic!("point not a record");
        };
        assert_eq!(
            first.get("latency_p99"),
            Some(&Value::U64(sweep.points()[0].latency_p99))
        );
    }

    #[test]
    fn peak_under_slo_respects_threshold() {
        let exp = tiny_experiment();
        let sweep = LoadSweep::run(&exp, &RateGrid::geometric(0.2e6, 25.6e6, 8), true);
        let generous = sweep.peak_under_slo(u64::MAX / 2);
        assert!(generous.is_some());
        let strict = sweep.peak_under_slo(1);
        assert!(strict.is_none());
    }
}
