//! The Sweeper mechanism, server system model, and experiment harness.
//!
//! This crate is the paper's primary contribution
//! (*"Patching up Network Data Leaks with Sweeper"*, MICRO 2022) plus the
//! system scaffolding needed to evaluate it:
//!
//! * [`sweep`] — the software API (`relinquish`, §V-A) and the `clsweep`
//!   instruction semantics (§V-B), layered on the simulator substrate,
//! * [`os`] — the operating-system model for the page-recycling privacy
//!   concern and its mitigations (§V-B, "Correctness and security concerns"),
//! * [`server`] — the 24-core networked server: per-core request loops over
//!   NIC RX rings, TX through Queue Pairs, optional RX-path relinquish and
//!   NIC-driven TX sweeping (§V-D),
//! * [`workload`] — the [`Workload`](workload::Workload) and
//!   [`BackgroundTenant`](workload::BackgroundTenant) traits the paper's
//!   applications implement,
//! * [`experiment`] — the p99-SLO rule of Appendix A and peak-throughput
//!   search,
//! * [`fleet`] — the parallel experiment runner: independent sweep points
//!   fan out across a worker pool with per-point derived seeds, so results
//!   are identical for any worker count,
//! * [`profile`] — typed run-length profiles (full / fast / smoke)
//!   replacing ad-hoc `SWEEPER_FAST` checks,
//! * [`loadsweep`] — full load–latency ("hockey-stick") characterizations,
//! * [`report`] — run-report rendering through pluggable sinks (stable
//!   text, typed JSON, wide CSV — one traversal feeds all three),
//! * [`telemetry`] — run manifests and schema-tagged JSON/CSV documents
//!   over the shared value layer,
//! * [`scenario`] — versionable `key = value` experiment descriptions.
//!
//! # Example
//!
//! ```
//! use sweeper_core::experiment::{Experiment, ExperimentConfig};
//! use sweeper_core::server::SweeperMode;
//! use sweeper_core::workload::EchoWorkload;
//! use sweeper_sim::hierarchy::InjectionPolicy;
//!
//! let cfg = ExperimentConfig::tiny_for_tests()
//!     .injection(InjectionPolicy::Ddio)
//!     .ddio_ways(2)
//!     .sweeper(SweeperMode::Enabled);
//! let report = Experiment::new(cfg, EchoWorkload::default).run_at_rate(2.0e6);
//! assert!(report.completed > 0);
//! ```

pub mod experiment;
pub mod fleet;
pub mod loadsweep;
pub mod profile;
pub mod os;
pub mod report;
pub mod scenario;
pub mod server;
pub mod sweep;
pub mod telemetry;
pub mod workload;
