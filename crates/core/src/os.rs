//! Operating-system model: `clsweep` permission and the page-recycling
//! privacy concern.
//!
//! §V-B observes that careless `clsweep` could become a privacy breach: when
//! the OS reclaims a page and zeroes it *through the caches*, the zeroed
//! blocks are dirty; a malicious new owner can `clsweep` them, dropping the
//! zeros before they reach DRAM, and then read the previous owner's stale
//! values from memory.
//!
//! The paper lists the mitigations this module implements:
//!
//! 1. zero pages with a conventional DMA that bypasses the caches
//!    ([`PageZeroMode::DmaBypass`]),
//! 2. zero through the caches but `CLWB` every block afterwards
//!    ([`PageZeroMode::CachedStoresWithClwb`]), optionally only for pages
//!    handed to processes that requested `clsweep` permission through the
//!    new system call ([`Os::create_process`]).

use std::collections::HashMap;

use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::Cycle;

/// Page size used by the OS model.
pub const PAGE_BYTES: u64 = 4096;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// How the kernel resets a page before transferring ownership (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageZeroMode {
    /// Zero with ordinary cached stores — **vulnerable** when the new owner
    /// may use `clsweep`.
    CachedStores,
    /// Zero with cached stores, then `CLWB` every block so the zeros are
    /// durable in DRAM before the handoff — safe.
    CachedStoresWithClwb,
    /// Zero with a conventional DMA that bypasses the caches — safe.
    DmaBypass,
}

#[derive(Debug, Clone, Copy)]
struct ProcessInfo {
    clsweep_allowed: bool,
}

/// Errors returned by the OS model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsError {
    /// The pid is not a live process.
    UnknownProcess,
    /// The page is not owned by the calling process.
    NotOwner,
    /// The process never requested `clsweep` permission.
    ClsweepDenied,
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::UnknownProcess => f.write_str("unknown process"),
            OsError::NotOwner => f.write_str("page not owned by caller"),
            OsError::ClsweepDenied => f.write_str("clsweep permission not granted"),
        }
    }
}

impl std::error::Error for OsError {}

/// Minimal OS: process control blocks, a page free list, and the
/// zero-on-recycle policy.
#[derive(Debug)]
pub struct Os {
    zero_mode: PageZeroMode,
    processes: HashMap<Pid, ProcessInfo>,
    page_owner: HashMap<u64, Pid>,
    free_pages: Vec<Addr>,
    next_pid: u32,
}

impl Os {
    /// Creates an OS with the given page-zeroing policy.
    pub fn new(zero_mode: PageZeroMode) -> Self {
        Self {
            zero_mode,
            processes: HashMap::new(),
            page_owner: HashMap::new(),
            free_pages: Vec::new(),
            next_pid: 1,
        }
    }

    /// The configured zeroing policy.
    pub fn zero_mode(&self) -> PageZeroMode {
        self.zero_mode
    }

    /// Creates a process. `request_clsweep` models the paper's "new dedicated
    /// system call that requests permission for use of clsweep in userspace";
    /// the grant is recorded in the process control block.
    pub fn create_process(&mut self, request_clsweep: bool) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(
            pid,
            ProcessInfo {
                clsweep_allowed: request_clsweep,
            },
        );
        pid
    }

    /// Whether `pid` may execute `clsweep`.
    pub fn clsweep_allowed(&self, pid: Pid) -> Result<bool, OsError> {
        self.processes
            .get(&pid)
            .map(|p| p.clsweep_allowed)
            .ok_or(OsError::UnknownProcess)
    }

    /// Permission-checked `relinquish` (§V-A through the OS gate).
    ///
    /// # Errors
    ///
    /// [`OsError::ClsweepDenied`] if the process never requested permission,
    /// [`OsError::UnknownProcess`] for a dead pid.
    pub fn relinquish_checked(
        &self,
        pid: Pid,
        mem: &mut MemorySystem,
        addr: Addr,
        len: u64,
        now: Cycle,
    ) -> Result<Cycle, OsError> {
        if !self.clsweep_allowed(pid)? {
            return Err(OsError::ClsweepDenied);
        }
        Ok(crate::sweep::relinquish(mem, addr, len, now))
    }

    /// Allocates a page to `pid`. Recycled pages are zeroed according to the
    /// configured [`PageZeroMode`] before the handoff. A `CLWB`-on-zero is
    /// also applied when the receiving process holds `clsweep` permission,
    /// matching the paper's "only for pages that are allocated to processes
    /// that make use of clsweep" optimization.
    ///
    /// # Errors
    ///
    /// [`OsError::UnknownProcess`] for a dead pid.
    pub fn allocate_page(
        &mut self,
        pid: Pid,
        mem: &mut MemorySystem,
        now: Cycle,
    ) -> Result<Addr, OsError> {
        let clsweep_user = self.clsweep_allowed(pid)?;
        let page = match self.free_pages.pop() {
            Some(page) => {
                // Recycled page: zero before ownership transfer.
                match self.zero_mode {
                    PageZeroMode::CachedStores => {
                        mem.cpu_write(0, page, PAGE_BYTES, now);
                        if clsweep_user {
                            // Paper's targeted mitigation: writeback enforced
                            // only for clsweep-using processes.
                            mem.flush_range(page, PAGE_BYTES, now);
                        }
                    }
                    PageZeroMode::CachedStoresWithClwb => {
                        mem.cpu_write(0, page, PAGE_BYTES, now);
                        mem.flush_range(page, PAGE_BYTES, now);
                    }
                    PageZeroMode::DmaBypass => {
                        mem.dma_zero_range(page, PAGE_BYTES, now);
                    }
                }
                page
            }
            None => mem.address_map_mut().alloc(PAGE_BYTES, RegionKind::Other),
        };
        self.page_owner.insert(page.0, pid);
        Ok(page)
    }

    /// Returns a page to the free list.
    ///
    /// # Errors
    ///
    /// [`OsError::NotOwner`] if `pid` does not own the page.
    pub fn free_page(&mut self, pid: Pid, page: Addr) -> Result<(), OsError> {
        match self.page_owner.get(&page.0) {
            Some(owner) if *owner == pid => {
                self.page_owner.remove(&page.0);
                self.free_pages.push(page);
                Ok(())
            }
            _ => Err(OsError::NotOwner),
        }
    }
}

/// Outcome of the page-recycling attack demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivacyProbe {
    /// Number of page blocks whose zeroing never reached DRAM because the
    /// attacker's `clsweep` dropped them — each one exposes a stale value.
    pub leaked_blocks: u64,
}

impl PrivacyProbe {
    /// Whether the attack succeeded at all.
    pub fn breached(&self) -> bool {
        self.leaked_blocks > 0
    }
}

/// Demonstrates the §V-B privacy scenario end to end under a zeroing policy:
/// victim dirties a page and exits; the kernel recycles the page to an
/// attacker holding `clsweep` permission; the attacker sweeps the page.
/// Returns how many zeroed blocks the sweep managed to drop before they
/// reached DRAM (0 ⇒ the mitigation worked).
pub fn probe_page_recycling(mem: &mut MemorySystem, zero_mode: PageZeroMode) -> PrivacyProbe {
    let mut os = Os::new(zero_mode);
    let victim = os.create_process(false);
    let attacker = os.create_process(true);

    // Victim writes secrets into its page and exits.
    let page = os.allocate_page(victim, mem, 0).expect("victim alive");
    mem.cpu_write(0, page, PAGE_BYTES, 10);
    os.free_page(victim, page).expect("victim owned the page");

    // Kernel recycles the page to the attacker (zeroing happens here).
    let got = os.allocate_page(attacker, mem, 1000).expect("attacker alive");
    assert_eq!(got, page, "free list must recycle the page");

    // Attack: sweep the freshly-zeroed page, hoping the zeros were still
    // dirty in the caches, then read stale values from DRAM.
    let before = mem.stats().sweep_saved_writebacks;
    os.relinquish_checked(attacker, mem, page, PAGE_BYTES, 2000)
        .expect("attacker holds clsweep permission");
    let leaked_blocks = mem.stats().sweep_saved_writebacks - before;
    PrivacyProbe { leaked_blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_sim::hierarchy::{InjectionPolicy, MachineConfig};

    fn mem() -> MemorySystem {
        // The paper-sized LLC comfortably holds a page, which is the point:
        // zeroed blocks stay cached (dirty) unless explicitly written back.
        MemorySystem::new(MachineConfig::paper_default().with_injection(InjectionPolicy::Ddio))
    }

    #[test]
    fn process_permissions() {
        let mut os = Os::new(PageZeroMode::CachedStores);
        let a = os.create_process(true);
        let b = os.create_process(false);
        assert_ne!(a, b);
        assert_eq!(os.clsweep_allowed(a), Ok(true));
        assert_eq!(os.clsweep_allowed(b), Ok(false));
        assert_eq!(os.clsweep_allowed(Pid(999)), Err(OsError::UnknownProcess));
    }

    #[test]
    fn relinquish_gate_denies_unauthorized_process() {
        let mut os = Os::new(PageZeroMode::CachedStores);
        let plain = os.create_process(false);
        let mut m = mem();
        let page = os.allocate_page(plain, &mut m, 0).unwrap();
        let err = os
            .relinquish_checked(plain, &mut m, page, PAGE_BYTES, 1)
            .unwrap_err();
        assert_eq!(err, OsError::ClsweepDenied);
    }

    #[test]
    fn free_requires_ownership() {
        let mut os = Os::new(PageZeroMode::CachedStores);
        let a = os.create_process(false);
        let b = os.create_process(false);
        let mut m = mem();
        let page = os.allocate_page(a, &mut m, 0).unwrap();
        assert_eq!(os.free_page(b, page), Err(OsError::NotOwner));
        assert_eq!(os.free_page(a, page), Ok(()));
        assert_eq!(os.free_page(a, page), Err(OsError::NotOwner));
    }

    #[test]
    fn fresh_pages_are_distinct() {
        let mut os = Os::new(PageZeroMode::CachedStores);
        let p = os.create_process(false);
        let mut m = mem();
        let a = os.allocate_page(p, &mut m, 0).unwrap();
        let b = os.allocate_page(p, &mut m, 0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn cached_zeroing_without_mitigation_breaches() {
        // Force the vulnerable path: give the attacker clsweep permission but
        // bypass the targeted CLWB by building the scenario manually.
        let mut m = mem();
        let mut os = Os::new(PageZeroMode::CachedStores);
        let victim = os.create_process(false);
        let page = os.allocate_page(victim, &mut m, 0).unwrap();
        m.cpu_write(0, page, PAGE_BYTES, 10);
        os.free_page(victim, page).unwrap();
        // A *non-clsweep* process receives the page: kernel skips CLWB.
        let second = os.create_process(false);
        let got = os.allocate_page(second, &mut m, 100).unwrap();
        assert_eq!(got, page);
        // The zeros are dirty in the caches: an (illegitimate) sweep drops
        // them, so stale data would be visible in DRAM.
        let before = m.stats().sweep_saved_writebacks;
        crate::sweep::relinquish(&mut m, page, PAGE_BYTES, 200);
        assert!(
            m.stats().sweep_saved_writebacks - before > 0,
            "unmitigated cached zeroing must be sweepable"
        );
    }

    #[test]
    fn targeted_clwb_mitigation_protects_clsweep_processes() {
        let mut m = mem();
        let probe = probe_page_recycling(&mut m, PageZeroMode::CachedStores);
        // The attacker requested clsweep permission, so the kernel CLWBs the
        // zeroed page before handing it over: no block leaks.
        assert!(!probe.breached(), "leaked {} blocks", probe.leaked_blocks);
    }

    #[test]
    fn clwb_everywhere_mitigation_protects() {
        let mut m = mem();
        let probe = probe_page_recycling(&mut m, PageZeroMode::CachedStoresWithClwb);
        assert!(!probe.breached());
    }

    #[test]
    fn dma_zeroing_mitigation_protects() {
        let mut m = mem();
        let probe = probe_page_recycling(&mut m, PageZeroMode::DmaBypass);
        assert!(!probe.breached());
    }

    #[test]
    fn error_display() {
        assert_eq!(OsError::ClsweepDenied.to_string(), "clsweep permission not granted");
        assert_eq!(format!("{}", Pid(3)), "pid:3");
    }
}
