//! Human-readable rendering of run reports.
//!
//! The CLI, the examples, and ad-hoc drivers all need the same summary of a
//! [`RunReport`]; this module renders it once, consistently. The format is
//! stable line-oriented `key : value` text (easy to grep), with the
//! per-request breakdown in the paper's legend order.

use std::fmt::Write as _;

use crate::server::RunReport;

/// Controls which sections [`render`] includes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportStyle {
    /// Include the per-class access breakdown.
    pub breakdown: bool,
    /// Include DRAM latency percentiles.
    pub dram_latency: bool,
    /// Include Sweeper savings when present.
    pub sweeper: bool,
    /// Hide classes below this many accesses/request.
    pub min_class: f64,
}

impl Default for ReportStyle {
    fn default() -> Self {
        Self {
            breakdown: true,
            dram_latency: true,
            sweeper: true,
            min_class: 0.005,
        }
    }
}

impl ReportStyle {
    /// A one-look summary without breakdowns.
    pub fn brief() -> Self {
        Self {
            breakdown: false,
            dram_latency: false,
            sweeper: false,
            min_class: 0.005,
        }
    }
}

/// Renders `report` as stable text.
pub fn render(report: &RunReport, style: ReportStyle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "workload            : {}", report.workload);
    let _ = writeln!(out, "completed           : {}", report.completed);
    let _ = writeln!(
        out,
        "throughput          : {:.2} Mrps",
        report.throughput_mrps()
    );
    let _ = writeln!(out, "goodput ratio       : {:.3}", report.goodput_ratio());
    let _ = writeln!(
        out,
        "drop rate           : {:.4}%",
        report.drop_rate() * 100.0
    );
    let _ = writeln!(
        out,
        "memory bandwidth    : {:.2} GB/s",
        report.memory_bandwidth_gbps()
    );
    let _ = writeln!(
        out,
        "request latency     : mean {:.0}  p50 {}  p99 {} cycles",
        report.request_latency.mean(),
        report.request_latency.percentile(0.5),
        report.request_latency.percentile(0.99)
    );
    if style.dram_latency {
        let _ = writeln!(
            out,
            "dram read latency   : mean {:.0}  p99 {} cycles",
            report.dram_latency.mean(),
            report.dram_latency.percentile(0.99)
        );
    }
    let _ = writeln!(
        out,
        "accesses/request    : {:.2}",
        report.total_accesses_per_request()
    );
    if style.breakdown {
        for (class, v) in report.accesses_per_request() {
            if v > style.min_class {
                let _ = writeln!(out, "    {class:<14}: {v:.2}");
            }
        }
    }
    if style.sweeper && report.mem.sweep_saved_writebacks > 0 {
        let _ = writeln!(
            out,
            "writebacks saved    : {:.2}/request",
            report.mem.sweep_saved_writebacks as f64 / report.completed.max(1) as f64
        );
    }
    if report.timed_out {
        let _ = writeln!(out, "WARNING             : run hit max_cycles before its quota");
    }
    out
}

/// One-line comparison between a baseline and a treatment report
/// ("A/B line"), used by examples.
pub fn compare_line(label: &str, base: &RunReport, treat: &RunReport) -> String {
    format!(
        "{label}: {:.1} → {:.1} Mrps ({:.2}x), {:.1} → {:.1} GB/s",
        base.throughput_mrps(),
        treat.throughput_mrps(),
        treat.throughput_mrps() / base.throughput_mrps().max(1e-9),
        base.memory_bandwidth_gbps(),
        treat.memory_bandwidth_gbps(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use crate::workload::EchoWorkload;

    fn report() -> RunReport {
        Experiment::new(ExperimentConfig::tiny_for_tests(), || {
            EchoWorkload::with_think(100)
        })
        .run_at_rate(1.0e6)
    }

    #[test]
    fn render_contains_all_sections() {
        let r = report();
        let text = render(&r, ReportStyle::default());
        for key in [
            "workload",
            "completed",
            "throughput",
            "memory bandwidth",
            "request latency",
            "dram read latency",
            "accesses/request",
        ] {
            assert!(text.contains(key), "missing section '{key}' in:\n{text}");
        }
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn brief_style_omits_details() {
        let r = report();
        let text = render(&r, ReportStyle::brief());
        assert!(!text.contains("dram read latency"));
        assert!(text.contains("throughput"));
    }

    #[test]
    fn compare_line_formats_ratio() {
        let a = report();
        let b = report();
        let line = compare_line("echo", &a, &b);
        assert!(line.starts_with("echo: "));
        assert!(line.contains("1.00x"));
    }
}
