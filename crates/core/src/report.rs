//! Rendering of run reports through pluggable sinks.
//!
//! The CLI, the examples, and ad-hoc drivers all need the same summary of a
//! [`RunReport`]. One traversal, [`emit`], walks the report exactly once and
//! streams typed events into a [`ReportSink`]; the sink decides the output
//! format:
//!
//! * [`TextSink`] — the stable line-oriented `key : value` text (easy to
//!   grep) the CLI has always printed, with the per-class breakdown in the
//!   paper's legend order. Byte-identical to the historical `render`
//!   output: the golden tests pin it.
//! * [`JsonSink`] — a typed [`Record`] with every scalar the text shows
//!   *plus* machine-only extras (raw counters, full latency summaries, the
//!   memory-system record, per-channel transfer counts).
//! * [`CsvSink`] — one wide CSV row, flattened, for spreadsheet ingestion.
//!
//! Because every format flows through the same traversal, a value shown in
//! the text report is guaranteed to appear — bit-equal — in the JSON and
//! CSV exports; `tests/telemetry_golden.rs` enforces this.

use std::fmt::Write as _;

use sweeper_sim::span::ProfileNode;
use sweeper_sim::stats::{HistogramSummary, TrafficClass};
use sweeper_sim::telemetry::{CsvTable, Record, Value};

use crate::server::RunReport;

/// Controls which sections [`emit`] includes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportStyle {
    /// Include the per-class access breakdown.
    pub breakdown: bool,
    /// Include DRAM latency percentiles.
    pub dram_latency: bool,
    /// Include Sweeper savings when present.
    pub sweeper: bool,
    /// Hide classes below this many accesses/request.
    pub min_class: f64,
}

impl Default for ReportStyle {
    fn default() -> Self {
        Self {
            breakdown: true,
            dram_latency: true,
            sweeper: true,
            min_class: 0.005,
        }
    }
}

impl ReportStyle {
    /// A one-look summary without breakdowns.
    pub fn brief() -> Self {
        Self {
            breakdown: false,
            dram_latency: false,
            sweeper: false,
            min_class: 0.005,
        }
    }
}

/// Receives the typed event stream of one report traversal.
///
/// Implementations decide what to keep and how to format it; [`emit`] calls
/// the methods in a fixed order so sinks never need to re-sort.
pub trait ReportSink {
    /// A named scalar. `key` is the stable machine identifier (JSON/CSV
    /// field name), `label` the human label, `value` the typed value, and
    /// `pretty` the unit-bearing text rendering.
    fn scalar(&mut self, key: &str, label: &str, value: Value, pretty: &str);

    /// A latency distribution. Text shows mean/p50/p99 (p50 only when
    /// `show_p50`); machine formats get the full summary.
    fn latency(&mut self, key: &str, label: &str, summary: &HistogramSummary, show_p50: bool);

    /// One per-class access-breakdown entry (accesses per request).
    fn class(&mut self, class: TrafficClass, per_request: f64);

    /// A warning line.
    fn warning(&mut self, text: &str);

    /// A machine-only value (raw counters, nested records). Text sinks
    /// ignore these; the default does nothing.
    fn extra(&mut self, _key: &str, _value: Value) {}

    /// The hierarchical cycle-attribution profile, offered once at the end
    /// of the traversal when the run had the profiler enabled. The default
    /// does nothing, so sinks that predate the profiler stay valid.
    fn profile(&mut self, _node: &ProfileNode) {}
}

/// Walks `report` once, streaming it into `sink`.
pub fn emit(report: &RunReport, style: ReportStyle, sink: &mut dyn ReportSink) {
    sink.scalar(
        "workload",
        "workload",
        Value::from(report.workload.as_str()),
        &report.workload,
    );
    sink.scalar(
        "completed",
        "completed",
        Value::from(report.completed),
        &report.completed.to_string(),
    );
    let throughput = report.throughput_mrps();
    sink.scalar(
        "throughput_mrps",
        "throughput",
        Value::from(throughput),
        &format!("{throughput:.2} Mrps"),
    );
    let goodput = report.goodput_ratio();
    sink.scalar(
        "goodput_ratio",
        "goodput ratio",
        Value::from(goodput),
        &format!("{goodput:.3}"),
    );
    let drop_rate = report.drop_rate();
    sink.scalar(
        "drop_rate",
        "drop rate",
        Value::from(drop_rate),
        &format!("{:.4}%", drop_rate * 100.0),
    );
    let gbps = report.memory_bandwidth_gbps();
    sink.scalar(
        "memory_bandwidth_gbps",
        "memory bandwidth",
        Value::from(gbps),
        &format!("{gbps:.2} GB/s"),
    );
    sink.latency(
        "request_latency",
        "request latency",
        &report.request_latency.summary(),
        true,
    );
    if style.dram_latency {
        sink.latency(
            "dram_latency",
            "dram read latency",
            &report.dram_latency.summary(),
            false,
        );
    }
    let apr = report.total_accesses_per_request();
    sink.scalar(
        "accesses_per_request",
        "accesses/request",
        Value::from(apr),
        &format!("{apr:.2}"),
    );
    if style.breakdown {
        for (class, v) in report.accesses_per_request() {
            if v > style.min_class {
                sink.class(class, v);
            }
        }
    }
    if style.sweeper && report.mem.sweep_saved_writebacks > 0 {
        let per = report.mem.sweep_saved_writebacks as f64 / report.completed.max(1) as f64;
        sink.scalar(
            "writebacks_saved_per_request",
            "writebacks saved",
            Value::from(per),
            &format!("{per:.2}/request"),
        );
    }
    if report.timed_out {
        sink.warning("run hit max_cycles before its quota");
    }
    if let Some(check) = &report.check {
        let status = if check.passed() { "pass" } else { "FAIL" };
        sink.scalar(
            "check_status",
            "check",
            Value::from(status),
            &format!(
                "{status} ({} events, {} walks, {} violations)",
                check.events,
                check.walks,
                check.total_violations()
            ),
        );
        for (kind, n) in &check.violations {
            if *n > 0 {
                sink.warning(&format!("check: {n}x {kind}"));
            }
        }
    }

    // Machine-only extras: everything the text report summarizes away.
    sink.extra("offered", Value::from(report.offered));
    sink.extra("dropped", Value::from(report.dropped));
    sink.extra("elapsed_cycles", Value::from(report.elapsed_cycles));
    sink.extra(
        "background_iterations",
        Value::from(report.background_iterations),
    );
    sink.extra("timed_out", Value::from(report.timed_out));
    sink.extra(
        "service_time",
        Value::from(report.service_time.summary().to_record()),
    );
    sink.extra("mem", Value::from(report.mem.to_record()));
    sink.extra(
        "channel_transfers",
        Value::Array(
            report
                .channel_transfers
                .iter()
                .map(|&(r, w)| {
                    Value::from(Record::new().with("reads", r).with("writes", w))
                })
                .collect(),
        ),
    );
    if let Some(check) = &report.check {
        sink.extra("check", Value::from(check.to_record()));
    }
    if let Some(profile) = &report.profile {
        sink.profile(profile);
    }
}

/// Renders `report` as the stable text format.
pub fn text_report(report: &RunReport, style: ReportStyle) -> String {
    let mut sink = TextSink::new();
    emit(report, style, &mut sink);
    sink.finish()
}

/// Renders `report` as a typed [`Record`] (the `"report"` section of the
/// JSON run document).
pub fn json_record(report: &RunReport, style: ReportStyle) -> Record {
    let mut sink = JsonSink::new();
    emit(report, style, &mut sink);
    sink.finish()
}

/// Renders `report` as stable text.
#[deprecated(since = "0.2.0", note = "use `text_report`, or `emit` with a custom sink")]
pub fn render(report: &RunReport, style: ReportStyle) -> String {
    text_report(report, style)
}

/// The stable line-oriented text format.
#[derive(Debug, Default)]
pub struct TextSink {
    out: String,
}

impl TextSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated text.
    pub fn finish(self) -> String {
        self.out
    }

    fn profile_node(&mut self, node: &ProfileNode, depth: usize, requests: f64) {
        let indent = "    ".repeat(depth);
        let _ = writeln!(
            self.out,
            "{indent}{:<14}: {:.0} cyc/req  {:.2} dram/req",
            node.label,
            node.cycles as f64 / requests,
            node.dram_accesses() as f64 / requests,
        );
        for child in &node.children {
            self.profile_node(child, depth + 1, requests);
        }
    }
}

impl ReportSink for TextSink {
    fn scalar(&mut self, _key: &str, label: &str, _value: Value, pretty: &str) {
        let _ = writeln!(self.out, "{label:<20}: {pretty}");
    }

    fn latency(&mut self, _key: &str, label: &str, s: &HistogramSummary, show_p50: bool) {
        if show_p50 {
            let _ = writeln!(
                self.out,
                "{label:<20}: mean {:.0}  p50 {}  p99 {} cycles",
                s.mean, s.p50, s.p99
            );
        } else {
            let _ = writeln!(
                self.out,
                "{label:<20}: mean {:.0}  p99 {} cycles",
                s.mean, s.p99
            );
        }
    }

    fn class(&mut self, class: TrafficClass, per_request: f64) {
        let _ = writeln!(self.out, "    {class:<14}: {per_request:.2}");
    }

    fn warning(&mut self, text: &str) {
        let _ = writeln!(self.out, "{:<20}: {text}", "WARNING");
    }

    fn profile(&mut self, node: &ProfileNode) {
        let _ = writeln!(
            self.out,
            "{:<20}: {} cycles over {} requests",
            "profile", node.cycles, node.count
        );
        let requests = node.count.max(1) as f64;
        for child in &node.children {
            self.profile_node(child, 1, requests);
        }
    }
}

/// Collects the traversal into a typed [`Record`].
///
/// Scalars and extras land in traversal order; the per-class breakdown is
/// gathered into a `"breakdown"` array and warnings into `"warnings"`,
/// both appended at the end so the document shape is fixed.
#[derive(Debug, Default)]
pub struct JsonSink {
    rec: Record,
    breakdown: Vec<Value>,
    warnings: Vec<Value>,
}

impl JsonSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated record.
    pub fn finish(mut self) -> Record {
        self.rec.push("breakdown", Value::Array(self.breakdown));
        self.rec.push("warnings", Value::Array(self.warnings));
        self.rec
    }
}

impl ReportSink for JsonSink {
    fn scalar(&mut self, key: &str, _label: &str, value: Value, _pretty: &str) {
        self.rec.push(key, value);
    }

    fn latency(&mut self, key: &str, _label: &str, s: &HistogramSummary, _show_p50: bool) {
        self.rec.push(key, s.to_record());
    }

    fn class(&mut self, class: TrafficClass, per_request: f64) {
        self.breakdown.push(Value::from(
            Record::new()
                .with("class", class.to_string())
                .with("per_request", per_request),
        ));
    }

    fn warning(&mut self, text: &str) {
        self.warnings.push(Value::from(text));
    }

    fn extra(&mut self, key: &str, value: Value) {
        self.rec.push(key, value);
    }

    fn profile(&mut self, node: &ProfileNode) {
        self.rec.push("profile", node.to_record());
    }
}

/// Flattens the traversal into one wide CSV row.
///
/// Latency summaries expand to `<key>_mean`/`<key>_p50`/`<key>_p99`
/// columns, breakdown classes to `per_request[<class>]` columns; nested
/// extras (records, arrays) are embedded as compact JSON cells.
#[derive(Debug, Default)]
pub struct CsvSink {
    comments: Vec<(String, String)>,
    columns: Vec<(String, Value)>,
    warnings: Vec<String>,
}

impl CsvSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepends `# key: value` manifest comment lines to the output.
    pub fn with_comments(mut self, pairs: &[(String, String)]) -> Self {
        self.comments.extend(pairs.iter().cloned());
        self
    }

    /// The accumulated one-row CSV document.
    pub fn finish(mut self) -> String {
        if !self.warnings.is_empty() {
            let joined = self.warnings.join("; ");
            self.columns.push(("warnings".to_string(), Value::from(joined)));
        }
        let headers: Vec<&str> = self.columns.iter().map(|(k, _)| k.as_str()).collect();
        let mut table = CsvTable::new(&headers).comments(&self.comments);
        table.value_row(self.columns.iter().map(|(_, v)| v.clone()).collect());
        table.to_csv()
    }
}

impl ReportSink for CsvSink {
    fn scalar(&mut self, key: &str, _label: &str, value: Value, _pretty: &str) {
        self.columns.push((key.to_string(), value));
    }

    fn latency(&mut self, key: &str, _label: &str, s: &HistogramSummary, _show_p50: bool) {
        self.columns.push((format!("{key}_mean"), Value::from(s.mean)));
        self.columns.push((format!("{key}_p50"), Value::from(s.p50)));
        self.columns.push((format!("{key}_p99"), Value::from(s.p99)));
    }

    fn class(&mut self, class: TrafficClass, per_request: f64) {
        self.columns
            .push((format!("per_request[{class}]"), Value::from(per_request)));
    }

    fn warning(&mut self, text: &str) {
        self.warnings.push(text.to_string());
    }

    fn extra(&mut self, key: &str, value: Value) {
        self.columns.push((key.to_string(), value));
    }

    fn profile(&mut self, node: &ProfileNode) {
        // One cycle column per stage path, so totals can be checked in a
        // spreadsheet without JSON parsing.
        fn flatten(cols: &mut Vec<(String, Value)>, node: &ProfileNode, path: &str) {
            cols.push((format!("profile_cycles[{path}]"), Value::from(node.cycles)));
            cols.push((
                format!("profile_dram[{path}]"),
                Value::from(node.dram_accesses()),
            ));
            for child in &node.children {
                flatten(cols, child, &format!("{path}.{}", child.label));
            }
        }
        flatten(&mut self.columns, node, &node.label);
    }
}

/// One-line comparison between a baseline and a treatment report
/// ("A/B line"), used by examples.
pub fn compare_line(label: &str, base: &RunReport, treat: &RunReport) -> String {
    format!(
        "{label}: {:.1} → {:.1} Mrps ({:.2}x), {:.1} → {:.1} GB/s",
        base.throughput_mrps(),
        treat.throughput_mrps(),
        treat.throughput_mrps() / base.throughput_mrps().max(1e-9),
        base.memory_bandwidth_gbps(),
        treat.memory_bandwidth_gbps(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use crate::workload::EchoWorkload;

    fn report() -> RunReport {
        Experiment::new(ExperimentConfig::tiny_for_tests(), || {
            EchoWorkload::with_think(100)
        })
        .run_at_rate(1.0e6)
    }

    #[test]
    fn text_contains_all_sections() {
        let r = report();
        let text = text_report(&r, ReportStyle::default());
        for key in [
            "workload",
            "completed",
            "throughput",
            "memory bandwidth",
            "request latency",
            "dram read latency",
            "accesses/request",
        ] {
            assert!(text.contains(key), "missing section '{key}' in:\n{text}");
        }
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn brief_style_omits_details() {
        let r = report();
        let text = text_report(&r, ReportStyle::brief());
        assert!(!text.contains("dram read latency"));
        assert!(text.contains("throughput"));
    }

    #[test]
    #[allow(deprecated)]
    fn render_shim_matches_text_report() {
        let r = report();
        assert_eq!(
            render(&r, ReportStyle::default()),
            text_report(&r, ReportStyle::default())
        );
    }

    #[test]
    fn json_record_carries_text_scalars() {
        let r = report();
        let rec = json_record(&r, ReportStyle::default());
        assert_eq!(rec.get("workload"), Some(&Value::Str(r.workload.clone())));
        assert_eq!(rec.get("completed"), Some(&Value::U64(r.completed)));
        assert_eq!(
            rec.get("throughput_mrps"),
            Some(&Value::F64(r.throughput_mrps()))
        );
        assert!(matches!(rec.get("request_latency"), Some(Value::Record(_))));
        assert!(matches!(rec.get("mem"), Some(Value::Record(_))));
        assert!(matches!(rec.get("breakdown"), Some(Value::Array(_))));
        assert_eq!(rec.get("warnings"), Some(&Value::Array(vec![])));
    }

    #[test]
    fn json_breakdown_matches_style_filter() {
        let r = report();
        let style = ReportStyle::default();
        let rec = json_record(&r, style);
        let Some(Value::Array(breakdown)) = rec.get("breakdown") else {
            panic!("breakdown missing");
        };
        let expected = r
            .accesses_per_request()
            .into_iter()
            .filter(|(_, v)| *v > style.min_class)
            .count();
        assert_eq!(breakdown.len(), expected);
    }

    #[test]
    fn csv_sink_emits_one_row() {
        let r = report();
        let mut sink = CsvSink::new().with_comments(&[("seed".into(), "1".into())]);
        emit(&r, ReportStyle::default(), &mut sink);
        let csv = sink.finish();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# seed: 1");
        assert!(lines[1].starts_with("workload,completed,throughput_mrps"));
        assert_eq!(lines.len(), 3, "comments + header + one data row");
        assert!(lines[1].contains("request_latency_p99"));
    }

    #[test]
    fn profile_reaches_every_sink_with_matching_totals() {
        let r = Experiment::new(ExperimentConfig::tiny_for_tests().profiler(), || {
            EchoWorkload::with_think(100)
        })
        .run_at_rate(1.0e6);
        let profile = r.profile.as_ref().expect("profiler enabled");

        let text = text_report(&r, ReportStyle::default());
        assert!(text.contains(&format!(
            "profile             : {} cycles over {} requests",
            profile.cycles, profile.count
        )));
        assert!(text.contains("nic_dma"));
        assert!(text.contains("service"));

        let rec = json_record(&r, ReportStyle::default());
        let Some(Value::Record(json_profile)) = rec.get("profile") else {
            panic!("profile missing from JSON");
        };
        assert_eq!(json_profile.get("cycles"), Some(&Value::U64(profile.cycles)));

        let mut sink = CsvSink::new();
        emit(&r, ReportStyle::default(), &mut sink);
        let csv = sink.finish();
        assert!(csv.contains("profile_cycles[request]"));
        assert!(csv.contains("profile_cycles[request.service.cpu_read]"));
        assert!(csv.contains(&profile.cycles.to_string()));
    }

    #[test]
    fn text_report_unchanged_without_profiler() {
        let r = report();
        assert!(r.profile.is_none());
        assert!(!text_report(&r, ReportStyle::default()).contains("profile"));
    }

    #[test]
    fn compare_line_formats_ratio() {
        let a = report();
        let b = report();
        let line = compare_line("echo", &a, &b);
        assert!(line.starts_with("echo: "));
        assert!(line.contains("1.00x"));
    }
}
