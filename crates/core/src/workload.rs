//! Workload abstractions: what the simulated cores execute.
//!
//! A [`Workload`] is a networked request handler (the paper's MICA KVS or L3
//! forwarder); a [`BackgroundTenant`] is a non-networked collocated
//! application (the paper's X-Mem, §VI-E).
//!
//! Handlers do not touch the memory system directly. They record their
//! memory-reference *trace* — a sequence of [`Op`]s — into a [`CoreEnv`].
//! The server engine then executes one operation per event, so accesses
//! from all cores (and the NIC) interleave in global simulated time exactly
//! as they would in hardware. Executing whole requests atomically instead
//! would serialize concurrent requests behind each other's DRAM
//! reservations and cap throughput far below the memory system's real
//! capacity.
//!
//! Workload control flow may depend on randomness (drawn from the
//! environment's [`SimRng`]) but not on loaded values — none of the paper's
//! workloads needs value-dependent control flow.

use sweeper_nic::packet::Packet;
use sweeper_sim::addr::Addr;
use sweeper_sim::engine::SimRng;
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::Cycle;

/// One step of a request's memory-reference trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Load `[addr, addr+len)`.
    Read {
        /// Start address.
        addr: Addr,
        /// Length in bytes.
        len: u64,
    },
    /// Store to `[addr, addr+len)` (write-allocate, RFO).
    Write {
        /// Start address.
        addr: Addr,
        /// Length in bytes.
        len: u64,
    },
    /// Pure compute (hashing, parsing, business logic).
    Compute {
        /// Duration in cycles.
        cycles: Cycle,
    },
    /// `relinquish(addr, len)` (§V-A): invalidate the buffer's cache blocks
    /// everywhere without writebacks.
    Sweep {
        /// Start address.
        addr: Addr,
        /// Length in bytes.
        len: u64,
    },
    /// Independent single-block loads issued together (memory-level
    /// parallelism): the latency is the slowest access, not the sum. Used
    /// by tenants like X-Mem whose address streams are data-independent.
    ReadScatter {
        /// One block-sized load per address.
        addrs: Vec<Addr>,
    },
}

/// Executes a recorded trace synchronously against a memory system,
/// returning the elapsed service cycles.
///
/// The server engine executes traces one [`Op`] per event instead; this
/// helper serves unit tests, calibration probes, and simple drivers.
pub fn execute_ops(mem: &mut MemorySystem, core: u16, start: Cycle, ops: &[Op]) -> Cycle {
    let mut elapsed = 0;
    for op in ops {
        elapsed += execute_op(mem, core, start + elapsed, op);
    }
    elapsed
}

/// Executes a single [`Op`] at time `now`, returning its latency.
pub fn execute_op(mem: &mut MemorySystem, core: u16, now: Cycle, op: &Op) -> Cycle {
    match op {
        Op::Read { addr, len } => mem.cpu_read(core, *addr, *len, now).latency,
        Op::Write { addr, len } => mem.cpu_write(core, *addr, *len, now).latency,
        Op::Compute { cycles } => *cycles,
        Op::Sweep { addr, len } => mem.sweep_range(*addr, *len, now),
        Op::ReadScatter { addrs } => mem.cpu_read_scatter(core, addrs, now).latency,
    }
}

/// Convenience driver: records a workload's trace for one packet and
/// executes it immediately against `mem` starting at cycle `start`.
///
/// Returns the transmit action and the elapsed service cycles. The server
/// engine does *not* use this (it interleaves operations across cores); it
/// serves unit tests, calibration probes, and single-core examples.
pub fn drive_packet(
    workload: &mut dyn Workload,
    packet: &Packet,
    mem: &mut MemorySystem,
    rng: &mut SimRng,
    start: Cycle,
) -> (TxAction, Cycle) {
    let mut env = CoreEnv::new(packet.core, rng);
    let action = workload.handle_packet(packet, &mut env);
    let elapsed = execute_ops(mem, packet.core, start, env.ops());
    (action, elapsed)
}

/// What a workload wants transmitted after handling a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxAction {
    /// No response (e.g. one-way ingest).
    None,
    /// Construct a `bytes`-byte response in the core's next TX buffer and
    /// transmit it.
    Reply {
        /// Response payload size in bytes.
        bytes: u64,
    },
    /// Zero-copy receive-to-transmit (§V-D): transmit the (possibly
    /// modified) RX buffer in place. The CPU must *not* relinquish the
    /// buffer — the NIC sweeps it after transmission when Sweeper is on.
    ForwardInPlace,
}

/// Trace recorder handed to a workload while it services one packet.
#[derive(Debug)]
pub struct CoreEnv<'a> {
    core: u16,
    ops: Vec<Op>,
    rng: &'a mut SimRng,
}

impl<'a> CoreEnv<'a> {
    /// Creates an empty environment for `core`.
    pub fn new(core: u16, rng: &'a mut SimRng) -> Self {
        Self {
            core,
            ops: Vec::with_capacity(8),
            rng,
        }
    }

    /// The executing core.
    pub fn core(&self) -> u16 {
        self.core
    }

    /// Records a load of `[addr, addr+len)`.
    pub fn read(&mut self, addr: Addr, len: u64) {
        self.ops.push(Op::Read { addr, len });
    }

    /// Records a batch of independent block loads that overlap in the
    /// memory system (high MLP).
    pub fn read_scatter(&mut self, addrs: Vec<Addr>) {
        self.ops.push(Op::ReadScatter { addrs });
    }

    /// Records a store to `[addr, addr+len)`.
    pub fn write(&mut self, addr: Addr, len: u64) {
        self.ops.push(Op::Write { addr, len });
    }

    /// Records pure compute cycles.
    pub fn compute(&mut self, cycles: Cycle) {
        self.ops.push(Op::Compute { cycles });
    }

    /// Records an explicit `relinquish` (§V-A). The server engine also
    /// issues one automatically after each request when Sweeper is enabled;
    /// this entry point exists for zero-copy stacks and examples that manage
    /// buffer lifetimes themselves.
    pub fn relinquish(&mut self, addr: Addr, len: u64) {
        self.ops.push(Op::Sweep { addr, len });
    }

    /// Deterministic per-run randomness (key popularity, delays, ...).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The trace recorded so far.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consumes the environment, yielding the trace.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }
}

/// A networked request-processing application.
///
/// Implementations must be deterministic given the [`SimRng`] stream they
/// draw from; the server engine constructs one workload instance per run.
pub trait Workload {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Allocates the application's data regions before the run starts.
    fn setup(&mut self, mem: &mut MemorySystem);

    /// Records the trace servicing one received packet; returns what should
    /// be transmitted afterwards.
    fn handle_packet(&mut self, packet: &Packet, env: &mut CoreEnv<'_>) -> TxAction;
}

/// A collocated, non-networked tenant (X-Mem in §VI-E). The engine invokes
/// [`step`](Self::step) back-to-back on each tenant core; completed steps
/// are the tenant's progress metric.
pub trait BackgroundTenant {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Allocates this tenant instance's dataset for `core`.
    fn setup(&mut self, core: u16, mem: &mut MemorySystem);

    /// Records one iteration's trace for `core`. Must make progress
    /// (record at least one cycle-consuming op).
    fn step(&mut self, core: u16, env: &mut CoreEnv<'_>);
}

/// A trivial echo workload: read the packet, think briefly, echo it back.
/// Used by unit tests, doctests, and the quickstart example.
#[derive(Debug, Clone, Default)]
pub struct EchoWorkload {
    /// Pure compute cycles per request.
    pub think_cycles: Cycle,
}

impl EchoWorkload {
    /// Echo with a fixed per-request compute cost.
    pub fn with_think(think_cycles: Cycle) -> Self {
        Self { think_cycles }
    }
}

impl Workload for EchoWorkload {
    fn name(&self) -> &str {
        "echo"
    }

    fn setup(&mut self, _mem: &mut MemorySystem) {}

    fn handle_packet(&mut self, packet: &Packet, env: &mut CoreEnv<'_>) -> TxAction {
        env.read(packet.addr, packet.bytes);
        env.compute(self.think_cycles.max(50));
        TxAction::Reply {
            bytes: packet.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_nic::packet::PacketId;
    use sweeper_sim::addr::RegionKind;
    use sweeper_sim::hierarchy::MachineConfig;

    fn setup() -> (MemorySystem, SimRng) {
        (
            MemorySystem::new(MachineConfig::tiny_for_tests()),
            SimRng::seeded(1),
        )
    }

    #[test]
    fn env_records_ops_in_order() {
        let (_, mut rng) = setup();
        let mut env = CoreEnv::new(3, &mut rng);
        env.read(Addr(64), 128);
        env.compute(100);
        env.write(Addr(256), 64);
        env.relinquish(Addr(64), 128);
        assert_eq!(env.core(), 3);
        assert_eq!(
            env.into_ops(),
            vec![
                Op::Read {
                    addr: Addr(64),
                    len: 128
                },
                Op::Compute { cycles: 100 },
                Op::Write {
                    addr: Addr(256),
                    len: 64
                },
                Op::Sweep {
                    addr: Addr(64),
                    len: 128
                },
            ]
        );
    }

    #[test]
    fn execute_ops_accumulates_latency() {
        let (mut mem, _) = setup();
        let a = mem.address_map_mut().alloc(256, RegionKind::App);
        let ops = [
            Op::Read { addr: a, len: 256 },
            Op::Compute { cycles: 100 },
            Op::Write { addr: a, len: 64 },
        ];
        let elapsed = execute_ops(&mut mem, 0, 1000, &ops);
        // At least the compute plus one cold memory access.
        assert!(elapsed > 100 + mem.config().dram.unloaded_latency());
        // Warm re-execution is much faster.
        let warm = execute_ops(&mut mem, 0, 100_000, &ops);
        assert!(warm < elapsed);
    }

    #[test]
    fn execute_op_sweep_invalidates() {
        let (mut mem, _) = setup();
        let a = mem.address_map_mut().alloc(64, RegionKind::App);
        execute_op(&mut mem, 0, 0, &Op::Write { addr: a, len: 64 });
        let cost = execute_op(&mut mem, 0, 10, &Op::Sweep { addr: a, len: 64 });
        assert_eq!(cost, mem.config().sweep_issue_cost);
        assert!(!mem.resident_anywhere(a.block()));
    }

    #[test]
    fn echo_replies_with_same_size() {
        let (mut mem, mut rng) = setup();
        let rx = mem.address_map_mut().alloc(1024, RegionKind::Rx { core: 0 });
        mem.nic_write(rx, 1024, 0);
        let pkt = Packet {
            id: PacketId(0),
            core: 0,
            bytes: 1024,
            arrival: 0,
            delivered: 0,
            addr: rx,
        };
        let mut wl = EchoWorkload::with_think(200);
        wl.setup(&mut mem);
        let mut env = CoreEnv::new(0, &mut rng);
        let action = wl.handle_packet(&pkt, &mut env);
        assert_eq!(action, TxAction::Reply { bytes: 1024 });
        let ops = env.into_ops();
        assert_eq!(ops.len(), 2);
        let elapsed = execute_ops(&mut mem, 0, 10, &ops);
        assert!(elapsed >= 200);
        assert_eq!(wl.name(), "echo");
    }

    #[test]
    fn env_rng_is_usable() {
        let (_, mut rng) = setup();
        let mut env = CoreEnv::new(1, &mut rng);
        let v = env.rng().next_u64_in(10);
        assert!(v < 10);
        assert!(env.ops().is_empty());
    }
}
