//! Run manifests and machine-readable run documents.
//!
//! The value layer ([`Value`]/[`Record`]/[`CsvTable`], re-exported from
//! `sweeper_sim::telemetry`) knows how to *write* JSON and CSV; this module
//! decides *what* every exported artifact contains:
//!
//! * a [`RunManifest`] — tool name and version, run profile, configuration
//!   summary, workload, seed, and (optionally) wall-clock duration — is
//!   attached to every export so an artifact found on disk identifies the
//!   run that produced it;
//! * document builders wrap a payload section together with its manifest
//!   and a `schema` tag (`sweeper.run-report/1`, `sweeper.timeseries/1`,
//!   `sweeper.fleet/1`, `sweeper.load-sweep/1`);
//! * [`validate_run_document`] checks the run-report shape — the golden
//!   schema test and CI's artifact validation both go through it.
//!
//! Wall-clock time never enters determinism-sensitive sections: fleet
//! documents exclude per-point wall time so `--jobs 1` and `--jobs N`
//! produce byte-identical JSON, and `wall_secs` lives only in the manifest
//! where callers opt in.

pub use sweeper_sim::telemetry::{csv_escape, CsvTable, Record, Value};

use sweeper_sim::span::{perfetto_events, OutlierSnapshot, SpanRing};

use crate::fleet::PointOutcome;
use crate::report::{json_record, ReportStyle};
use crate::server::{RunReport, TimeSeries};

/// Schema tag of single-run report documents.
pub const RUN_REPORT_SCHEMA: &str = "sweeper.run-report/1";
/// Schema tag of time-series documents.
pub const TIMESERIES_SCHEMA: &str = "sweeper.timeseries/1";
/// Schema tag of fleet (multi-point) documents.
pub const FLEET_SCHEMA: &str = "sweeper.fleet/1";
/// Schema tag of load-sweep documents.
pub const LOADSWEEP_SCHEMA: &str = "sweeper.load-sweep/1";
/// Schema tag of figure-table sidecar documents.
pub const FIGURE_TABLE_SCHEMA: &str = "sweeper.figure-table/1";
/// Schema tag of Chrome-trace-event (Perfetto) span exports.
pub const PERFETTO_SCHEMA: &str = "sweeper.perfetto-trace/1";
/// Schema tag of flight-recorder outlier snapshots.
pub const OUTLIER_SCHEMA: &str = "sweeper.outlier/1";
/// Schema tag of correctness-harness (`sweeper check`) documents.
pub const CHECK_SCHEMA: &str = "sweeper.check/1";

/// Export format selected by `--format` across the CLI and the figure
/// binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// A schema-tagged JSON document.
    Json,
    /// CSV with `# key: value` manifest comment lines.
    Csv,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Self::Text),
            "json" => Ok(Self::Json),
            "csv" => Ok(Self::Csv),
            other => Err(format!(
                "unknown format '{other}' (expected text, json, or csv)"
            )),
        }
    }
}

impl std::fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Text => "text",
            Self::Json => "json",
            Self::Csv => "csv",
        })
    }
}

/// The tool version stamped into every manifest: the crate version, with a
/// `+<describe>` suffix when the build provided one via the
/// `SWEEPER_GIT_DESCRIBE` compile-time environment variable (the
/// git-describe convention).
pub fn tool_version() -> String {
    match option_env!("SWEEPER_GIT_DESCRIBE") {
        Some(desc) if !desc.is_empty() => {
            format!("{}+{desc}", env!("CARGO_PKG_VERSION"))
        }
        _ => env!("CARGO_PKG_VERSION").to_string(),
    }
}

/// Identifying metadata attached to every exported artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Producing tool, always `"sweeper"` for this workspace.
    pub tool: String,
    /// Tool version (see [`tool_version`]).
    pub version: String,
    /// Run-length profile name (`full` / `fast` / `smoke`), when known.
    pub profile: Option<String>,
    /// Configuration summary (`ExperimentConfig::summary`-style), when
    /// known.
    pub config: Option<String>,
    /// Workload name, when known.
    pub workload: Option<String>,
    /// Base RNG seed, when known.
    pub seed: Option<u64>,
    /// Host wall-clock duration of the run in seconds. Leave `None` in
    /// documents that must be byte-reproducible.
    pub wall_secs: Option<f64>,
}

impl RunManifest {
    /// A manifest carrying only the tool identity.
    pub fn new() -> Self {
        Self {
            tool: "sweeper".to_string(),
            version: tool_version(),
            profile: None,
            config: None,
            workload: None,
            seed: None,
            wall_secs: None,
        }
    }

    /// Sets the run-length profile name.
    pub fn profile(mut self, profile: impl Into<String>) -> Self {
        self.profile = Some(profile.into());
        self
    }

    /// Sets the configuration summary.
    pub fn config(mut self, config: impl Into<String>) -> Self {
        self.config = Some(config.into());
        self
    }

    /// Sets the workload name.
    pub fn workload(mut self, workload: impl Into<String>) -> Self {
        self.workload = Some(workload.into());
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the wall-clock duration. Documents carrying it are not
    /// byte-reproducible across hosts; omit it where determinism tests
    /// compare bytes.
    pub fn wall_secs(mut self, secs: f64) -> Self {
        self.wall_secs = Some(secs);
        self
    }

    /// Structured export; optional fields are omitted rather than null.
    pub fn to_record(&self) -> Record {
        let mut rec = Record::new()
            .with("tool", self.tool.as_str())
            .with("version", self.version.as_str());
        if let Some(p) = &self.profile {
            rec.push("profile", p.as_str());
        }
        if let Some(c) = &self.config {
            rec.push("config", c.as_str());
        }
        if let Some(w) = &self.workload {
            rec.push("workload", w.as_str());
        }
        if let Some(s) = self.seed {
            rec.push("seed", s);
        }
        if let Some(w) = self.wall_secs {
            rec.push("wall_secs", w);
        }
        rec
    }

    /// The manifest as `# key: value` CSV comment pairs, same field order
    /// as [`RunManifest::to_record`].
    pub fn to_comments(&self) -> Vec<(String, String)> {
        self.to_record()
            .fields()
            .iter()
            .map(|(k, v)| (k.clone(), v.to_cell()))
            .collect()
    }
}

impl Default for RunManifest {
    fn default() -> Self {
        Self::new()
    }
}

/// Wraps a payload section with its schema tag and manifest — the shape
/// every JSON artifact in the workspace shares.
pub fn document(
    schema: &str,
    manifest: &RunManifest,
    section: &str,
    body: impl Into<Value>,
) -> Record {
    Record::new()
        .with("schema", schema)
        .with("manifest", manifest.to_record())
        .with(section, body)
}

/// The JSON document for one run report.
pub fn run_document(report: &RunReport, style: ReportStyle, manifest: &RunManifest) -> Record {
    document(
        RUN_REPORT_SCHEMA,
        manifest,
        "report",
        json_record(report, style),
    )
}

/// The JSON document for one run's sampled time series.
pub fn timeseries_document(timeseries: &TimeSeries, manifest: &RunManifest) -> Record {
    document(
        TIMESERIES_SCHEMA,
        manifest,
        "timeseries",
        timeseries.to_record(),
    )
}

/// The Chrome-trace-event JSON document for one run's retained spans.
///
/// The document is the Trace Event Format's "JSON object" flavor: a
/// top-level `traceEvents` array of `ph: "X"` complete events, which
/// `ui.perfetto.dev` and `chrome://tracing` open directly; the schema tag
/// and manifest ride alongside as ignored extra keys.
pub fn perfetto_document(spans: &SpanRing, manifest: &RunManifest) -> Record {
    Record::new()
        .with("schema", PERFETTO_SCHEMA)
        .with("manifest", manifest.to_record())
        .with("displayTimeUnit", "ns")
        .with("spans_recorded", spans.recorded())
        .with("spans_retained", spans.len() as u64)
        .with("traceEvents", Value::Array(perfetto_events(&spans.events())))
}

/// The JSON document for one flight-recorder outlier snapshot
/// (`results/outliers/<n>.json`).
pub fn outlier_document(snapshot: &OutlierSnapshot, manifest: &RunManifest) -> Record {
    document(OUTLIER_SCHEMA, manifest, "outlier", snapshot.to_record())
}

/// The JSON document for a `sweeper check` validation sweep: one entry per
/// checked configuration, each a record carrying the figure name, the point
/// label, and the run's
/// [`CheckReport`](sweeper_sim::check::CheckReport) record.
pub fn check_document(checks: Vec<Value>, manifest: &RunManifest) -> Record {
    document(CHECK_SCHEMA, manifest, "checks", checks)
}

/// The JSON document for a fleet of point outcomes.
///
/// Per-point wall-clock times are excluded (see [`PointOutcome::to_record`])
/// so the document is byte-identical for any `--jobs` value.
pub fn fleet_document(outcomes: &[PointOutcome], manifest: &RunManifest) -> Record {
    document(
        FLEET_SCHEMA,
        manifest,
        "points",
        outcomes
            .iter()
            .map(|o| Value::from(o.to_record()))
            .collect::<Vec<_>>(),
    )
}

fn expect_str(rec: &Record, key: &str, ctx: &str) -> Result<(), String> {
    match rec.get(key) {
        Some(Value::Str(_)) => Ok(()),
        _ => Err(format!("{ctx} missing string '{key}'")),
    }
}

fn expect_u64(rec: &Record, key: &str, ctx: &str) -> Result<(), String> {
    match rec.get(key) {
        Some(Value::U64(_)) => Ok(()),
        _ => Err(format!("{ctx} missing integer '{key}'")),
    }
}

fn expect_f64(rec: &Record, key: &str, ctx: &str) -> Result<(), String> {
    match rec.get(key) {
        Some(Value::F64(_)) => Ok(()),
        _ => Err(format!("{ctx} missing float '{key}'")),
    }
}

fn expect_record<'a>(rec: &'a Record, key: &str, ctx: &str) -> Result<&'a Record, String> {
    match rec.get(key) {
        Some(Value::Record(inner)) => Ok(inner),
        _ => Err(format!("{ctx} missing record '{key}'")),
    }
}

fn expect_array(rec: &Record, key: &str, ctx: &str) -> Result<(), String> {
    match rec.get(key) {
        Some(Value::Array(_)) => Ok(()),
        _ => Err(format!("{ctx} missing array '{key}'")),
    }
}

fn check_latency_summary(rec: &Record, key: &str) -> Result<(), String> {
    let summary = expect_record(rec, key, "report")?;
    let ctx = format!("report.{key}");
    expect_u64(summary, "count", &ctx)?;
    expect_f64(summary, "mean", &ctx)?;
    for p in ["p50", "p90", "p95", "p99", "p999", "max"] {
        expect_u64(summary, p, &ctx)?;
    }
    Ok(())
}

/// Validates the shape of a run-report document (see [`run_document`]).
///
/// Checks the schema tag, manifest identity fields, and the presence and
/// type of every scalar, latency summary, and section the text report
/// derives from. The golden-schema test and CI artifact validation rely on
/// this being strict about names: a renamed field is a schema break.
pub fn validate_run_document(doc: &Record) -> Result<(), String> {
    match doc.get("schema") {
        Some(Value::Str(s)) if s == RUN_REPORT_SCHEMA => {}
        Some(Value::Str(s)) => {
            return Err(format!("schema '{s}' is not '{RUN_REPORT_SCHEMA}'"));
        }
        _ => return Err("document missing string 'schema'".to_string()),
    }
    let manifest = expect_record(doc, "manifest", "document")?;
    expect_str(manifest, "tool", "manifest")?;
    expect_str(manifest, "version", "manifest")?;

    let report = expect_record(doc, "report", "document")?;
    expect_str(report, "workload", "report")?;
    for key in [
        "completed",
        "offered",
        "dropped",
        "elapsed_cycles",
        "background_iterations",
    ] {
        expect_u64(report, key, "report")?;
    }
    for key in [
        "throughput_mrps",
        "goodput_ratio",
        "drop_rate",
        "memory_bandwidth_gbps",
        "accesses_per_request",
    ] {
        expect_f64(report, key, "report")?;
    }
    if !matches!(report.get("timed_out"), Some(Value::Bool(_))) {
        return Err("report missing bool 'timed_out'".to_string());
    }
    check_latency_summary(report, "request_latency")?;
    check_latency_summary(report, "service_time")?;
    let mem = expect_record(report, "mem", "report")?;
    expect_record(mem, "dram_reads", "report.mem")?;
    expect_record(mem, "dram_writes", "report.mem")?;
    expect_u64(mem, "block_accesses", "report.mem")?;
    expect_array(report, "breakdown", "report")?;
    expect_array(report, "warnings", "report")?;
    expect_array(report, "channel_transfers", "report")?;
    Ok(())
}

/// Validates the shape of a Perfetto trace document (see
/// [`perfetto_document`]): schema tag, manifest identity, and that every
/// trace event carries the Chrome Trace Event Format's required fields.
pub fn validate_perfetto_document(doc: &Record) -> Result<(), String> {
    match doc.get("schema") {
        Some(Value::Str(s)) if s == PERFETTO_SCHEMA => {}
        Some(Value::Str(s)) => {
            return Err(format!("schema '{s}' is not '{PERFETTO_SCHEMA}'"));
        }
        _ => return Err("document missing string 'schema'".to_string()),
    }
    let manifest = expect_record(doc, "manifest", "document")?;
    expect_str(manifest, "tool", "manifest")?;
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        return Err("document missing array 'traceEvents'".to_string());
    };
    for (i, event) in events.iter().enumerate() {
        let Value::Record(event) = event else {
            return Err(format!("traceEvents[{i}] is not a record"));
        };
        let ctx = format!("traceEvents[{i}]");
        expect_str(event, "name", &ctx)?;
        expect_str(event, "ph", &ctx)?;
        expect_f64(event, "ts", &ctx)?;
        expect_f64(event, "dur", &ctx)?;
        expect_u64(event, "pid", &ctx)?;
        expect_u64(event, "tid", &ctx)?;
    }
    Ok(())
}

/// Validates the shape of a flight-recorder outlier document (see
/// [`outlier_document`]).
pub fn validate_outlier_document(doc: &Record) -> Result<(), String> {
    match doc.get("schema") {
        Some(Value::Str(s)) if s == OUTLIER_SCHEMA => {}
        Some(Value::Str(s)) => {
            return Err(format!("schema '{s}' is not '{OUTLIER_SCHEMA}'"));
        }
        _ => return Err("document missing string 'schema'".to_string()),
    }
    let manifest = expect_record(doc, "manifest", "document")?;
    expect_str(manifest, "tool", "manifest")?;
    let outlier = expect_record(doc, "outlier", "document")?;
    for key in ["seq", "trace", "core", "at_cycles", "latency_cycles", "threshold_cycles"] {
        expect_u64(outlier, key, "outlier")?;
    }
    expect_f64(outlier, "quantile", "outlier")?;
    expect_array(outlier, "spans", "outlier")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use crate::workload::EchoWorkload;

    fn report() -> RunReport {
        Experiment::new(ExperimentConfig::tiny_for_tests(), || {
            EchoWorkload::with_think(100)
        })
        .run_at_rate(1.0e6)
    }

    #[test]
    fn manifest_skips_unset_fields() {
        let rec = RunManifest::new().to_record();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.get("tool"), Some(&Value::Str("sweeper".into())));
        assert!(rec.get("wall_secs").is_none());

        let full = RunManifest::new()
            .profile("smoke")
            .config("ddio2 rx=1024")
            .workload("echo")
            .seed(7)
            .wall_secs(1.25)
            .to_record();
        assert_eq!(full.len(), 7);
        assert_eq!(full.get("seed"), Some(&Value::U64(7)));
    }

    #[test]
    fn manifest_comments_mirror_record() {
        let comments = RunManifest::new().profile("fast").seed(3).to_comments();
        assert_eq!(
            comments,
            vec![
                ("tool".to_string(), "sweeper".to_string()),
                ("version".to_string(), tool_version()),
                ("profile".to_string(), "fast".to_string()),
                ("seed".to_string(), "3".to_string()),
            ]
        );
    }

    #[test]
    fn run_document_validates() {
        let doc = run_document(
            &report(),
            ReportStyle::default(),
            &RunManifest::new().workload("echo").seed(1),
        );
        validate_run_document(&doc).expect("document must validate");
    }

    #[test]
    fn validation_rejects_missing_sections() {
        let manifest = RunManifest::new();
        let doc = Record::new().with("schema", RUN_REPORT_SCHEMA);
        assert!(validate_run_document(&doc)
            .unwrap_err()
            .contains("manifest"));

        let doc = Record::new()
            .with("schema", "sweeper.other/1")
            .with("manifest", manifest.to_record());
        assert!(validate_run_document(&doc).unwrap_err().contains("schema"));

        let doc = Record::new()
            .with("schema", RUN_REPORT_SCHEMA)
            .with("manifest", manifest.to_record())
            .with("report", Record::new().with("workload", "echo"));
        assert!(validate_run_document(&doc)
            .unwrap_err()
            .contains("completed"));
    }

    #[test]
    fn timeseries_document_wraps_the_series() {
        let mut cfg = ExperimentConfig::tiny_for_tests()
            .sampling(crate::server::SamplerConfig::every(100_000));
        cfg = cfg.seed(9);
        let r = Experiment::new(cfg, || EchoWorkload::with_think(100)).run_at_rate(1.0e6);
        let ts = r.timeseries.expect("sampling enabled");
        let doc = timeseries_document(&ts, &RunManifest::new().seed(9));
        assert_eq!(
            doc.get("schema"),
            Some(&Value::Str(TIMESERIES_SCHEMA.into()))
        );
        let Some(Value::Record(body)) = doc.get("timeseries") else {
            panic!("missing timeseries section");
        };
        assert_eq!(body.get("every_cycles"), Some(&Value::U64(100_000)));
    }

    #[test]
    fn perfetto_document_validates_and_parses() {
        let cfg = ExperimentConfig::tiny_for_tests().spans(4096);
        let r = Experiment::new(cfg, || EchoWorkload::with_think(100)).run_at_rate(1.0e6);
        let spans = r.spans.expect("spans enabled");
        let doc = perfetto_document(&spans, &RunManifest::new().workload("echo"));
        validate_perfetto_document(&doc).expect("perfetto document must validate");
        let Some(Value::Array(events)) = doc.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        assert_eq!(events.len(), spans.len());
        // The JSON writer must produce strict JSON (python -m json.tool in
        // CI re-checks this end to end).
        assert!(doc.to_json_pretty().starts_with("{\n  \"schema\""));
    }

    #[test]
    fn outlier_document_validates() {
        use crate::server::FlightRecorderConfig;
        let cfg = ExperimentConfig::tiny_for_tests().flight(FlightRecorderConfig {
            quantile: 0.9,
            min_samples: 100,
            window: 64,
            max_snapshots: 2,
        });
        let r = Experiment::new(cfg, || EchoWorkload::with_think(100)).run_at_rate(1.0e6);
        let outliers = r.outliers.expect("flight recorder enabled");
        assert!(!outliers.is_empty());
        let doc = outlier_document(&outliers[0], &RunManifest::new().seed(1));
        validate_outlier_document(&doc).expect("outlier document must validate");
    }

    #[test]
    fn run_document_with_profile_still_validates() {
        let cfg = ExperimentConfig::tiny_for_tests().profiler();
        let r = Experiment::new(cfg, || EchoWorkload::with_think(100)).run_at_rate(1.0e6);
        let doc = run_document(&r, ReportStyle::default(), &RunManifest::new());
        validate_run_document(&doc).expect("profile is an additive field");
        let Some(Value::Record(report)) = doc.get("report") else {
            panic!("report missing");
        };
        assert!(matches!(report.get("profile"), Some(Value::Record(_))));
    }

    #[test]
    fn tool_version_carries_crate_version() {
        assert!(tool_version().starts_with(env!("CARGO_PKG_VERSION")));
    }

    #[test]
    fn output_format_round_trips_through_strings() {
        for fmt in [OutputFormat::Text, OutputFormat::Json, OutputFormat::Csv] {
            assert_eq!(fmt.to_string().parse::<OutputFormat>(), Ok(fmt));
        }
        assert!("yaml".parse::<OutputFormat>().is_err());
        assert_eq!(OutputFormat::default(), OutputFormat::Text);
    }
}
