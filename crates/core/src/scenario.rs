//! Scenario files: plain-text experiment descriptions.
//!
//! Reviewers and operators want experiments as versionable files, not shell
//! one-liners. A scenario file is deliberately minimal — `key = value`
//! lines, `#` comments — so it needs no external parser dependency:
//!
//! ```text
//! # headline point of Figure 5
//! workload   = kvs
//! policy     = ddio
//! ddio_ways  = 2
//! sweeper    = true
//! buffers    = 2048
//! packet     = 1088
//! channels   = 4
//! rate_mrps  = 20
//! ```
//!
//! [`Scenario::parse`] validates keys and values; [`Scenario::to_config`]
//! produces an [`ExperimentConfig`] plus workload selection for the CLI or
//! a driver program.

use std::collections::BTreeMap;

use sweeper_sim::hierarchy::InjectionPolicy;

use crate::experiment::ExperimentConfig;
use crate::server::SweeperMode;

/// Which workload a scenario requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioWorkload {
    /// MICA-style key-value store.
    Kvs,
    /// L3 forwarder network function.
    L3fwd,
    /// The synthetic calibration workload.
    Synthetic,
}

/// A parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Requested workload.
    pub workload: ScenarioWorkload,
    /// Injection policy.
    pub policy: InjectionPolicy,
    /// DDIO ways.
    pub ddio_ways: u32,
    /// Sweeper on/off.
    pub sweeper: SweeperMode,
    /// NIC-driven TX sweeping.
    pub tx_sweep: bool,
    /// RX ring entries per core per endpoint.
    pub buffers: usize,
    /// Endpoints per core.
    pub endpoints: usize,
    /// Packet size in bytes.
    pub packet: u64,
    /// DRAM channels.
    pub channels: usize,
    /// Active cores.
    pub cores: u16,
    /// RNG seed.
    pub seed: u64,
    /// Offered rate in Mrps (for `run`-style drivers).
    pub rate_mrps: f64,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            workload: ScenarioWorkload::Kvs,
            policy: InjectionPolicy::Ddio,
            ddio_ways: 2,
            sweeper: SweeperMode::Disabled,
            tx_sweep: false,
            buffers: 1024,
            endpoints: 1,
            packet: 1088,
            channels: 4,
            cores: 24,
            seed: 0x5eed,
            rate_mrps: 20.0,
        }
    }
}

/// Error describing the offending line of a scenario file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Parses `key = value` text.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line: unknown key, missing `=`, bad
    /// value, or out-of-range number.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut s = Scenario::default();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let err = |message: String| ScenarioError {
                line: line_no,
                message,
            };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected 'key = value'".into()))?;
            let key = key.trim();
            let value = value.trim();
            if let Some(first) = seen.insert(key.to_string(), line_no) {
                return Err(err(format!("duplicate key '{key}' (first at line {first})")));
            }
            match key {
                "workload" => {
                    s.workload = match value {
                        "kvs" => ScenarioWorkload::Kvs,
                        "l3fwd" => ScenarioWorkload::L3fwd,
                        "synthetic" => ScenarioWorkload::Synthetic,
                        other => return Err(err(format!("unknown workload '{other}'"))),
                    }
                }
                "policy" => {
                    s.policy = match value {
                        "dma" => InjectionPolicy::Dma,
                        "ddio" => InjectionPolicy::Ddio,
                        "ideal" => InjectionPolicy::Ideal,
                        other => return Err(err(format!("unknown policy '{other}'"))),
                    }
                }
                "sweeper" => {
                    s.sweeper = match parse_bool(value).map_err(&err)? {
                        true => SweeperMode::Enabled,
                        false => SweeperMode::Disabled,
                    }
                }
                "tx_sweep" => s.tx_sweep = parse_bool(value).map_err(&err)?,
                "ddio_ways" => s.ddio_ways = parse_num(value, 1, 12).map_err(&err)? as u32,
                "buffers" => s.buffers = parse_num(value, 1, 1 << 20).map_err(&err)? as usize,
                "endpoints" => s.endpoints = parse_num(value, 1, 4096).map_err(&err)? as usize,
                "packet" => s.packet = parse_num(value, 64, 1 << 16).map_err(&err)?,
                "channels" => s.channels = parse_num(value, 1, 16).map_err(&err)? as usize,
                "cores" => s.cores = parse_num(value, 1, 64).map_err(&err)? as u16,
                "seed" => s.seed = parse_num(value, 0, u64::MAX).map_err(&err)?,
                "rate_mrps" => {
                    s.rate_mrps = value
                        .parse::<f64>()
                        .ok()
                        .filter(|r| r.is_finite() && *r > 0.0)
                        .ok_or_else(|| err(format!("invalid rate '{value}'")))?
                }
                other => return Err(err(format!("unknown key '{other}'"))),
            }
        }
        Ok(s)
    }

    /// Builds the experiment configuration this scenario describes (run
    /// lengths are the caller's choice).
    pub fn to_config(&self) -> ExperimentConfig {
        ExperimentConfig::paper_default()
            .injection(self.policy)
            .ddio_ways(self.ddio_ways)
            .sweeper(self.sweeper)
            .tx_sweep(self.tx_sweep)
            .rx_buffers_per_core(self.buffers)
            .endpoints_per_core(self.endpoints)
            .packet_bytes(self.packet)
            .channels(self.channels)
            .active_cores(self.cores)
            .seed(self.seed)
    }

    /// Renders the scenario back to parseable text (round-trips through
    /// [`parse`](Self::parse)).
    pub fn to_text(&self) -> String {
        let workload = match self.workload {
            ScenarioWorkload::Kvs => "kvs",
            ScenarioWorkload::L3fwd => "l3fwd",
            ScenarioWorkload::Synthetic => "synthetic",
        };
        let policy = match self.policy {
            InjectionPolicy::Dma => "dma",
            InjectionPolicy::Ddio => "ddio",
            InjectionPolicy::Ideal => "ideal",
        };
        format!(
            "workload = {workload}\npolicy = {policy}\nddio_ways = {}\nsweeper = {}\n\
             tx_sweep = {}\nbuffers = {}\nendpoints = {}\npacket = {}\nchannels = {}\n\
             cores = {}\nseed = {}\nrate_mrps = {}\n",
            self.ddio_ways,
            self.sweeper.is_enabled(),
            self.tx_sweep,
            self.buffers,
            self.endpoints,
            self.packet,
            self.channels,
            self.cores,
            self.seed,
            self.rate_mrps,
        )
    }
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value {
        "true" | "yes" | "on" | "1" => Ok(true),
        "false" | "no" | "off" | "0" => Ok(false),
        other => Err(format!("expected a boolean, got '{other}'")),
    }
}

fn parse_num(value: &str, min: u64, max: u64) -> Result<u64, String> {
    let n: u64 = value
        .parse()
        .map_err(|_| format!("invalid number '{value}'"))?;
    if n < min || n > max {
        return Err(format!("{n} outside [{min}, {max}]"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_scenario() {
        let text = "\
            # headline point\n\
            workload = l3fwd\n\
            policy = ideal   # with a trailing comment\n\
            ddio_ways = 6\n\
            sweeper = yes\n\
            buffers = 2048\n\
            packet = 1024\n\
            channels = 3\n\
            cores = 12\n\
            rate_mrps = 35.5\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.workload, ScenarioWorkload::L3fwd);
        assert_eq!(s.policy, InjectionPolicy::Ideal);
        assert_eq!(s.ddio_ways, 6);
        assert_eq!(s.sweeper, SweeperMode::Enabled);
        assert_eq!(s.buffers, 2048);
        assert_eq!(s.channels, 3);
        assert_eq!(s.cores, 12);
        assert!((s.rate_mrps - 35.5).abs() < 1e-9);
        // Unspecified keys keep defaults.
        assert_eq!(s.endpoints, 1);
        assert_eq!(s.seed, 0x5eed);
    }

    #[test]
    fn empty_text_is_the_default_scenario() {
        assert_eq!(Scenario::parse("").unwrap(), Scenario::default());
        assert_eq!(Scenario::parse("# only comments\n\n").unwrap(), Scenario::default());
    }

    #[test]
    fn round_trips_through_text() {
        let s = Scenario {
            workload: ScenarioWorkload::Synthetic,
            sweeper: SweeperMode::Enabled,
            buffers: 777,
            rate_mrps: 12.25,
            ..Scenario::default()
        };
        let reparsed = Scenario::parse(&s.to_text()).unwrap();
        assert_eq!(reparsed, s);
    }

    #[test]
    fn reports_the_offending_line() {
        let err = Scenario::parse("workload = kvs\nbogus = 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown key"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_out_of_range_and_duplicates() {
        let err = Scenario::parse("ddio_ways = 13\n").unwrap_err();
        assert!(err.message.contains("outside"));
        let err = Scenario::parse("buffers = 64\nbuffers = 128\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
        let err = Scenario::parse("rate_mrps = -3\n").unwrap_err();
        assert!(err.message.contains("invalid rate"));
        let err = Scenario::parse("no-equals-here\n").unwrap_err();
        assert!(err.message.contains("key = value"));
    }

    #[test]
    fn to_config_applies_every_knob() {
        let s = Scenario::parse(
            "policy = dma\nddio_ways = 4\nbuffers = 256\nendpoints = 8\npacket = 512\n\
             channels = 8\ncores = 6\nseed = 42\n",
        )
        .unwrap();
        let cfg = s.to_config();
        assert_eq!(cfg.machine().injection, InjectionPolicy::Dma);
        assert_eq!(cfg.machine().ddio_ways, 4);
        assert_eq!(cfg.machine().dram.channels, 8);
        assert_eq!(cfg.server_config().rx_entries, 256);
        assert_eq!(cfg.server_config().endpoints_per_core, 8);
        assert_eq!(cfg.server_config().packet_bytes, 512);
        assert_eq!(cfg.server_config().active_cores, 6);
        assert_eq!(cfg.server_config().seed, 42);
        // 6 cores x 8 endpoints x 256 entries x 1024B entries.
        assert_eq!(cfg.rx_footprint_bytes(), 6 * 8 * 256 * 1024);
    }
}
