//! Property-based tests for the NIC model: ring FIFO semantics against a
//! reference deque, Poisson arrival statistics, and queue-pair bounds.

use proptest::collection::vec;
use proptest::prelude::*;

use sweeper_nic::packet::{Packet, PacketId};
use sweeper_nic::queue::BoundedQueue;
use sweeper_nic::ring::RxRing;
use sweeper_nic::traffic::PoissonArrivals;
use sweeper_sim::addr::{Addr, AddressMap};
use sweeper_sim::engine::{SimRng, CLOCK_HZ};

fn pkt(id: u64) -> Packet {
    Packet {
        id: PacketId(id),
        core: 0,
        bytes: 64,
        arrival: id,
        delivered: id,
        addr: Addr(0),
    }
}

proptest! {
    /// The RX ring behaves exactly like a bounded FIFO of its capacity, and
    /// every slot address it hands out is within its footprint, aligned to
    /// the entry stride.
    #[test]
    fn ring_is_a_bounded_fifo(capacity in 1usize..32, ops in vec(any::<bool>(), 1..300)) {
        let mut map = AddressMap::new();
        let mut ring = RxRing::new(&mut map, 0, capacity, 256);
        let base = ring.slot_addr(0);
        let mut model = std::collections::VecDeque::new();
        let mut next_id = 0u64;
        for push in ops {
            if push {
                match ring.push(pkt(next_id)) {
                    Some(addr) => {
                        prop_assert!(model.len() < capacity);
                        prop_assert_eq!((addr.0 - base.0) % 256, 0);
                        prop_assert!(addr.0 < base.0 + capacity as u64 * 256);
                        model.push_back(next_id);
                    }
                    None => prop_assert_eq!(model.len(), capacity),
                }
                next_id += 1;
            } else {
                let got = ring.pop().map(|p| p.id.0);
                prop_assert_eq!(got, model.pop_front());
            }
            prop_assert_eq!(ring.occupancy(), model.len());
            prop_assert_eq!(ring.is_empty(), model.is_empty());
            prop_assert_eq!(ring.is_full(), model.len() == capacity);
            prop_assert_eq!(ring.peek().map(|p| p.id.0), model.front().copied());
        }
    }

    /// Poisson arrivals: strictly increasing timestamps whose empirical rate
    /// converges on the configured rate.
    #[test]
    fn poisson_rate_converges(rate_mpps in 1.0f64..200.0, seed in any::<u64>()) {
        let rate = rate_mpps * 1e6;
        let mut gen = PoissonArrivals::new(rate, SimRng::seeded(seed));
        let n = 20_000u64;
        let mut prev = 0;
        for _ in 0..n {
            let t = gen.next_arrival();
            prop_assert!(t >= prev);
            prev = t;
        }
        let observed = n as f64 * CLOCK_HZ as f64 / prev as f64;
        prop_assert!(
            (observed - rate).abs() < rate * 0.05,
            "observed {observed:.0} vs configured {rate:.0}"
        );
    }

    /// Bounded queues never exceed capacity and preserve order.
    #[test]
    fn bounded_queue_is_fifo(capacity in 1usize..16, ops in vec(any::<bool>(), 1..200)) {
        let mut q = BoundedQueue::new(capacity);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u32;
        for push in ops {
            if push {
                match q.push(next) {
                    Ok(()) => {
                        model.push_back(next);
                        prop_assert!(model.len() <= capacity);
                    }
                    Err(v) => {
                        prop_assert_eq!(v, next);
                        prop_assert_eq!(model.len(), capacity);
                    }
                }
                next += 1;
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }
}
