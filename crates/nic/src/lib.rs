//! Scale-Out-NUMA-style NIC model for the Sweeper reproduction.
//!
//! The paper's methodology (§III, Appendix A) extends zSim with "a NIC
//! component implementing the Scale-Out NUMA userspace, hardware-terminated
//! protocol and a traffic generator that injects packets at configurable
//! Poisson arrival rate". This crate provides those pieces:
//!
//! * [`packet`] — packet descriptors,
//! * [`ring`] — per-core receive rings (the RX buffers whose footprint drives
//!   network data leaks),
//! * [`endpoints`] — per-connection (VIA/RDMA-style) receive provisioning,
//!   the §II-C buffer-bloat amplifier,
//! * [`queue`] — memory-mapped Queue Pairs (Work/Completion Queues) with the
//!   [`sweep_buffer`](queue::WqEntry::sweep_buffer) flag of Figure 4,
//! * [`traffic`] — Poisson and keep-queued arrival processes,
//! * [`nic`] — the NIC itself, delivering packets through a
//!   [`MemorySystem`](sweeper_sim::hierarchy::MemorySystem) under the
//!   configured injection policy and transmitting (optionally sweeping) TX
//!   buffers.
//!
//! # Example
//!
//! ```
//! use sweeper_nic::nic::{Nic, NicConfig};
//! use sweeper_sim::hierarchy::{MachineConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
//! let mut nic = Nic::new(NicConfig::per_core(8, 1024, 2), &mut mem);
//! let delivered = nic.deliver(0, 1024, 0, &mut mem).expect("ring not full");
//! let pkt = nic.ring_mut(0).pop().expect("packet queued");
//! assert_eq!(pkt.addr, delivered.addr);
//! ```

pub mod endpoints;
pub mod nic;
pub mod packet;
pub mod queue;
pub mod ring;
pub mod traffic;
