//! Memory-mapped Queue Pairs (Work and Completion Queues).
//!
//! The Scale-Out NUMA protocol (like RDMA) schedules transmissions through a
//! per-core Work Queue and reports completions through a Completion Queue.
//! Sweeper's transmit-path extension (§V-D, Figure 4) adds a single boolean
//! `SweepBuffer` field to the Work Queue entry: when set, the NIC injects
//! sweep messages for the transmit buffer's cache blocks after reading them,
//! so that a zero-copy NF's consumed buffers never leak to memory.

use sweeper_sim::addr::Addr;
use sweeper_sim::Cycle;

use crate::packet::PacketId;

/// One Work Queue entry (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WqEntry {
    /// Destination node (opaque to this model; kept for protocol fidelity).
    pub dest_node: u32,
    /// Queue-pair id at the destination.
    pub qp_id: u32,
    /// Operation length in bytes.
    pub transfer_length: u64,
    /// Source buffer address.
    pub buffer_addr: Addr,
    /// Sweeper's TX-path extension: ask the NIC to sweep the buffer's cache
    /// blocks once transmission completes (§V-D).
    pub sweep_buffer: bool,
    /// The request this transmission answers (for latency accounting).
    pub packet: PacketId,
}

/// One Completion Queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqEntry {
    /// The completed Work Queue entry's packet id.
    pub packet: PacketId,
    /// Cycle at which the NIC finished the transmission.
    pub completed: Cycle,
}

/// A bounded FIFO modelling one memory-mapped queue of a Queue Pair.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends an entry; returns it back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() == self.capacity {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Removes the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }
}

/// A per-core Queue Pair: Work Queue (CPU→NIC) plus Completion Queue
/// (NIC→CPU).
#[derive(Debug, Clone)]
pub struct QueuePair {
    /// Transmissions scheduled by the CPU.
    pub wq: BoundedQueue<WqEntry>,
    /// Completions reported by the NIC.
    pub cq: BoundedQueue<CqEntry>,
}

impl QueuePair {
    /// Creates a queue pair with `depth` entries per queue.
    pub fn new(depth: usize) -> Self {
        Self {
            wq: BoundedQueue::new(depth),
            cq: BoundedQueue::new(depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, sweep: bool) -> WqEntry {
        WqEntry {
            dest_node: 1,
            qp_id: 0,
            transfer_length: 1024,
            buffer_addr: Addr(0x4000),
            sweep_buffer: sweep,
            packet: PacketId(id),
        }
    }

    #[test]
    fn bounded_queue_fifo_and_capacity() {
        let mut q = BoundedQueue::new(2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 1);
        q.push(4).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_pair_round_trip() {
        let mut qp = QueuePair::new(4);
        qp.wq.push(entry(7, true)).unwrap();
        let e = qp.wq.pop().unwrap();
        assert!(e.sweep_buffer);
        qp.cq
            .push(CqEntry {
                packet: e.packet,
                completed: 500,
            })
            .unwrap();
        let c = qp.cq.pop().unwrap();
        assert_eq!(c.packet, PacketId(7));
        assert_eq!(c.completed, 500);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BoundedQueue::<u32>::new(0);
    }
}
