//! Per-core receive rings.
//!
//! Each core owns one RX ring of `entries` fixed-size buffers, matching the
//! paper's per-core provisioning (Appendix A: *B ∈ [512, 2048] network
//! buffers per core*; §VI-F sweeps down to 128). The ring is the unit whose
//! aggregate footprint determines whether network buffers fit in the DDIO
//! ways — the root cause of network data leaks (§II-C).
//!
//! The NIC is the producer (writing arriving packets into successive slots);
//! the CPU is the consumer. A full ring forces a packet drop, which is
//! exactly the shallow-buffering failure mode studied in §VI-F.

use sweeper_sim::addr::{Addr, AddressMap, RegionKind};

use crate::packet::Packet;

/// A fixed-capacity receive ring backed by a contiguous RX buffer region.
#[derive(Debug, Clone)]
pub struct RxRing {
    base: Addr,
    entry_bytes: u64,
    slots: Vec<Option<Packet>>,
    /// Next slot the NIC writes (producer index, monotonically increasing).
    tail: u64,
    /// Next slot the CPU consumes (consumer index).
    head: u64,
}

impl RxRing {
    /// Allocates the ring's buffer region out of `map` for `core` and builds
    /// an empty ring.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `entry_bytes` is zero.
    pub fn new(map: &mut AddressMap, core: u16, entries: usize, entry_bytes: u64) -> Self {
        assert!(entries > 0, "ring must have at least one entry");
        assert!(entry_bytes > 0, "ring entries must be non-empty");
        let base = map.alloc(entries as u64 * entry_bytes, RegionKind::Rx { core });
        Self {
            base,
            entry_bytes,
            slots: vec![None; entries],
            tail: 0,
            head: 0,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of one entry.
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }

    /// Total buffer footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.capacity() as u64 * self.entry_bytes
    }

    /// Packets currently queued (delivered but not yet consumed).
    pub fn occupancy(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether the ring has no free slot.
    pub fn is_full(&self) -> bool {
        self.occupancy() == self.capacity()
    }

    /// Whether no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Base address of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity()`.
    pub fn slot_addr(&self, i: usize) -> Addr {
        assert!(i < self.capacity(), "slot index out of range");
        self.base.offset(i as u64 * self.entry_bytes)
    }

    /// Address the *next* produced packet would be written to, if a slot is
    /// free.
    pub fn next_slot_addr(&self) -> Option<Addr> {
        if self.is_full() {
            None
        } else {
            Some(self.slot_addr((self.tail % self.capacity() as u64) as usize))
        }
    }

    /// Producer side: claims the next slot for `packet`.
    ///
    /// Returns the slot's buffer address, or `None` (packet drop) if the
    /// ring is full. The caller (the NIC) is responsible for performing the
    /// actual memory-system write.
    pub fn push(&mut self, mut packet: Packet) -> Option<Addr> {
        if self.is_full() {
            return None;
        }
        let idx = (self.tail % self.capacity() as u64) as usize;
        let addr = self.slot_addr(idx);
        packet.addr = addr;
        self.slots[idx] = Some(packet);
        self.tail += 1;
        Some(addr)
    }

    /// Consumer side: takes the oldest queued packet.
    ///
    /// Popping frees the slot for NIC reuse; per §V-A, a Sweeper-enabled
    /// stack must `relinquish` the buffer *before* the slot is recycled,
    /// i.e. before enough subsequent `push`es wrap around to it.
    pub fn pop(&mut self) -> Option<Packet> {
        if self.is_empty() {
            return None;
        }
        let idx = (self.head % self.capacity() as u64) as usize;
        self.head += 1;
        self.slots[idx].take()
    }

    /// Oldest queued packet without consuming it.
    pub fn peek(&self) -> Option<&Packet> {
        if self.is_empty() {
            return None;
        }
        self.slots[(self.head % self.capacity() as u64) as usize].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use sweeper_sim::addr::RegionKind;

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            core: 0,
            bytes: 1024,
            arrival: id * 10,
            delivered: id * 10 + 1,
            addr: Addr(0),
        }
    }

    fn ring(entries: usize) -> (AddressMap, RxRing) {
        let mut map = AddressMap::new();
        let r = RxRing::new(&mut map, 0, entries, 1024);
        (map, r)
    }

    #[test]
    fn geometry_and_region() {
        let (map, r) = ring(4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.entry_bytes(), 1024);
        assert_eq!(r.footprint_bytes(), 4096);
        // Every slot classifies as this core's RX region.
        for i in 0..4 {
            assert_eq!(map.classify(r.slot_addr(i)), RegionKind::Rx { core: 0 });
        }
        // Slots are disjoint, stride = entry size.
        assert_eq!(r.slot_addr(1).0 - r.slot_addr(0).0, 1024);
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let (_m, mut r) = ring(2);
        assert!(r.is_empty());
        let a0 = r.push(pkt(0)).unwrap();
        let a1 = r.push(pkt(1)).unwrap();
        assert!(r.is_full());
        assert!(r.push(pkt(2)).is_none(), "full ring drops");
        assert_eq!(r.pop().unwrap().id, PacketId(0));
        // Freed slot 0 is reused by the next push.
        let a2 = r.push(pkt(3)).unwrap();
        assert_eq!(a2, a0);
        assert_eq!(r.pop().unwrap().addr, a1);
        assert_eq!(r.pop().unwrap().id, PacketId(3));
        assert!(r.pop().is_none());
    }

    #[test]
    fn push_rewrites_packet_addr() {
        let (_m, mut r) = ring(4);
        let addr = r.push(pkt(9)).unwrap();
        assert_eq!(r.peek().unwrap().addr, addr);
        assert_ne!(addr, Addr(0));
    }

    #[test]
    fn next_slot_addr_matches_push() {
        let (_m, mut r) = ring(3);
        for i in 0..7 {
            let predicted = r.next_slot_addr().unwrap();
            let actual = r.push(pkt(i)).unwrap();
            assert_eq!(predicted, actual);
            r.pop();
        }
    }

    #[test]
    fn occupancy_tracks() {
        let (_m, mut r) = ring(8);
        for i in 0..5 {
            r.push(pkt(i));
        }
        assert_eq!(r.occupancy(), 5);
        r.pop();
        r.pop();
        assert_eq!(r.occupancy(), 3);
        assert!(!r.is_full());
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "slot index out of range")]
    fn slot_addr_bounds() {
        let (_m, r) = ring(2);
        r.slot_addr(2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let mut map = AddressMap::new();
        RxRing::new(&mut map, 0, 0, 1024);
    }
}
