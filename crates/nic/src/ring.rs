//! Per-core receive rings.
//!
//! Each core owns one RX ring of `entries` fixed-size buffers, matching the
//! paper's per-core provisioning (Appendix A: *B ∈ [512, 2048] network
//! buffers per core*; §VI-F sweeps down to 128). The ring is the unit whose
//! aggregate footprint determines whether network buffers fit in the DDIO
//! ways — the root cause of network data leaks (§II-C).
//!
//! The NIC is the producer (writing arriving packets into successive slots);
//! the CPU is the consumer. A full ring forces a packet drop, which is
//! exactly the shallow-buffering failure mode studied in §VI-F.

use sweeper_sim::addr::{Addr, AddressMap, RegionKind};

use crate::packet::Packet;

/// A fixed-capacity receive ring backed by a contiguous RX buffer region.
#[derive(Debug, Clone)]
pub struct RxRing {
    base: Addr,
    entry_bytes: u64,
    slots: Vec<Option<Packet>>,
    /// Next slot the NIC writes (producer index, monotonically increasing).
    tail: u64,
    /// Next slot the CPU consumes (consumer index).
    head: u64,
    /// Next slot to be returned to the NIC (`recycled ≤ head`). With
    /// immediate recycling (the default) this tracks `head`; with deferred
    /// recycling the consumer returns slots explicitly via
    /// [`RxRing::recycle_one`] once it is done with the buffer — in
    /// particular after any `relinquish` sweep has executed.
    recycled: u64,
    defer_recycle: bool,
}

impl RxRing {
    /// Allocates the ring's buffer region out of `map` for `core` and builds
    /// an empty ring.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `entry_bytes` is zero.
    pub fn new(map: &mut AddressMap, core: u16, entries: usize, entry_bytes: u64) -> Self {
        assert!(entries > 0, "ring must have at least one entry");
        assert!(entry_bytes > 0, "ring entries must be non-empty");
        let base = map.alloc(entries as u64 * entry_bytes, RegionKind::Rx { core });
        Self {
            base,
            entry_bytes,
            slots: vec![None; entries],
            tail: 0,
            head: 0,
            recycled: 0,
            defer_recycle: false,
        }
    }

    /// Switches the ring to deferred recycling: popping a packet no longer
    /// frees its slot for the producer; the consumer must call
    /// [`RxRing::recycle_one`] when it is done with the buffer.
    ///
    /// This models a driver that returns descriptors only after the buffer
    /// has been fully processed. It closes the window where the NIC could
    /// overwrite a popped slot *before* the request's deferred `relinquish`
    /// sweep executed — in which case the sweep would destroy the *new*
    /// packet's live data.
    pub fn set_defer_recycle(&mut self, on: bool) {
        self.defer_recycle = on;
        if !on {
            self.recycled = self.head;
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of one entry.
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }

    /// Total buffer footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.capacity() as u64 * self.entry_bytes
    }

    /// Packets currently queued (delivered but not yet consumed).
    pub fn occupancy(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Popped slots not yet returned to the producer (always zero with
    /// immediate recycling).
    pub fn pending_recycle(&self) -> usize {
        (self.head - self.recycled) as usize
    }

    /// Whether the ring has no free slot. With deferred recycling, popped
    /// but not-yet-recycled slots still count as occupied from the
    /// producer's point of view.
    pub fn is_full(&self) -> bool {
        (self.tail - self.recycled) as usize == self.capacity()
    }

    /// Whether no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Base address of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity()`.
    pub fn slot_addr(&self, i: usize) -> Addr {
        assert!(i < self.capacity(), "slot index out of range");
        self.base.offset(i as u64 * self.entry_bytes)
    }

    /// Address the *next* produced packet would be written to, if a slot is
    /// free.
    pub fn next_slot_addr(&self) -> Option<Addr> {
        if self.is_full() {
            None
        } else {
            Some(self.slot_addr((self.tail % self.capacity() as u64) as usize))
        }
    }

    /// Producer side: claims the next slot for `packet`.
    ///
    /// Returns the slot's buffer address, or `None` (packet drop) if the
    /// ring is full. The caller (the NIC) is responsible for performing the
    /// actual memory-system write.
    pub fn push(&mut self, mut packet: Packet) -> Option<Addr> {
        if self.is_full() {
            return None;
        }
        let idx = (self.tail % self.capacity() as u64) as usize;
        let addr = self.slot_addr(idx);
        packet.addr = addr;
        self.slots[idx] = Some(packet);
        self.tail += 1;
        Some(addr)
    }

    /// Consumer side: takes the oldest queued packet.
    ///
    /// Popping frees the slot for NIC reuse; per §V-A, a Sweeper-enabled
    /// stack must `relinquish` the buffer *before* the slot is recycled,
    /// i.e. before enough subsequent `push`es wrap around to it.
    pub fn pop(&mut self) -> Option<Packet> {
        if self.is_empty() {
            return None;
        }
        let idx = (self.head % self.capacity() as u64) as usize;
        self.head += 1;
        if !self.defer_recycle {
            self.recycled = self.head;
        }
        self.slots[idx].take()
    }

    /// Consumer side (deferred recycling): returns the oldest popped slot to
    /// the producer. Returns `false` if no popped slot is outstanding.
    pub fn recycle_one(&mut self) -> bool {
        if self.recycled < self.head {
            self.recycled += 1;
            true
        } else {
            false
        }
    }

    /// Whether `addr` falls inside this ring's buffer region.
    pub fn contains_addr(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.footprint_bytes()
    }

    /// Verifies the ring's index and slot-occupancy invariants:
    /// `recycled ≤ head ≤ tail ≤ recycled + capacity`, and a slot holds a
    /// packet exactly when its position is inside the `[head, tail)` window.
    pub fn check_consistency(&self) -> Result<(), String> {
        if !(self.recycled <= self.head
            && self.head <= self.tail
            && self.tail <= self.recycled + self.capacity() as u64)
        {
            return Err(format!(
                "ring indices out of order: recycled {} head {} tail {} capacity {}",
                self.recycled,
                self.head,
                self.tail,
                self.capacity()
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let queued = (self.head..self.tail).any(|k| (k % self.capacity() as u64) as usize == i);
            if queued != slot.is_some() {
                return Err(format!(
                    "slot {i} {} but window [head {}, tail {}) says it should {}be",
                    if slot.is_some() { "occupied" } else { "empty" },
                    self.head,
                    self.tail,
                    if queued { "" } else { "not " },
                ));
            }
        }
        Ok(())
    }

    /// Oldest queued packet without consuming it.
    pub fn peek(&self) -> Option<&Packet> {
        if self.is_empty() {
            return None;
        }
        self.slots[(self.head % self.capacity() as u64) as usize].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use sweeper_sim::addr::RegionKind;

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            core: 0,
            bytes: 1024,
            arrival: id * 10,
            delivered: id * 10 + 1,
            addr: Addr(0),
        }
    }

    fn ring(entries: usize) -> (AddressMap, RxRing) {
        let mut map = AddressMap::new();
        let r = RxRing::new(&mut map, 0, entries, 1024);
        (map, r)
    }

    #[test]
    fn geometry_and_region() {
        let (map, r) = ring(4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.entry_bytes(), 1024);
        assert_eq!(r.footprint_bytes(), 4096);
        // Every slot classifies as this core's RX region.
        for i in 0..4 {
            assert_eq!(map.classify(r.slot_addr(i)), RegionKind::Rx { core: 0 });
        }
        // Slots are disjoint, stride = entry size.
        assert_eq!(r.slot_addr(1).0 - r.slot_addr(0).0, 1024);
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let (_m, mut r) = ring(2);
        assert!(r.is_empty());
        let a0 = r.push(pkt(0)).unwrap();
        let a1 = r.push(pkt(1)).unwrap();
        assert!(r.is_full());
        assert!(r.push(pkt(2)).is_none(), "full ring drops");
        assert_eq!(r.pop().unwrap().id, PacketId(0));
        // Freed slot 0 is reused by the next push.
        let a2 = r.push(pkt(3)).unwrap();
        assert_eq!(a2, a0);
        assert_eq!(r.pop().unwrap().addr, a1);
        assert_eq!(r.pop().unwrap().id, PacketId(3));
        assert!(r.pop().is_none());
    }

    #[test]
    fn push_rewrites_packet_addr() {
        let (_m, mut r) = ring(4);
        let addr = r.push(pkt(9)).unwrap();
        assert_eq!(r.peek().unwrap().addr, addr);
        assert_ne!(addr, Addr(0));
    }

    #[test]
    fn next_slot_addr_matches_push() {
        let (_m, mut r) = ring(3);
        for i in 0..7 {
            let predicted = r.next_slot_addr().unwrap();
            let actual = r.push(pkt(i)).unwrap();
            assert_eq!(predicted, actual);
            r.pop();
        }
    }

    #[test]
    fn occupancy_tracks() {
        let (_m, mut r) = ring(8);
        for i in 0..5 {
            r.push(pkt(i));
        }
        assert_eq!(r.occupancy(), 5);
        r.pop();
        r.pop();
        assert_eq!(r.occupancy(), 3);
        assert!(!r.is_full());
        assert!(!r.is_empty());
    }

    #[test]
    fn multi_lap_wraparound_reuses_slot_addresses() {
        let (_m, mut r) = ring(4);
        // Record the slot addresses of the first lap.
        let first_lap: Vec<Addr> = (0..4).map(|i| r.slot_addr(i)).collect();
        let mut produced = 0;
        for lap in 0..5 {
            for (i, expected) in first_lap.iter().enumerate() {
                let predicted = r.next_slot_addr().unwrap();
                let addr = r.push(pkt(produced)).unwrap();
                assert_eq!(predicted, addr, "next_slot_addr must match push");
                assert_eq!(
                    addr, *expected,
                    "lap {lap} slot {i} must reuse the same address"
                );
                produced += 1;
            }
            assert!(r.is_full());
            assert_eq!(r.occupancy(), 4);
            assert!(r.next_slot_addr().is_none());
            // Full-ring drop.
            assert!(r.push(pkt(999)).is_none());
            // Drain fully, in FIFO order, with addresses matching the lap.
            for (i, expected) in first_lap.iter().enumerate() {
                assert_eq!(r.occupancy(), 4 - i);
                let p = r.pop().unwrap();
                assert_eq!(p.addr, *expected);
            }
            assert!(r.is_empty());
            assert_eq!(r.occupancy(), 0);
            r.check_consistency().unwrap();
        }
        assert_eq!(produced, 20);
    }

    #[test]
    fn partial_consume_laps_stay_consistent() {
        // Interleave produce/consume so head and tail wrap at different
        // offsets each lap.
        let (_m, mut r) = ring(3);
        let mut id = 0;
        let mut expected_occupancy = 0usize;
        for _ in 0..10 {
            for _ in 0..2 {
                if r.push(pkt(id)).is_some() {
                    expected_occupancy += 1;
                }
                id += 1;
            }
            if r.pop().is_some() {
                expected_occupancy -= 1;
            }
            assert_eq!(r.occupancy(), expected_occupancy);
            r.check_consistency().unwrap();
        }
    }

    #[test]
    fn deferred_recycle_holds_slots_until_returned() {
        let (_m, mut r) = ring(2);
        r.set_defer_recycle(true);
        let a0 = r.push(pkt(0)).unwrap();
        r.push(pkt(1)).unwrap();
        assert!(r.is_full());
        // Popping no longer frees the slot for the producer.
        assert_eq!(r.pop().unwrap().addr, a0);
        assert_eq!(r.occupancy(), 1);
        assert_eq!(r.pending_recycle(), 1);
        assert!(r.is_full(), "popped slot is still reserved");
        assert!(r.push(pkt(2)).is_none(), "producer must drop");
        assert!(r.next_slot_addr().is_none());
        // Recycling hands exactly that slot back.
        assert!(r.recycle_one());
        assert!(!r.is_full());
        assert_eq!(r.next_slot_addr(), Some(a0));
        assert_eq!(r.push(pkt(3)).unwrap(), a0);
        // Nothing outstanding: recycle_one reports idle.
        assert!(!r.recycle_one());
        r.check_consistency().unwrap();
    }

    #[test]
    fn immediate_recycle_keeps_legacy_semantics() {
        let (_m, mut r) = ring(2);
        r.push(pkt(0)).unwrap();
        r.push(pkt(1)).unwrap();
        r.pop().unwrap();
        assert_eq!(r.pending_recycle(), 0);
        assert!(!r.is_full(), "immediate mode frees the slot at pop");
        r.check_consistency().unwrap();
    }

    #[test]
    fn contains_addr_covers_exactly_the_ring_region() {
        let (_m, r) = ring(2);
        assert!(r.contains_addr(r.slot_addr(0)));
        assert!(r.contains_addr(r.slot_addr(1).offset(1023)));
        assert!(!r.contains_addr(r.slot_addr(1).offset(1024)));
        assert!(!r.contains_addr(Addr(r.slot_addr(0).0 - 1)));
    }

    #[test]
    #[should_panic(expected = "slot index out of range")]
    fn slot_addr_bounds() {
        let (_m, r) = ring(2);
        r.slot_addr(2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let mut map = AddressMap::new();
        RxRing::new(&mut map, 0, 0, 1024);
    }
}
