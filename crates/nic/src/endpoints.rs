//! Per-endpoint receive provisioning (Virtual Interface Architecture).
//!
//! §II-C: userspace stacks allocate a ring per core, but RDMA-style VIA
//! systems go further — "high-performance, synchronization-free reliable
//! communication requires allocating dedicated receive buffers not only per
//! core, but also per communicating endpoint", so "the aggregate size of
//! allocated receive buffers … can be in the range of 100 MB, exceeding the
//! entire LLC capacity of even high-end servers".
//!
//! [`EndpointRings`] models that provisioning: each core owns one RX ring
//! *per remote endpoint*. Arrivals are spread across endpoints by flow hash
//! (each remote peer sends on its own connection); the CPU consumes across
//! its endpoint rings round-robin, oldest-first within each.

use sweeper_sim::addr::AddressMap;
use sweeper_sim::Cycle;

use crate::packet::Packet;
use crate::ring::RxRing;

/// One core's per-endpoint receive rings.
#[derive(Debug, Clone)]
pub struct EndpointRings {
    rings: Vec<RxRing>,
    /// Next endpoint the consumer polls (round-robin fairness).
    next_poll: usize,
}

impl EndpointRings {
    /// Allocates `endpoints` rings of `entries` × `entry_bytes` buffers for
    /// `core`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is zero (ring parameter validation lives in
    /// [`RxRing::new`]).
    pub fn new(
        map: &mut AddressMap,
        core: u16,
        endpoints: usize,
        entries: usize,
        entry_bytes: u64,
    ) -> Self {
        assert!(endpoints > 0, "need at least one endpoint");
        Self {
            rings: (0..endpoints)
                .map(|_| RxRing::new(map, core, entries, entry_bytes))
                .collect(),
            next_poll: 0,
        }
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        self.rings.len()
    }

    /// A specific endpoint's ring.
    pub fn ring(&self, endpoint: usize) -> &RxRing {
        &self.rings[endpoint]
    }

    /// Total buffer footprint across all endpoints, bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.rings.iter().map(|r| r.footprint_bytes()).sum()
    }

    /// Unconsumed packets across all endpoints.
    pub fn occupancy(&self) -> usize {
        self.rings.iter().map(|r| r.occupancy()).sum()
    }

    /// Whether every endpoint ring is full.
    pub fn all_full(&self) -> bool {
        self.rings.iter().all(|r| r.is_full())
    }

    /// Producer side: enqueue `packet` on `endpoint`'s ring; `None` = drop.
    pub fn push(&mut self, endpoint: usize, packet: Packet) -> Option<sweeper_sim::addr::Addr> {
        let idx = endpoint % self.rings.len();
        self.rings[idx].push(packet)
    }

    /// Consumer side: the next packet, polling endpoints round-robin.
    pub fn pop(&mut self) -> Option<Packet> {
        let n = self.rings.len();
        for i in 0..n {
            let idx = (self.next_poll + i) % n;
            if let Some(pkt) = self.rings[idx].pop() {
                self.next_poll = (idx + 1) % n;
                return Some(pkt);
            }
        }
        None
    }

    /// The packet [`pop`](Self::pop) would return, without consuming it.
    pub fn peek(&self) -> Option<&Packet> {
        let n = self.rings.len();
        (0..n)
            .map(|i| (self.next_poll + i) % n)
            .find_map(|idx| self.rings[idx].peek())
    }

    /// The earliest `delivered` time among head packets — the time at which
    /// the consumer can next make progress.
    pub fn earliest_delivery(&self) -> Option<Cycle> {
        self.rings
            .iter()
            .filter_map(|r| r.peek())
            .map(|p| p.delivered)
            .min()
    }

    /// Switches every endpoint ring to deferred slot recycling (see
    /// [`RxRing::set_defer_recycle`]).
    pub fn set_defer_recycle(&mut self, on: bool) {
        for ring in &mut self.rings {
            ring.set_defer_recycle(on);
        }
    }

    /// Consumer side (deferred recycling): returns the oldest popped slot of
    /// the ring whose buffer region contains `addr`. Returns `false` if no
    /// ring contains the address or no popped slot is outstanding there.
    pub fn recycle(&mut self, addr: sweeper_sim::addr::Addr) -> bool {
        self.rings
            .iter_mut()
            .find(|r| r.contains_addr(addr))
            .is_some_and(RxRing::recycle_one)
    }

    /// Verifies every endpoint ring's index and slot invariants (see
    /// [`RxRing::check_consistency`]).
    pub fn check_consistency(&self) -> Result<(), String> {
        for (ep, ring) in self.rings.iter().enumerate() {
            ring.check_consistency()
                .map_err(|e| format!("endpoint {ep}: {e}"))?;
        }
        Ok(())
    }
}

/// Maps a flow identifier (remote peer) onto one of `endpoints` connections.
pub fn endpoint_of_flow(flow: u64, endpoints: usize) -> usize {
    ((flow.wrapping_mul(0xFF51_AFD7_ED55_8CCD) >> 32) % endpoints as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use sweeper_sim::addr::{Addr, RegionKind};

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            core: 0,
            bytes: 64,
            arrival: id * 10,
            delivered: id * 10 + 3,
            addr: Addr(0),
        }
    }

    fn rings(endpoints: usize, entries: usize) -> (AddressMap, EndpointRings) {
        let mut map = AddressMap::new();
        let r = EndpointRings::new(&mut map, 0, endpoints, entries, 128);
        (map, r)
    }

    #[test]
    fn footprint_scales_with_endpoints() {
        let (_, one) = rings(1, 16);
        let (_, many) = rings(8, 16);
        assert_eq!(many.footprint_bytes(), 8 * one.footprint_bytes());
        assert_eq!(many.endpoints(), 8);
    }

    #[test]
    fn rings_are_disjoint_rx_regions() {
        let (map, r) = rings(4, 4);
        for ep in 0..4 {
            let base = r.ring(ep).slot_addr(0);
            assert_eq!(map.classify(base), RegionKind::Rx { core: 0 });
        }
        let bases: std::collections::HashSet<u64> =
            (0..4).map(|ep| r.ring(ep).slot_addr(0).0).collect();
        assert_eq!(bases.len(), 4, "each endpoint has its own buffers");
    }

    #[test]
    fn pop_round_robins_across_endpoints() {
        let (_, mut r) = rings(3, 4);
        // Two packets on endpoint 0, one each on 1 and 2.
        r.push(0, pkt(0));
        r.push(0, pkt(1));
        r.push(1, pkt(2));
        r.push(2, pkt(3));
        let order: Vec<u64> = std::iter::from_fn(|| r.pop().map(|p| p.id.0)).collect();
        // Round-robin: ep0, ep1, ep2, ep0.
        assert_eq!(order, vec![0, 2, 3, 1]);
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let (_, mut r) = rings(2, 4);
        r.push(1, pkt(7));
        let peeked = r.peek().unwrap().id;
        assert_eq!(r.pop().unwrap().id, peeked);
    }

    #[test]
    fn per_endpoint_overflow_drops_even_when_others_are_empty() {
        // The VIA pathology: one hot peer overflows its dedicated ring while
        // the other rings sit idle — buffer bloat without utility.
        let (_, mut r) = rings(4, 2);
        assert!(r.push(0, pkt(0)).is_some());
        assert!(r.push(0, pkt(1)).is_some());
        assert!(r.push(0, pkt(2)).is_none(), "hot endpoint overflows");
        assert!(!r.all_full());
        assert_eq!(r.occupancy(), 2);
    }

    #[test]
    fn earliest_delivery_is_min_over_heads() {
        let (_, mut r) = rings(2, 4);
        r.push(0, pkt(10));
        r.push(1, pkt(4));
        assert_eq!(r.earliest_delivery(), Some(43));
    }

    #[test]
    fn flow_hash_spreads_and_is_stable() {
        let mut seen = std::collections::HashSet::new();
        for flow in 0..1000u64 {
            let ep = endpoint_of_flow(flow, 16);
            assert!(ep < 16);
            assert_eq!(ep, endpoint_of_flow(flow, 16), "stable per flow");
            seen.insert(ep);
        }
        assert_eq!(seen.len(), 16, "all endpoints receive traffic");
    }

    #[test]
    fn recycle_targets_the_ring_owning_the_address() {
        let (_, mut r) = rings(2, 2);
        r.set_defer_recycle(true);
        r.push(0, pkt(0));
        r.push(1, pkt(1));
        let a0 = r.pop().unwrap().addr;
        let a1 = r.pop().unwrap().addr;
        assert_eq!(r.ring(0).pending_recycle(), 1);
        assert_eq!(r.ring(1).pending_recycle(), 1);
        assert!(r.recycle(a1));
        assert_eq!(r.ring(0).pending_recycle(), 1);
        assert_eq!(r.ring(1).pending_recycle(), 0);
        assert!(r.recycle(a0));
        assert!(!r.recycle(a0), "nothing left outstanding");
        assert!(!r.recycle(Addr(1)), "foreign address recycles nothing");
        r.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one endpoint")]
    fn zero_endpoints_rejected() {
        let mut map = AddressMap::new();
        EndpointRings::new(&mut map, 0, 0, 4, 64);
    }
}
