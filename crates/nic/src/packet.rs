//! Packet descriptors.

use sweeper_sim::addr::Addr;
use sweeper_sim::Cycle;

/// A unique, monotonically assigned packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// Descriptor of a packet delivered into an RX ring slot.
///
/// Carries everything the server model needs to account latency (arrival and
/// delivery cycles) and drive the workload (payload size and the buffer
/// address the NIC wrote the packet to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique id (assigned by the traffic generator).
    pub id: PacketId,
    /// Destination core.
    pub core: u16,
    /// Payload size in bytes (the paper uses MTU-bounded 512 B / 1 KB
    /// request packets matching the KVS item size).
    pub bytes: u64,
    /// Cycle at which the packet arrived at the NIC.
    pub arrival: Cycle,
    /// Cycle at which the NIC finished writing it into the RX buffer.
    pub delivered: Cycle,
    /// Base address of the RX buffer slot holding the packet.
    pub addr: Addr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_id_display() {
        assert_eq!(format!("{}", PacketId(7)), "pkt#7");
    }

    #[test]
    fn packet_is_plain_data() {
        let p = Packet {
            id: PacketId(1),
            core: 3,
            bytes: 1024,
            arrival: 100,
            delivered: 120,
            addr: Addr(0x1000),
        };
        let q = p;
        assert_eq!(p, q);
    }
}
