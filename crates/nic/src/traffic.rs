//! Traffic generation: arrival processes and core assignment.
//!
//! The paper's load generator "injects packets at configurable Poisson
//! arrival rate" (Appendix A). For the premature-buffer-eviction studies
//! (§IV-B) the generator is modified to keep each core's RX queue topped up
//! to a batching depth *D*; that mode is [`ArrivalProcess::KeepQueued`] and
//! is driven by the server loop rather than by timestamps.

use sweeper_sim::engine::{SimRng, CLOCK_HZ};
use sweeper_sim::Cycle;

/// How packets arrive at the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate` packets per second, aggregate
    /// over all cores.
    Poisson {
        /// Aggregate packet arrival rate (packets/second).
        rate: f64,
    },
    /// Closed-loop "keep-queued" injection: whenever a core's RX queue holds
    /// fewer than `depth` unconsumed packets, inject immediately (§IV-B's
    /// batching-of-degree-D emulation).
    KeepQueued {
        /// Target unconsumed-packet depth per core.
        depth: usize,
    },
}

/// How arriving packets are spread over cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAssignment {
    /// Strict round-robin (receive-side scaling with perfect balance).
    RoundRobin,
    /// Uniformly random core per packet.
    Random,
}

/// Generates packet arrival times for a Poisson process.
///
/// ```
/// use sweeper_nic::traffic::PoissonArrivals;
/// use sweeper_sim::engine::SimRng;
///
/// let mut gen = PoissonArrivals::new(1_000_000.0, SimRng::seeded(1));
/// let t1 = gen.next_arrival();
/// let t2 = gen.next_arrival();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean_gap_cycles: f64,
    next: f64,
    rng: SimRng,
}

impl PoissonArrivals {
    /// Creates a generator for `rate` packets per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64, rng: SimRng) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        Self {
            mean_gap_cycles: CLOCK_HZ as f64 / rate,
            next: 0.0,
            rng,
        }
    }

    /// Returns the next arrival timestamp (cycles), strictly increasing.
    pub fn next_arrival(&mut self) -> Cycle {
        self.next += self.rng.next_exp(self.mean_gap_cycles).max(f64::MIN_POSITIVE);
        self.next.ceil() as Cycle
    }

    /// The configured mean inter-arrival gap in cycles.
    pub fn mean_gap_cycles(&self) -> f64 {
        self.mean_gap_cycles
    }
}

/// Assigns destination cores to packets.
#[derive(Debug, Clone)]
pub struct CoreAssigner {
    policy: CoreAssignment,
    cores: u16,
    next: u16,
    rng: SimRng,
}

impl CoreAssigner {
    /// Creates an assigner over `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(policy: CoreAssignment, cores: u16, rng: SimRng) -> Self {
        assert!(cores > 0, "need at least one core");
        Self {
            policy,
            cores,
            next: 0,
            rng,
        }
    }

    /// The destination core of the next packet.
    pub fn next_core(&mut self) -> u16 {
        match self.policy {
            CoreAssignment::RoundRobin => {
                let c = self.next;
                self.next = (self.next + 1) % self.cores;
                c
            }
            CoreAssignment::Random => self.rng.next_u64_in(self.cores as u64) as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let rate = 10_000_000.0; // 10 Mpps
        let mut gen = PoissonArrivals::new(rate, SimRng::seeded(3));
        let n = 100_000;
        let mut last = 0;
        for _ in 0..n {
            last = gen.next_arrival();
        }
        let observed_rate = n as f64 * CLOCK_HZ as f64 / last as f64;
        assert!(
            (observed_rate - rate).abs() < rate * 0.02,
            "observed {observed_rate}, wanted {rate}"
        );
    }

    #[test]
    fn poisson_arrivals_strictly_increase() {
        let mut gen = PoissonArrivals::new(1e9, SimRng::seeded(5));
        let mut prev = 0;
        for _ in 0..10_000 {
            let t = gen.next_arrival();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a: Vec<Cycle> = {
            let mut g = PoissonArrivals::new(1e6, SimRng::seeded(11));
            (0..100).map(|_| g.next_arrival()).collect()
        };
        let b: Vec<Cycle> = {
            let mut g = PoissonArrivals::new(1e6, SimRng::seeded(11));
            (0..100).map(|_| g.next_arrival()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        PoissonArrivals::new(0.0, SimRng::seeded(0));
    }

    #[test]
    fn round_robin_covers_all_cores() {
        let mut a = CoreAssigner::new(CoreAssignment::RoundRobin, 3, SimRng::seeded(1));
        let seq: Vec<u16> = (0..7).map(|_| a.next_core()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn random_assignment_stays_in_range_and_covers() {
        let mut a = CoreAssigner::new(CoreAssignment::Random, 4, SimRng::seeded(2));
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let c = a.next_core();
            assert!(c < 4);
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cores should receive packets");
    }

    #[test]
    fn keep_queued_process_is_plain_data() {
        let p = ArrivalProcess::KeepQueued { depth: 250 };
        assert_eq!(p, ArrivalProcess::KeepQueued { depth: 250 });
    }
}
