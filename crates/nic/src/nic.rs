//! The NIC model: packet delivery, transmission, and NIC-driven sweeping.
//!
//! The NIC is integrated (Scale-Out NUMA style, §III) and interacts with the
//! memory system through the injection policy configured on the
//! [`MemorySystem`](MemorySystem): DMA writes to DRAM, DDIO write-allocates
//! into the LLC's DDIO ways, Ideal-DDIO keeps network data in an infinite
//! side cache. On the transmit path the NIC honors the Work Queue entry's
//! `sweep_buffer` flag (§V-D): after reading the buffer it injects sweep
//! messages so the buffer's dirty blocks are dropped without writebacks.

use sweeper_sim::addr::Addr;
use sweeper_sim::hierarchy::MemorySystem;
use sweeper_sim::span::SpanKind;
use sweeper_sim::Cycle;

use crate::endpoints::{endpoint_of_flow, EndpointRings};
use crate::packet::{Packet, PacketId};
use crate::queue::WqEntry;

/// NIC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfig {
    /// RX ring entries per core *per endpoint* (the paper's *B*, 512–2048
    /// typically).
    pub rx_entries: usize,
    /// Bytes per RX buffer entry (≥ max packet size).
    pub buffer_bytes: u64,
    /// Number of cores (one endpoint set each).
    pub cores: u16,
    /// Communicating endpoints per core. 1 models a DPDK-style per-core
    /// ring; larger values model VIA/RDMA per-connection provisioning
    /// (§II-C), multiplying the aggregate buffer footprint.
    pub endpoints_per_core: usize,
}

impl NicConfig {
    /// A single per-core ring (the common DPDK provisioning).
    pub fn per_core(rx_entries: usize, buffer_bytes: u64, cores: u16) -> Self {
        Self {
            rx_entries,
            buffer_bytes,
            cores,
            endpoints_per_core: 1,
        }
    }
}

/// Counters kept by the NIC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Packets successfully written into an RX ring.
    pub delivered: u64,
    /// Packets dropped because the target ring was full.
    pub dropped: u64,
    /// Packets transmitted.
    pub transmitted: u64,
    /// TX buffers swept by the NIC (`sweep_buffer` Work Queue entries).
    pub tx_sweeps: u64,
}

impl NicStats {
    /// Fraction of arriving packets dropped.
    pub fn drop_rate(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// Outcome of a successful delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The packet as enqueued (with its slot address filled in).
    pub packet: Packet,
    /// Buffer address the packet was written to.
    pub addr: Addr,
}

/// The integrated NIC: one RX ring per core plus delivery/transmit logic.
#[derive(Debug, Clone)]
pub struct Nic {
    cfg: NicConfig,
    rings: Vec<EndpointRings>,
    stats: NicStats,
    next_id: u64,
}

impl Nic {
    /// Builds the NIC, allocating each core's RX ring out of the memory
    /// system's address map.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is zero or exceeds the machine's core count.
    pub fn new(cfg: NicConfig, mem: &mut MemorySystem) -> Self {
        assert!(cfg.cores > 0, "NIC needs at least one RX ring");
        assert!(
            (cfg.cores as usize) <= mem.config().cores,
            "more RX rings than cores"
        );
        let rings = (0..cfg.cores)
            .map(|core| {
                EndpointRings::new(
                    mem.address_map_mut(),
                    core,
                    cfg.endpoints_per_core,
                    cfg.rx_entries,
                    cfg.buffer_bytes,
                )
            })
            .collect();
        Self {
            cfg,
            rings,
            stats: NicStats::default(),
            next_id: 0,
        }
    }

    /// The NIC's configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Resets counters (end of warmup). Ring contents are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = NicStats::default();
    }

    /// Aggregate RX buffer footprint across all rings, in bytes
    /// (the paper reports this per experiment, §III).
    pub fn total_rx_footprint(&self) -> u64 {
        self.rings.iter().map(|r| r.footprint_bytes()).sum()
    }

    /// Immutable access to a core's endpoint rings.
    pub fn ring(&self, core: u16) -> &EndpointRings {
        &self.rings[core as usize]
    }

    /// Mutable access to a core's endpoint rings (the CPU side pops from
    /// them).
    pub fn ring_mut(&mut self, core: u16) -> &mut EndpointRings {
        &mut self.rings[core as usize]
    }

    /// Delivers a `bytes`-byte packet for `core` at cycle `now`.
    ///
    /// On success the packet's payload blocks are written through the memory
    /// system under the configured injection policy; `None` means the ring
    /// was full and the packet was dropped.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the ring's entry size.
    pub fn deliver(
        &mut self,
        core: u16,
        bytes: u64,
        now: Cycle,
        mem: &mut MemorySystem,
    ) -> Option<Delivered> {
        assert!(
            bytes <= self.cfg.buffer_bytes,
            "packet larger than an RX buffer entry"
        );
        // Memory backpressure: when writebacks cannot drain, the NIC's DMA
        // engine stalls and the packet lands later.
        let delivered = now + mem.nic_backpressure(now);
        let id = PacketId(self.next_id);
        let packet = Packet {
            id,
            core,
            bytes,
            arrival: now,
            delivered,
            addr: Addr(0),
        };
        let endpoint = endpoint_of_flow(id.0, self.cfg.endpoints_per_core);
        let ring = &mut self.rings[core as usize];
        match ring.push(endpoint, packet) {
            None => {
                self.stats.dropped += 1;
                None
            }
            Some(addr) => {
                self.next_id += 1;
                // The packet's trace id is born here: everything the memory
                // system records for this delivery — and the request's later
                // stages — correlates through it.
                mem.set_span_trace(id.0);
                mem.record_span(SpanKind::NicDma, core, now, delivered);
                mem.nic_write(addr, bytes, delivered);
                self.stats.delivered += 1;
                Some(Delivered {
                    packet: Packet { addr, ..packet },
                    addr,
                })
            }
        }
    }

    /// Executes one Work Queue entry: reads the transmit buffer through the
    /// memory system and, if `sweep_buffer` is set, sweeps it (§V-D).
    pub fn transmit(&mut self, entry: WqEntry, now: Cycle, mem: &mut MemorySystem) {
        mem.set_span_trace(entry.packet.0);
        mem.record_span(SpanKind::Tx, u16::MAX, now, now);
        mem.nic_read(entry.buffer_addr, entry.transfer_length, now);
        self.stats.transmitted += 1;
        if entry.sweep_buffer {
            mem.sweep_range(entry.buffer_addr, entry.transfer_length, now);
            self.stats.tx_sweeps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweeper_sim::hierarchy::{InjectionPolicy, MachineConfig, MemorySystem};
    use sweeper_sim::stats::TrafficClass;

    fn setup(policy: InjectionPolicy, entries: usize) -> (MemorySystem, Nic) {
        let mut mem =
            MemorySystem::new(MachineConfig::tiny_for_tests().with_injection(policy));
        let nic = Nic::new(
            NicConfig::per_core(entries, 1024, 2),
            &mut mem,
        );
        (mem, nic)
    }

    #[test]
    fn delivery_fills_ring_and_memory() {
        let (mut mem, mut nic) = setup(InjectionPolicy::Ddio, 4);
        let d = nic.deliver(0, 1024, 100, &mut mem).unwrap();
        assert_eq!(nic.stats().delivered, 1);
        assert_eq!(d.packet.arrival, 100);
        assert!(mem.resident_anywhere(d.addr.block()));
        let popped = nic.ring_mut(0).pop().unwrap();
        assert_eq!(popped.id, d.packet.id);
        assert_eq!(popped.addr, d.addr);
    }

    #[test]
    fn full_ring_drops() {
        let (mut mem, mut nic) = setup(InjectionPolicy::Ddio, 2);
        assert!(nic.deliver(0, 1024, 0, &mut mem).is_some());
        assert!(nic.deliver(0, 1024, 1, &mut mem).is_some());
        assert!(nic.deliver(0, 1024, 2, &mut mem).is_none());
        assert_eq!(nic.stats().dropped, 1);
        assert!((nic.stats().drop_rate() - 1.0 / 3.0).abs() < 1e-9);
        // The other core's ring is unaffected.
        assert!(nic.deliver(1, 1024, 3, &mut mem).is_some());
    }

    #[test]
    fn packet_ids_are_unique_and_monotone() {
        let (mut mem, mut nic) = setup(InjectionPolicy::Ddio, 8);
        let mut prev = None;
        for i in 0..8 {
            let d = nic.deliver(i % 2, 512, i as u64, &mut mem).unwrap();
            if let Some(p) = prev {
                assert!(d.packet.id > p);
            }
            prev = Some(d.packet.id);
        }
    }

    #[test]
    fn transmit_reads_buffer_and_optionally_sweeps() {
        let (mut mem, mut nic) = setup(InjectionPolicy::Ddio, 4);
        let tx = mem
            .address_map_mut()
            .alloc(1024, sweeper_sim::addr::RegionKind::Tx { core: 0 });
        mem.cpu_write(0, tx, 1024, 0);
        let entry = WqEntry {
            dest_node: 0,
            qp_id: 0,
            transfer_length: 1024,
            buffer_addr: tx,
            sweep_buffer: true,
            packet: PacketId(0),
        };
        nic.transmit(entry, 100, &mut mem);
        assert_eq!(nic.stats().transmitted, 1);
        assert_eq!(nic.stats().tx_sweeps, 1);
        // Buffer fully swept: nothing resident, writebacks saved.
        assert!(!mem.resident_anywhere(tx.block()));
        assert!(mem.stats().sweep_saved_writebacks >= 16);
        assert_eq!(mem.stats().dram_writes[TrafficClass::TxEvct], 0);
    }

    #[test]
    fn transmit_without_sweep_leaves_dirty_buffer() {
        let (mut mem, mut nic) = setup(InjectionPolicy::Ddio, 4);
        let tx = mem
            .address_map_mut()
            .alloc(1024, sweeper_sim::addr::RegionKind::Tx { core: 0 });
        mem.cpu_write(0, tx, 1024, 0);
        let entry = WqEntry {
            dest_node: 0,
            qp_id: 0,
            transfer_length: 1024,
            buffer_addr: tx,
            sweep_buffer: false,
            packet: PacketId(0),
        };
        nic.transmit(entry, 100, &mut mem);
        assert_eq!(nic.stats().tx_sweeps, 0);
        assert!(mem.resident_anywhere(tx.block()));
    }

    #[test]
    fn footprint_reports_aggregate() {
        let (_mem, nic) = setup(InjectionPolicy::Ddio, 4);
        assert_eq!(nic.total_rx_footprint(), 2 * 4 * 1024);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let (mut mem, mut nic) = setup(InjectionPolicy::Ddio, 1);
        nic.deliver(0, 64, 0, &mut mem);
        nic.deliver(0, 64, 1, &mut mem);
        nic.reset_stats();
        assert_eq!(*nic.stats(), NicStats::default());
    }

    #[test]
    #[should_panic(expected = "larger than an RX buffer")]
    fn oversized_packet_rejected() {
        let (mut mem, mut nic) = setup(InjectionPolicy::Ddio, 4);
        nic.deliver(0, 4096, 0, &mut mem);
    }

    #[test]
    #[should_panic(expected = "more RX rings than cores")]
    fn too_many_rings_rejected() {
        let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
        Nic::new(
            NicConfig::per_core(1, 64, 99),
            &mut mem,
        );
    }
}
