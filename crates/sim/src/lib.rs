//! Microarchitectural simulation substrate for the Sweeper reproduction.
//!
//! This crate models the memory system of a many-core server CPU at
//! cache-block granularity, following the methodology of
//! *"Patching up Network Data Leaks with Sweeper"* (MICRO 2022):
//!
//! * a physical [address space](addr) with region classification
//!   (RX rings, TX rings, application data),
//! * [set-associative caches](cache) with way-partitioning support,
//! * a three-level [cache hierarchy](hierarchy) — private L1/L2 per core and a
//!   shared non-inclusive victim LLC — with DDIO-style direct cache access for
//!   NIC traffic and `sweep` (invalidate-without-writeback) support,
//! * a sparse [coherence directory](coherence),
//! * a [DDR4 memory model](dram) with channel/rank/bank timing and queuing,
//! * [statistics](stats) that attribute every DRAM transfer to the traffic
//!   classes used in the paper's figures,
//! * a [structured telemetry layer](telemetry) — a `Value`/`Record` tree
//!   with JSON and CSV writers that every machine-readable artifact in the
//!   workspace serializes through,
//! * [request-level causal spans](span) — typed per-stage spans tagged with
//!   a trace id, a hierarchical cycle-attribution profile, and the
//!   Perfetto-compatible export built on them,
//! * a [correctness harness](check) — a shadow-memory oracle plus on-demand
//!   hierarchy invariant walks, off by default at one branch per hook.
//!
//! # Example
//!
//! ```
//! use sweeper_sim::hierarchy::{MachineConfig, MemorySystem};
//! use sweeper_sim::addr::{Addr, RegionKind};
//!
//! let cfg = MachineConfig::paper_default();
//! let mut mem = MemorySystem::new(cfg);
//! let rx = mem.address_map_mut().alloc(4096, RegionKind::Rx { core: 0 });
//!
//! // The NIC delivers a packet into the LLC (DDIO), then core 0 reads it.
//! mem.nic_write(rx, 1024, 0);
//! let outcome = mem.cpu_read(0, rx, 1024, 100);
//! assert!(outcome.latency > 0);
//! ```
//!
//! Cycle counts use the CPU clock (3.2 GHz in the paper's configuration).

pub mod addr;
pub mod cache;
pub mod check;
pub mod coherence;
pub mod dram;
pub mod engine;
pub mod hierarchy;
pub mod span;
pub mod stats;
pub mod telemetry;
pub mod trace;

/// Simulation time, measured in CPU cycles.
///
/// The paper's simulated CPU runs at 3.2 GHz, so one cycle is 0.3125 ns; the
/// helpers in [`engine`] convert between cycles and wall-clock units.
pub type Cycle = u64;

/// The cache block (line) size in bytes, fixed at 64 B as in Table I.
pub const BLOCK_BYTES: u64 = 64;
