//! Set-associative cache with LRU replacement and way-partitioning.
//!
//! One [`SetAssocCache`] models a single cache level. The DDIO mechanism
//! (§II-A) restricts NIC write-allocations to a subset of LLC ways, and the
//! collocation experiments (§VI-E) partition LLC ways between tenants; both
//! are expressed with a [`WayMask`] passed at insertion time. Lookups always
//! search *all* ways — a block installed under one mask remains visible (and
//! replaceable) regardless of the mask of later operations, which is exactly
//! how Intel CAT/DDIO way masking behaves.

use std::fmt;

use crate::addr::BlockAddr;

/// A bitmask over cache ways; bit `i` set means way `i` may be allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMask(pub u64);

impl WayMask {
    /// Mask allowing every way.
    pub const ALL: WayMask = WayMask(u64::MAX);

    /// Mask of the first `n` ways (`0..n`), e.g. the DDIO ways.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn first(n: u32) -> WayMask {
        assert!(n <= 64, "way masks support at most 64 ways");
        if n == 64 {
            WayMask(u64::MAX)
        } else {
            WayMask((1u64 << n) - 1)
        }
    }

    /// Mask of ways `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > 64`.
    pub fn range(lo: u32, hi: u32) -> WayMask {
        assert!(lo <= hi && hi <= 64, "invalid way range {lo}..{hi}");
        WayMask(WayMask::first(hi).0 & !WayMask::first(lo).0)
    }

    /// Whether way `i` is allowed.
    pub fn allows(self, way: usize) -> bool {
        way < 64 && (self.0 >> way) & 1 == 1
    }

    /// Number of allowed ways (among the first `total` ways).
    pub fn count_in(self, total: usize) -> u32 {
        let cap = if total >= 64 {
            u64::MAX
        } else {
            (1u64 << total) - 1
        };
        (self.0 & cap).count_ones()
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ways:{:#b}", self.0)
    }
}

/// Replacement policy of a cache level.
///
/// LRU is the paper's (and zSim's) default. SRRIP (static re-reference
/// interval prediction, Jaleel et al.) inserts lines with a *distant*
/// re-reference prediction so scan-like streams — e.g. dead network buffers
/// spilling through the LLC — evict each other instead of displacing
/// frequently-reused data. Exposed as an ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the default).
    #[default]
    Lru,
    /// 2-bit static RRIP: insert at RRPV 2, promote to 0 on hit, victimize
    /// at RRPV 3 (aging on demand).
    Srrip,
}

/// Who installed a cache line. Used by the LLC to distinguish NIC-allocated
/// network buffers from CPU-installed lines in occupancy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineOrigin {
    /// Installed by a CPU demand access or a private-cache eviction.
    Cpu,
    /// Write-allocated by the NIC (DDIO).
    Nic,
}

/// Metadata of one resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// The block this line holds.
    pub block: BlockAddr,
    /// Whether the line differs from memory and needs a writeback on
    /// eviction.
    pub dirty: bool,
    /// Who installed the line.
    pub origin: LineOrigin,
}

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line's metadata.
    pub line: Line,
}

/// Geometry of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in CPU cycles.
    pub latency: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a whole power-of-two-free
    /// set count (sets need not be a power of two in this model, but must be
    /// at least 1).
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / crate::BLOCK_BYTES;
        let sets = lines as usize / self.ways;
        assert!(sets >= 1, "cache too small for its associativity");
        sets
    }
}

/// Packed per-way tag word. Layout (LSB first):
///
/// ```text
/// bit 0      present (0 = empty way; an all-zero word is an empty way)
/// bit 1      dirty
/// bit 2      origin (0 = Cpu, 1 = Nic)
/// bits 3..   block address
/// ```
///
/// Packing the residency scan's entire decision state into one `u64` per way
/// keeps a set probe inside one or two host cache lines; the 32-byte
/// `Option<Line>`-plus-LRU slots this replaces spread a 12-way probe across
/// six.
const TAG_PRESENT: u64 = 1;
const TAG_DIRTY: u64 = 1 << 1;
const TAG_NIC: u64 = 1 << 2;
const TAG_FLAG_BITS: u32 = 3;

fn encode_tag(block: BlockAddr, dirty: bool, origin: LineOrigin) -> u64 {
    debug_assert!(block.0 < 1 << (64 - TAG_FLAG_BITS), "block address too large to pack");
    (block.0 << TAG_FLAG_BITS)
        | (if origin == LineOrigin::Nic { TAG_NIC } else { 0 })
        | (if dirty { TAG_DIRTY } else { 0 })
        | TAG_PRESENT
}

fn decode_tag(tag: u64) -> Line {
    Line {
        block: BlockAddr(tag >> TAG_FLAG_BITS),
        dirty: tag & TAG_DIRTY != 0,
        origin: if tag & TAG_NIC != 0 {
            LineOrigin::Nic
        } else {
            LineOrigin::Cpu
        },
    }
}

fn tag_matches(tag: u64, block: BlockAddr) -> bool {
    tag & TAG_PRESENT != 0 && tag >> TAG_FLAG_BITS == block.0
}

/// A single set-associative cache level with LRU replacement.
///
/// Internally a structure-of-arrays: the packed [`encode_tag`] words carry
/// everything a residency scan needs, and the recency stamps
/// (`tick << 2 | rrpv`) live in a parallel array that is only touched on a
/// hit, an insertion, or victim selection. Because every mutation bumps the
/// monotone tick, stamps of occupied ways are unique and comparing the
/// combined word orders ways exactly like comparing the old per-slot `lru`
/// field did.
///
/// ```
/// use sweeper_sim::cache::{CacheGeometry, LineOrigin, SetAssocCache, WayMask};
/// use sweeper_sim::addr::BlockAddr;
///
/// let mut c = SetAssocCache::new(CacheGeometry { size_bytes: 8 * 64, ways: 2, latency: 4 });
/// assert!(c.lookup(BlockAddr(1)).is_none());
/// c.insert(BlockAddr(1), true, LineOrigin::Cpu, WayMask::ALL);
/// assert!(c.lookup(BlockAddr(1)).unwrap().dirty);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: usize,
    tags: Vec<u64>,   // sets * ways, row-major by set; 0 = empty way
    stamps: Vec<u64>, // parallel to `tags`: tick << 2 | rrpv
    tick: u64,
    resident: u64,
    policy: ReplacementPolicy,
}

const STAMP_RRPV_BITS: u32 = 2;
const STAMP_RRPV_MASK: u64 = (1 << STAMP_RRPV_BITS) - 1;

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or exceeds 64, or if the capacity is smaller
    /// than one set.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self::with_policy(geometry, ReplacementPolicy::Lru)
    }

    /// Builds an empty cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SetAssocCache::new`].
    pub fn with_policy(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        assert!(
            geometry.ways >= 1 && geometry.ways <= 64,
            "associativity must be in 1..=64"
        );
        let sets = geometry.sets();
        Self {
            geometry,
            sets,
            tags: vec![0; sets * geometry.ways],
            stamps: vec![3; sets * geometry.ways],
            tick: 0,
            resident: 0,
            policy,
        }
    }

    /// The replacement policy in effect.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.geometry.latency
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        // Fibonacci hashing with the *high* product bits: the low bits of a
        // multiplicative hash are merely a permutation of the low input
        // bits, so power-of-two-strided structures (per-core rings spaced
        // 2^15 blocks apart) would alias onto a handful of set phases and
        // thrash each other. The high bits mix all input bits; zSim
        // similarly hashes LLC set indices.
        let h = block.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % self.sets as u64) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.geometry.ways;
        base..base + self.geometry.ways
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Hints the host CPU to pull the block's set metadata into cache.
    ///
    /// The simulator's tag tables are tens of megabytes probed at
    /// hash-randomized indices, so nearly every set probe is a host
    /// last-level-cache miss. Callers that know the next few blocks they
    /// will touch (range accesses, packet delivery) can issue prefetches up
    /// front and let the host overlap what would otherwise be a serial chain
    /// of misses. Purely a performance hint: no simulated state changes.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        let set = self.set_of(block);
        let base = set * self.geometry.ways;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.tags.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
            // A 20-way set spans three cache lines of tags; grab the tail too.
            let last = base + self.geometry.ways - 1;
            _mm_prefetch(self.tags.as_ptr().add(last).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(self.stamps.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(self.stamps.as_ptr().add(last).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = base;
    }

    /// Looks a block up without updating recency.
    pub fn peek(&self, block: BlockAddr) -> Option<Line> {
        let set = self.set_of(block);
        self.tags[self.slot_range(set)]
            .iter()
            .find(|&&t| tag_matches(t, block))
            .map(|&t| decode_tag(t))
    }

    /// Looks a block up and updates LRU recency; returns the line metadata.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<Line> {
        let set = self.set_of(block);
        let tick = self.bump();
        let range = self.slot_range(set);
        for idx in range {
            let tag = self.tags[idx];
            if tag_matches(tag, block) {
                self.stamps[idx] = tick << STAMP_RRPV_BITS; // rrpv -> 0
                return Some(decode_tag(tag));
            }
        }
        None
    }

    /// Marks a resident block dirty; returns `true` if the block was found.
    pub fn mark_dirty(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        let range = self.slot_range(set);
        for idx in range {
            if tag_matches(self.tags[idx], block) {
                self.tags[idx] |= TAG_DIRTY;
                return true;
            }
        }
        false
    }

    /// Inserts (or updates in place) a block, allocating only within `mask`.
    ///
    /// Returns the line evicted to make room, if any. If the block is already
    /// resident — in *any* way — its metadata is updated in place (dirty is
    /// OR-ed, origin overwritten) and nothing is evicted.
    ///
    /// # Panics
    ///
    /// Panics if `mask` allows none of this cache's ways.
    pub fn insert(
        &mut self,
        block: BlockAddr,
        dirty: bool,
        origin: LineOrigin,
        mask: WayMask,
    ) -> Option<Evicted> {
        assert!(
            mask.count_in(self.geometry.ways) > 0,
            "insertion mask allows no ways"
        );
        let set = self.set_of(block);
        let tick = self.bump();
        let range = self.slot_range(set);
        let insert_rrpv: u64 = match self.policy {
            ReplacementPolicy::Lru => 0,
            ReplacementPolicy::Srrip => 2,
        };

        // First pass over the packed tags only: a residency hit (checked in
        // *every* way, masked or not) and the first free allowed way. The
        // stamps are not touched unless the set turns out to be full.
        let mut free_idx = None;
        for (w, idx) in range.clone().enumerate() {
            let tag = self.tags[idx];
            if tag_matches(tag, block) {
                // Hit: update in place regardless of mask (dirty OR-ed,
                // origin overwritten).
                self.tags[idx] = encode_tag(block, dirty || tag & TAG_DIRTY != 0, origin);
                self.stamps[idx] = tick << STAMP_RRPV_BITS; // rrpv -> 0
                return None;
            }
            if tag & TAG_PRESENT == 0 && free_idx.is_none() && mask.allows(w) {
                free_idx = Some(idx);
            }
        }

        if let Some(idx) = free_idx {
            self.tags[idx] = encode_tag(block, dirty, origin);
            self.stamps[idx] = tick << STAMP_RRPV_BITS | insert_rrpv;
            self.resident += 1;
            return None;
        }

        // Set full within the mask: evict per the replacement policy. Every
        // allowed way is occupied here (the free scan covered them all), and
        // occupied ways carry unique ticks, so comparing the combined
        // `tick << 2 | rrpv` stamps picks the same victim (with the same
        // first-way tie-break) as comparing ticks alone.
        let victim_idx = match self.policy {
            ReplacementPolicy::Lru => {
                let mut lru_idx = None;
                let mut lru_min = u64::MAX;
                for (w, idx) in range.clone().enumerate() {
                    if mask.allows(w) && self.stamps[idx] < lru_min {
                        lru_min = self.stamps[idx];
                        lru_idx = Some(idx);
                    }
                }
                lru_idx.expect("mask allows at least one way")
            }
            ReplacementPolicy::Srrip => loop {
                let distant = range
                    .clone()
                    .enumerate()
                    .filter(|(w, _)| mask.allows(*w))
                    .find(|(_, idx)| self.stamps[*idx] & STAMP_RRPV_MASK >= 3)
                    .map(|(_, idx)| idx);
                if let Some(idx) = distant {
                    break idx;
                }
                // No distant line yet: age every allowed way and rescan.
                // Aging only runs when every allowed rrpv is <= 2, so the
                // 2-bit field cannot overflow.
                for (w, idx) in range.clone().enumerate() {
                    if mask.allows(w) {
                        self.stamps[idx] += 1;
                    }
                }
            },
        };
        let old = decode_tag(self.tags[victim_idx]);
        debug_assert!(self.tags[victim_idx] & TAG_PRESENT != 0, "victim way was occupied");
        self.tags[victim_idx] = encode_tag(block, dirty, origin);
        self.stamps[victim_idx] = tick << STAMP_RRPV_BITS | insert_rrpv;
        Some(Evicted { line: old })
    }

    /// Removes a block; returns its metadata if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Line> {
        let set = self.set_of(block);
        let range = self.slot_range(set);
        for idx in range {
            let tag = self.tags[idx];
            if tag_matches(tag, block) {
                self.tags[idx] = 0;
                self.resident -= 1;
                return Some(decode_tag(tag));
            }
        }
        None
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> u64 {
        self.resident
    }

    /// Number of resident lines with the given origin (O(capacity); intended
    /// for tests and periodic occupancy sampling, not hot paths).
    pub fn resident_by_origin(&self, origin: LineOrigin) -> u64 {
        self.iter_lines().filter(|l| l.origin == origin).count() as u64
    }

    /// Iterates over all resident lines (test/diagnostic helper).
    pub fn iter_lines(&self) -> impl Iterator<Item = Line> + '_ {
        self.tags
            .iter()
            .filter(|&&t| t & TAG_PRESENT != 0)
            .map(|&t| decode_tag(t))
    }

    /// Iterates over all resident lines together with their `(set, way)`
    /// location — lets the correctness harness verify way-mask confinement
    /// (e.g. NIC-origin lines stay inside the DDIO ways).
    pub fn iter_located_lines(&self) -> impl Iterator<Item = (usize, usize, Line)> + '_ {
        let ways = self.geometry.ways;
        self.tags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t & TAG_PRESENT != 0)
            .map(move |(slot, &t)| (slot / ways, slot % ways, decode_tag(t)))
    }

    /// Drops every resident line without any writeback bookkeeping.
    pub fn flush_all(&mut self) {
        self.tags.fill(0);
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 4 ways.
        SetAssocCache::new(CacheGeometry {
            size_bytes: 16 * crate::BLOCK_BYTES,
            ways: 4,
            latency: 4,
        })
    }

    /// Blocks guaranteed to map to the same set.
    fn same_set_blocks(c: &SetAssocCache, n: usize) -> Vec<BlockAddr> {
        let target = c.set_of(BlockAddr(0));
        (0u64..)
            .map(BlockAddr)
            .filter(|b| c.set_of(*b) == target)
            .take(n)
            .collect()
    }

    #[test]
    fn way_mask_first_and_range() {
        assert_eq!(WayMask::first(0).0, 0);
        assert_eq!(WayMask::first(2).0, 0b11);
        assert_eq!(WayMask::first(64), WayMask::ALL);
        assert_eq!(WayMask::range(2, 4).0, 0b1100);
        assert!(WayMask::range(2, 4).allows(3));
        assert!(!WayMask::range(2, 4).allows(1));
        assert_eq!(WayMask::first(6).count_in(12), 6);
        assert_eq!(WayMask::ALL.count_in(12), 12);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn way_mask_first_overflow() {
        WayMask::first(65);
    }

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry {
            size_bytes: 36 * 1024 * 1024,
            ways: 12,
            latency: 35,
        };
        // 36MB / 64B / 12 ways = 49152 sets (Table I LLC).
        assert_eq!(g.sets(), 49_152);
    }

    #[test]
    fn insert_lookup_invalidate() {
        let mut c = small();
        let b = BlockAddr(42);
        assert!(c.lookup(b).is_none());
        assert!(c.insert(b, false, LineOrigin::Cpu, WayMask::ALL).is_none());
        let l = c.lookup(b).unwrap();
        assert!(!l.dirty);
        assert_eq!(l.origin, LineOrigin::Cpu);
        assert!(c.mark_dirty(b));
        assert!(c.lookup(b).unwrap().dirty);
        let inv = c.invalidate(b).unwrap();
        assert!(inv.dirty);
        assert!(c.lookup(b).is_none());
        assert!(!c.mark_dirty(b));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn insert_updates_in_place_on_hit() {
        let mut c = small();
        let b = BlockAddr(7);
        c.insert(b, false, LineOrigin::Cpu, WayMask::ALL);
        // Re-insert dirty via NIC: dirty OR-ed, origin replaced, no eviction.
        assert!(c.insert(b, true, LineOrigin::Nic, WayMask::first(1)).is_none());
        let l = c.peek(b).unwrap();
        assert!(l.dirty);
        assert_eq!(l.origin, LineOrigin::Nic);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        let blocks = same_set_blocks(&c, 5);
        for &b in &blocks[..4] {
            c.insert(b, false, LineOrigin::Cpu, WayMask::ALL);
        }
        // Touch blocks[0] so blocks[1] becomes LRU.
        c.lookup(blocks[0]);
        let ev = c
            .insert(blocks[4], false, LineOrigin::Cpu, WayMask::ALL)
            .expect("set was full");
        assert_eq!(ev.line.block, blocks[1]);
    }

    #[test]
    fn way_mask_restricts_victim_choice() {
        let mut c = small();
        let blocks = same_set_blocks(&c, 6);
        // Fill ways 0..4 in order: blocks[0..4] land in ways 0,1,2,3.
        for &b in &blocks[..4] {
            c.insert(b, true, LineOrigin::Nic, WayMask::ALL);
        }
        // Insert with mask = way 0 only: must evict whatever is in way 0,
        // even though blocks[0] is the overall LRU *and* in way 0 here.
        let ev = c
            .insert(blocks[4], true, LineOrigin::Nic, WayMask::first(1))
            .expect("way 0 occupied");
        assert_eq!(ev.line.block, blocks[0]);
        // blocks[1..4] (ways 1..3) must be untouched.
        for &b in &blocks[1..4] {
            assert!(c.peek(b).is_some(), "{b} should still be resident");
        }
        // A second masked insert evicts the block just placed in way 0.
        let ev2 = c
            .insert(blocks[5], true, LineOrigin::Nic, WayMask::first(1))
            .expect("way 0 occupied");
        assert_eq!(ev2.line.block, blocks[4]);
    }

    #[test]
    fn masked_insert_still_found_by_unmasked_lookup() {
        let mut c = small();
        let b = BlockAddr(99);
        c.insert(b, true, LineOrigin::Nic, WayMask::range(2, 3));
        assert!(c.lookup(b).is_some());
    }

    #[test]
    fn resident_by_origin_counts() {
        let mut c = small();
        c.insert(BlockAddr(1), false, LineOrigin::Cpu, WayMask::ALL);
        c.insert(BlockAddr(2), true, LineOrigin::Nic, WayMask::ALL);
        c.insert(BlockAddr(3), true, LineOrigin::Nic, WayMask::ALL);
        assert_eq!(c.resident_by_origin(LineOrigin::Cpu), 1);
        assert_eq!(c.resident_by_origin(LineOrigin::Nic), 2);
        assert_eq!(c.iter_lines().count(), 3);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.iter_lines().count(), 0);
    }

    #[test]
    #[should_panic(expected = "allows no ways")]
    fn empty_mask_panics() {
        let mut c = small();
        c.insert(BlockAddr(0), false, LineOrigin::Cpu, WayMask(0));
    }

    #[test]
    fn srrip_protects_reused_lines_from_scans() {
        // A hot line that is re-referenced survives a scan of never-reused
        // lines under SRRIP, but is evicted under LRU once the scan exceeds
        // associativity.
        let geometry = CacheGeometry {
            size_bytes: 4 * crate::BLOCK_BYTES,
            ways: 4,
            latency: 1,
        };
        let run = |policy: ReplacementPolicy| {
            let mut c = SetAssocCache::with_policy(geometry, policy);
            let hot = BlockAddr(0);
            c.insert(hot, false, LineOrigin::Cpu, WayMask::ALL);
            c.lookup(hot); // mark as reused (RRPV 0)
            for i in 1..=12u64 {
                c.insert(BlockAddr(i), false, LineOrigin::Cpu, WayMask::ALL);
                c.lookup(hot); // keep re-referencing between scan lines
            }
            c.peek(hot).is_some()
        };
        assert!(run(ReplacementPolicy::Srrip), "SRRIP keeps the hot line");
        assert!(run(ReplacementPolicy::Lru), "LRU also keeps it when touched");
        // Without re-references during the scan, SRRIP still protects the
        // recently-promoted line while LRU evicts it.
        let run_no_touch = |policy: ReplacementPolicy| {
            let mut c = SetAssocCache::with_policy(geometry, policy);
            let hot = BlockAddr(0);
            c.insert(hot, false, LineOrigin::Cpu, WayMask::ALL);
            c.lookup(hot);
            for i in 1..=4u64 {
                c.insert(BlockAddr(i), false, LineOrigin::Cpu, WayMask::ALL);
            }
            c.peek(hot).is_some()
        };
        assert!(run_no_touch(ReplacementPolicy::Srrip));
        assert!(!run_no_touch(ReplacementPolicy::Lru));
    }

    #[test]
    fn srrip_capacity_and_progress() {
        let mut c = SetAssocCache::with_policy(
            CacheGeometry {
                size_bytes: 16 * crate::BLOCK_BYTES,
                ways: 4,
                latency: 1,
            },
            ReplacementPolicy::Srrip,
        );
        for i in 0..10_000u64 {
            c.insert(BlockAddr(i), i % 3 == 0, LineOrigin::Cpu, WayMask::ALL);
            assert!(c.resident_lines() <= 16);
        }
        assert_eq!(c.policy(), ReplacementPolicy::Srrip);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = small();
        for i in 0..10_000u64 {
            c.insert(BlockAddr(i), i % 2 == 0, LineOrigin::Cpu, WayMask::ALL);
            assert!(c.resident_lines() <= 16);
        }
        assert_eq!(c.resident_lines(), 16);
    }
}
