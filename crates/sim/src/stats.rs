//! Measurement infrastructure: traffic attribution and latency histograms.
//!
//! The paper's key diagnostic is the *breakdown of memory accesses per
//! request*, attributed to eight traffic classes (Figures 1c, 2c, 5c, 7b).
//! [`TrafficClass`] reproduces that legend exactly; [`MemStats`] counts DRAM
//! transfers per class; [`Histogram`] records latency distributions for the
//! access-latency CDFs of Figure 6.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::engine::cycles_to_secs;
use crate::telemetry::Record;
use crate::Cycle;

/// Source attribution of a DRAM transfer.
///
/// These are exactly the legend entries of the paper's memory-access
/// breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// NIC writes an incoming packet directly to memory (DMA mode only).
    NicRxWr,
    /// NIC reads a transmit buffer from memory.
    NicTxRd,
    /// CPU read miss on an RX buffer — the signature of a *premature* buffer
    /// eviction.
    CpuRxRd,
    /// CPU reads or write-allocate reads on TX buffers.
    CpuTxRdWr,
    /// CPU reads to anything that is not a network buffer.
    CpuOtherRd,
    /// Dirty eviction (writeback) of an RX-buffer block — the signature of a
    /// *consumed* buffer eviction, the leak class Sweeper eliminates.
    RxEvct,
    /// Dirty eviction of a TX-buffer block.
    TxEvct,
    /// Dirty eviction of application data.
    OtherEvct,
}

impl TrafficClass {
    /// All classes, in the order used by the paper's figure legends.
    pub const ALL: [TrafficClass; 8] = [
        TrafficClass::NicRxWr,
        TrafficClass::NicTxRd,
        TrafficClass::CpuRxRd,
        TrafficClass::CpuTxRdWr,
        TrafficClass::CpuOtherRd,
        TrafficClass::RxEvct,
        TrafficClass::TxEvct,
        TrafficClass::OtherEvct,
    ];

    /// Stable index into [`TrafficClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            TrafficClass::NicRxWr => 0,
            TrafficClass::NicTxRd => 1,
            TrafficClass::CpuRxRd => 2,
            TrafficClass::CpuTxRdWr => 3,
            TrafficClass::CpuOtherRd => 4,
            TrafficClass::RxEvct => 5,
            TrafficClass::TxEvct => 6,
            TrafficClass::OtherEvct => 7,
        }
    }

    /// Short label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::NicRxWr => "NIC RX Wr",
            TrafficClass::NicTxRd => "NIC TX Rd",
            TrafficClass::CpuRxRd => "CPU RX Rd",
            TrafficClass::CpuTxRdWr => "CPU TX Rd/Wr",
            TrafficClass::CpuOtherRd => "CPU Other Rd",
            TrafficClass::RxEvct => "RX Evct",
            TrafficClass::TxEvct => "TX Evct",
            TrafficClass::OtherEvct => "Other Evct",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-[`TrafficClass`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts([u64; 8]);

impl ClassCounts {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments one class by one.
    pub fn bump(&mut self, class: TrafficClass) {
        self.0[class.index()] += 1;
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Per-class counts paired with their class, in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (TrafficClass, u64)> + '_ {
        TrafficClass::ALL.iter().map(move |&c| (c, self.0[c.index()]))
    }

    /// Difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &ClassCounts) -> ClassCounts {
        let mut out = ClassCounts::new();
        for i in 0..8 {
            out.0[i] = self.0[i].saturating_sub(earlier.0[i]);
        }
        out
    }

    /// Structured export keyed by the paper's legend labels, in legend
    /// order.
    pub fn to_record(&self) -> Record {
        let mut rec = Record::new();
        for (class, n) in self.iter() {
            rec.push(class.label(), n);
        }
        rec
    }
}

impl Index<TrafficClass> for ClassCounts {
    type Output = u64;
    fn index(&self, class: TrafficClass) -> &u64 {
        &self.0[class.index()]
    }
}

impl IndexMut<TrafficClass> for ClassCounts {
    fn index_mut(&mut self, class: TrafficClass) -> &mut u64 {
        &mut self.0[class.index()]
    }
}

/// Aggregate memory-system statistics.
///
/// Counts every DRAM transfer (64 B each) with its attribution, plus cache
/// event counters that the unit tests and ablation studies rely on.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// DRAM reads per traffic class.
    pub dram_reads: ClassCounts,
    /// DRAM writes per traffic class.
    pub dram_writes: ClassCounts,
    /// LLC hits observed by CPU demand accesses.
    pub llc_hits: u64,
    /// LLC misses observed by CPU demand accesses.
    pub llc_misses: u64,
    /// NIC DDIO writes that hit an LLC-resident block (write-update).
    pub ddio_hits: u64,
    /// NIC DDIO writes that write-allocated a new LLC block.
    pub ddio_allocs: u64,
    /// Cache blocks invalidated by `sweep` messages.
    pub swept_blocks: u64,
    /// Dirty blocks whose writeback a `sweep` suppressed — memory bandwidth
    /// directly conserved by Sweeper.
    pub sweep_saved_writebacks: u64,
    /// Coherence invalidations sent to private caches.
    pub invalidations: u64,
    /// Cache-to-cache transfers (dirty data forwarded between cores).
    pub c2c_transfers: u64,
    /// Dirty private copies discarded because the NIC fully overwrote the
    /// block (safe by construction — the data was dead).
    pub dirty_dropped_by_nic_overwrite: u64,
    /// Dirty data discarded anywhere else (would indicate a modelling bug;
    /// asserted zero by the conservation tests).
    pub dirty_dropped_unexpectedly: u64,
    /// Dirty NIC-origin LLC lines evicted by NIC write-allocations.
    pub nic_lines_evicted_by_nic: u64,
    /// Dirty NIC-origin LLC lines evicted by CPU-side spills (the §VI-C
    /// "runaway"/contention path).
    pub nic_lines_evicted_by_cpu: u64,
    /// Demand DRAM reads per requesting core (grown on demand) — the
    /// per-tenant bandwidth attribution used in collocation studies.
    pub dram_reads_by_core: Vec<u64>,
    /// Simulated block-granularity memory operations processed (CPU block
    /// accesses, NIC block reads/writes, sweeps, flushes). The denominator
    /// of the simulator's own *host* throughput metric (`BENCH_sim.json`:
    /// simulated accesses per wall-clock second).
    pub block_accesses: u64,
}

impl MemStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes one demand DRAM read to `core`.
    pub fn note_core_dram_read(&mut self, core: u16) {
        let idx = core as usize;
        if self.dram_reads_by_core.len() <= idx {
            self.dram_reads_by_core.resize(idx + 1, 0);
        }
        self.dram_reads_by_core[idx] += 1;
    }

    /// Demand DRAM reads attributed to `core`.
    pub fn core_dram_reads(&self, core: u16) -> u64 {
        self.dram_reads_by_core
            .get(core as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Total DRAM transfers (reads + writes).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_reads.total() + self.dram_writes.total()
    }

    /// Total bytes moved to/from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_accesses() * crate::BLOCK_BYTES
    }

    /// Average DRAM bandwidth in GB/s over `elapsed` cycles.
    pub fn bandwidth_gbps(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.dram_bytes() as f64 / cycles_to_secs(elapsed) / 1e9
    }

    /// Combined read+write counts per class.
    pub fn combined(&self) -> ClassCounts {
        let mut out = ClassCounts::new();
        for (c, n) in self.dram_reads.iter() {
            out[c] += n;
        }
        for (c, n) in self.dram_writes.iter() {
            out[c] += n;
        }
        out
    }

    /// Structured export of every counter, for the telemetry layer.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("dram_reads", self.dram_reads.to_record())
            .with("dram_writes", self.dram_writes.to_record())
            .with("llc_hits", self.llc_hits)
            .with("llc_misses", self.llc_misses)
            .with("ddio_hits", self.ddio_hits)
            .with("ddio_allocs", self.ddio_allocs)
            .with("swept_blocks", self.swept_blocks)
            .with("sweep_saved_writebacks", self.sweep_saved_writebacks)
            .with("invalidations", self.invalidations)
            .with("c2c_transfers", self.c2c_transfers)
            .with(
                "dirty_dropped_by_nic_overwrite",
                self.dirty_dropped_by_nic_overwrite,
            )
            .with("dirty_dropped_unexpectedly", self.dirty_dropped_unexpectedly)
            .with("nic_lines_evicted_by_nic", self.nic_lines_evicted_by_nic)
            .with("nic_lines_evicted_by_cpu", self.nic_lines_evicted_by_cpu)
            .with(
                "dram_reads_by_core",
                self.dram_reads_by_core
                    .iter()
                    .map(|&n| crate::telemetry::Value::U64(n))
                    .collect::<Vec<_>>(),
            )
            .with("block_accesses", self.block_accesses)
    }
}

/// A log-linear latency histogram (HDR-style).
///
/// Buckets grow geometrically, giving ~3% relative precision across the whole
/// range of memory latencies (tens to tens of thousands of cycles) with a
/// small, fixed footprint. Used for the DRAM access-latency CDFs of Figure 6
/// and for request-latency SLO checks.
///
/// ```
/// use sweeper_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 10);
/// assert!(h.percentile(0.5) >= 50 && h.percentile(0.5) <= 60);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Linear buckets of width 1 for values < LINEAR_MAX.
    linear: Vec<u32>,
    /// Geometric buckets above LINEAR_MAX.
    geo: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

const LINEAR_MAX: u64 = 1024;
const GEO_BUCKETS_PER_OCTAVE: u64 = 32;

fn geo_bucket(v: u64) -> usize {
    // v >= LINEAR_MAX here. Bucket = octaves above LINEAR_MAX, subdivided.
    let lz = 63 - v.leading_zeros() as u64; // floor(log2 v), >= 10
    let octave = lz - 10;
    let frac = (v >> (lz.saturating_sub(5))) & 0x1f; // top 5 fractional bits
    (octave * GEO_BUCKETS_PER_OCTAVE + frac) as usize
}

fn geo_bucket_low(bucket: usize) -> u64 {
    let octave = bucket as u64 / GEO_BUCKETS_PER_OCTAVE;
    let frac = bucket as u64 % GEO_BUCKETS_PER_OCTAVE;
    let base = LINEAR_MAX << octave;
    base + (base / GEO_BUCKETS_PER_OCTAVE) * frac
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            linear: vec![0; LINEAR_MAX as usize],
            geo: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        if value < LINEAR_MAX {
            self.linear[value as usize] += 1;
        } else {
            let b = geo_bucket(value);
            if b >= self.geo.len() {
                self.geo.resize(b + 1, 0);
            }
            self.geo[b] += 1;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (lower-bound estimate).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (v, &n) in self.linear.iter().enumerate() {
            seen += n as u64;
            if seen >= target {
                return v as u64;
            }
        }
        for (b, &n) in self.geo.iter().enumerate() {
            seen += n;
            if seen >= target {
                return geo_bucket_low(b);
            }
        }
        self.max
    }

    /// CDF points `(value, cumulative_fraction)` for plotting, skipping empty
    /// buckets.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (v, &n) in self.linear.iter().enumerate() {
            if n > 0 {
                seen += n as u64;
                out.push((v as u64, seen as f64 / self.count as f64));
            }
        }
        for (b, &n) in self.geo.iter().enumerate() {
            if n > 0 {
                seen += n;
                out.push((geo_bucket_low(b), seen as f64 / self.count as f64));
            }
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, &n) in other.linear.iter().enumerate() {
            self.linear[v] += n;
        }
        if other.geo.len() > self.geo.len() {
            self.geo.resize(other.geo.len(), 0);
        }
        for (b, &n) in other.geo.iter().enumerate() {
            self.geo[b] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.linear.fill(0);
        self.geo.fill(0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// The unified read API: one fixed set of percentile summaries shared
    /// by the report sinks, the figures, and the telemetry exports, so
    /// every consumer reads the same quantiles.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(0.5),
            p90: self.percentile(0.9),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max,
        }
    }
}

/// The fixed percentile summary of a [`Histogram`] (see
/// [`Histogram::summary`]). All latencies are in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean of recorded samples (0 if empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl HistogramSummary {
    /// Structured export for the telemetry layer.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("count", self.count)
            .with("mean", self.mean)
            .with("p50", self.p50)
            .with("p90", self.p90)
            .with("p95", self.p95)
            .with("p99", self.p99)
            .with("p999", self.p999)
            .with("max", self.max)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_round_trips() {
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn class_labels_match_paper_legend() {
        assert_eq!(TrafficClass::NicRxWr.label(), "NIC RX Wr");
        assert_eq!(TrafficClass::RxEvct.label(), "RX Evct");
        assert_eq!(TrafficClass::CpuTxRdWr.label(), "CPU TX Rd/Wr");
        assert_eq!(format!("{}", TrafficClass::OtherEvct), "Other Evct");
    }

    #[test]
    fn class_counts_bump_and_total() {
        let mut c = ClassCounts::new();
        c.bump(TrafficClass::RxEvct);
        c.bump(TrafficClass::RxEvct);
        c.bump(TrafficClass::NicTxRd);
        assert_eq!(c[TrafficClass::RxEvct], 2);
        assert_eq!(c[TrafficClass::NicTxRd], 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn class_counts_since() {
        let mut a = ClassCounts::new();
        a.bump(TrafficClass::CpuRxRd);
        let snapshot = a;
        a.bump(TrafficClass::CpuRxRd);
        a.bump(TrafficClass::TxEvct);
        let delta = a.since(&snapshot);
        assert_eq!(delta[TrafficClass::CpuRxRd], 1);
        assert_eq!(delta[TrafficClass::TxEvct], 1);
        assert_eq!(delta.total(), 2);
    }

    #[test]
    fn mem_stats_bandwidth() {
        let mut s = MemStats::new();
        for _ in 0..1000 {
            s.dram_reads.bump(TrafficClass::CpuOtherRd);
        }
        // 1000 blocks * 64B over 1 second of cycles.
        let gbps = s.bandwidth_gbps(crate::engine::CLOCK_HZ);
        assert!((gbps - 64_000.0 / 1e9).abs() < 1e-12);
        assert_eq!(s.dram_bytes(), 64_000);
        assert_eq!(s.bandwidth_gbps(0), 0.0);
    }

    #[test]
    fn per_core_attribution_grows_on_demand() {
        let mut s = MemStats::new();
        assert_eq!(s.core_dram_reads(5), 0);
        s.note_core_dram_read(5);
        s.note_core_dram_read(5);
        s.note_core_dram_read(0);
        assert_eq!(s.core_dram_reads(5), 2);
        assert_eq!(s.core_dram_reads(0), 1);
        assert_eq!(s.core_dram_reads(99), 0);
    }

    #[test]
    fn mem_stats_combined() {
        let mut s = MemStats::new();
        s.dram_reads.bump(TrafficClass::CpuRxRd);
        s.dram_writes.bump(TrafficClass::RxEvct);
        s.dram_writes.bump(TrafficClass::RxEvct);
        let c = s.combined();
        assert_eq!(c[TrafficClass::CpuRxRd], 1);
        assert_eq!(c[TrafficClass::RxEvct], 2);
        assert_eq!(s.dram_accesses(), 3);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 100.0);
        assert_eq!(h.max(), 100);
        assert_eq!(h.percentile(0.0), 100);
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn histogram_percentiles_exact_in_linear_range() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 500);
        assert_eq!(h.percentile(0.99), 990);
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn histogram_geo_range_precision() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(50_000);
        }
        let p50 = h.percentile(0.5);
        // Geometric buckets give a lower bound within ~3.2%.
        assert!(p50 <= 50_000 && p50 as f64 >= 50_000.0 * 0.95, "p50={p50}");
    }

    #[test]
    fn histogram_cdf_is_monotone_and_complete() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 900, 2000, 70_000, 70_000, 70_001] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev_v = 0;
        let mut prev_f = 0.0;
        for &(v, f) in &cdf {
            assert!(v >= prev_v);
            assert!(f >= prev_f);
            prev_v = v;
            prev_f = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_and_clear() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5000);
        assert!((a.mean() - (10.0 + 20.0 + 5000.0) / 3.0).abs() < 1e-9);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.max(), 0);
    }

    #[test]
    fn geo_bucket_low_is_lower_bound() {
        for v in [1024u64, 1500, 4096, 123_456, 10_000_000] {
            let b = geo_bucket(v);
            let low = geo_bucket_low(b);
            assert!(low <= v, "low {low} > v {v}");
            // Next bucket's lower bound is above v.
            let next_low = geo_bucket_low(b + 1);
            assert!(next_low > v, "next_low {next_low} <= v {v}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_bad_quantile() {
        Histogram::new().percentile(1.5);
    }

    #[test]
    fn summary_matches_direct_percentile_calls() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.mean, h.mean());
        assert_eq!(s.p50, h.percentile(0.5));
        assert_eq!(s.p90, h.percentile(0.9));
        assert_eq!(s.p95, h.percentile(0.95));
        assert_eq!(s.p99, h.percentile(0.99));
        assert_eq!(s.p999, h.percentile(0.999));
        assert_eq!(s.max, 1000);
        let rec = s.to_record();
        assert_eq!(rec.get("p99"), Some(&crate::telemetry::Value::U64(s.p99)));
        assert_eq!(rec.len(), 8);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p999, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn class_counts_record_uses_legend_order() {
        let mut c = ClassCounts::new();
        c.bump(TrafficClass::RxEvct);
        let rec = c.to_record();
        let keys: Vec<&str> = rec.fields().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys[0], "NIC RX Wr");
        assert_eq!(keys[5], "RX Evct");
        assert_eq!(rec.get("RX Evct"), Some(&crate::telemetry::Value::U64(1)));
    }

    #[test]
    fn mem_stats_record_is_complete() {
        let mut s = MemStats::new();
        s.llc_hits = 3;
        s.note_core_dram_read(1);
        let rec = s.to_record();
        assert_eq!(rec.get("llc_hits"), Some(&crate::telemetry::Value::U64(3)));
        assert!(rec.get("dram_reads").is_some());
        assert!(rec.get("block_accesses").is_some());
        // One field per MemStats member.
        assert_eq!(rec.len(), 16);
    }
}
