//! Sparse full-map coherence directory.
//!
//! The hierarchy needs to know which cores' *private* caches hold a block so
//! that writes invalidate remote sharers, NIC writes invalidate stale CPU
//! copies, dirty data is forwarded core-to-core, and — crucially for Sweeper —
//! a `sweep` message can invalidate every copy of a buffer block (§V-B).
//!
//! The directory is sparse (a hash map keyed by block) and unbounded; this
//! over-approximates a real sparse directory but never misses a copy, which
//! is the property correctness depends on. The model keeps L1 ⊆ L2
//! (back-invalidation on L2 eviction), so "private residency" is equivalent
//! to L2 residency and the directory tracks exactly that.

use std::collections::HashMap;

use crate::addr::BlockAddr;

/// Maximum cores a sharer bitmask supports.
pub const MAX_CORES: usize = 64;

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bit `i` set means core `i`'s private caches hold the block.
    sharers: u64,
    /// Core holding a dirty private copy, if any.
    dirty_owner: Option<u16>,
}

/// Sparse directory over private-cache residency.
///
/// ```
/// use sweeper_sim::coherence::Directory;
/// use sweeper_sim::addr::BlockAddr;
///
/// let mut dir = Directory::new();
/// let b = BlockAddr(5);
/// dir.add_sharer(b, 0);
/// dir.add_sharer(b, 3);
/// assert_eq!(dir.sharers(b), vec![0, 3]);
/// assert_eq!(dir.others(b, 0), vec![3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `core`'s private caches now hold `block`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= MAX_CORES`.
    pub fn add_sharer(&mut self, block: BlockAddr, core: u16) {
        assert!((core as usize) < MAX_CORES, "core id out of range");
        let e = self.entries.entry(block.0).or_default();
        e.sharers |= 1 << core;
    }

    /// Records that `core` no longer holds `block`; clears dirty ownership if
    /// `core` was the owner. Removes the entry once no sharers remain.
    pub fn remove_sharer(&mut self, block: BlockAddr, core: u16) {
        if let Some(e) = self.entries.get_mut(&block.0) {
            e.sharers &= !(1 << core);
            if e.dirty_owner == Some(core) {
                e.dirty_owner = None;
            }
            if e.sharers == 0 {
                self.entries.remove(&block.0);
            }
        }
    }

    /// Marks `core` as holding the only dirty private copy.
    ///
    /// The caller must have already invalidated other sharers (see
    /// [`Directory::others`]); this method enforces that by resetting the
    /// sharer set to `{core}`.
    pub fn set_dirty_owner(&mut self, block: BlockAddr, core: u16) {
        assert!((core as usize) < MAX_CORES, "core id out of range");
        let e = self.entries.entry(block.0).or_default();
        e.sharers = 1 << core;
        e.dirty_owner = Some(core);
    }

    /// Downgrades a dirty owner to a plain sharer (e.g. after its data was
    /// forwarded or written back).
    pub fn clear_dirty(&mut self, block: BlockAddr) {
        if let Some(e) = self.entries.get_mut(&block.0) {
            e.dirty_owner = None;
        }
    }

    /// The core holding a dirty private copy, if any.
    pub fn dirty_owner(&self, block: BlockAddr) -> Option<u16> {
        self.entries.get(&block.0).and_then(|e| e.dirty_owner)
    }

    /// All cores holding the block, ascending.
    pub fn sharers(&self, block: BlockAddr) -> Vec<u16> {
        match self.entries.get(&block.0) {
            None => Vec::new(),
            Some(e) => bits(e.sharers),
        }
    }

    /// Cores other than `exclude` holding the block, ascending.
    pub fn others(&self, block: BlockAddr, exclude: u16) -> Vec<u16> {
        match self.entries.get(&block.0) {
            None => Vec::new(),
            Some(e) => bits(e.sharers & !(1 << exclude)),
        }
    }

    /// Whether any core other than `exclude` holds the block.
    pub fn shared_elsewhere(&self, block: BlockAddr, exclude: u16) -> bool {
        self.entries
            .get(&block.0)
            .is_some_and(|e| e.sharers & !(1 << exclude) != 0)
    }

    /// Whether any core holds the block.
    pub fn any_sharer(&self, block: BlockAddr) -> bool {
        self.entries.contains_key(&block.0)
    }

    /// Removes all tracking for the block, returning the previous sharers.
    /// Used by sweeps and NIC writes that invalidate every CPU copy.
    pub fn drop_block(&mut self, block: BlockAddr) -> Vec<u16> {
        match self.entries.remove(&block.0) {
            None => Vec::new(),
            Some(e) => bits(e.sharers),
        }
    }

    /// Number of tracked blocks (diagnostics).
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

fn bits(mut mask: u64) -> Vec<u16> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    while mask != 0 {
        let i = mask.trailing_zeros() as u16;
        out.push(i);
        mask &= mask - 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(77);

    #[test]
    fn add_remove_sharers() {
        let mut d = Directory::new();
        assert!(!d.any_sharer(B));
        d.add_sharer(B, 1);
        d.add_sharer(B, 5);
        d.add_sharer(B, 5); // idempotent
        assert_eq!(d.sharers(B), vec![1, 5]);
        assert!(d.shared_elsewhere(B, 1));
        d.remove_sharer(B, 1);
        assert_eq!(d.sharers(B), vec![5]);
        assert!(!d.shared_elsewhere(B, 5));
        d.remove_sharer(B, 5);
        assert!(!d.any_sharer(B));
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn dirty_ownership_lifecycle() {
        let mut d = Directory::new();
        d.add_sharer(B, 2);
        d.add_sharer(B, 3);
        // Core 3 writes: becomes exclusive dirty owner.
        d.set_dirty_owner(B, 3);
        assert_eq!(d.dirty_owner(B), Some(3));
        assert_eq!(d.sharers(B), vec![3], "set_dirty_owner makes exclusive");
        // Forwarding downgrades the owner.
        d.clear_dirty(B);
        assert_eq!(d.dirty_owner(B), None);
        assert_eq!(d.sharers(B), vec![3]);
    }

    #[test]
    fn removing_owner_clears_dirty() {
        let mut d = Directory::new();
        d.set_dirty_owner(B, 4);
        d.remove_sharer(B, 4);
        assert_eq!(d.dirty_owner(B), None);
        assert!(!d.any_sharer(B));
    }

    #[test]
    fn others_excludes_requester() {
        let mut d = Directory::new();
        for c in [0u16, 7, 23] {
            d.add_sharer(B, c);
        }
        assert_eq!(d.others(B, 7), vec![0, 23]);
        assert_eq!(d.others(B, 1), vec![0, 7, 23]);
        assert_eq!(d.others(BlockAddr(123), 0), Vec::<u16>::new());
    }

    #[test]
    fn drop_block_returns_all_sharers() {
        let mut d = Directory::new();
        d.add_sharer(B, 0);
        d.add_sharer(B, 9);
        d.set_dirty_owner(B, 9);
        let dropped = d.drop_block(B);
        assert_eq!(dropped, vec![9], "owner was exclusive");
        assert!(!d.any_sharer(B));
        assert!(d.drop_block(B).is_empty());
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn rejects_large_core_ids() {
        Directory::new().add_sharer(B, 64);
    }

    #[test]
    fn bits_helper() {
        assert_eq!(bits(0), Vec::<u16>::new());
        assert_eq!(bits(0b1), vec![0]);
        assert_eq!(bits(0b1010_0001), vec![0, 5, 7]);
    }
}
