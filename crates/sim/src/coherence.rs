//! Sparse full-map coherence directory.
//!
//! The hierarchy needs to know which cores' *private* caches hold a block so
//! that writes invalidate remote sharers, NIC writes invalidate stale CPU
//! copies, dirty data is forwarded core-to-core, and — crucially for Sweeper —
//! a `sweep` message can invalidate every copy of a buffer block (§V-B).
//!
//! The directory is sparse (keyed by block) and unbounded; this
//! over-approximates a real sparse directory but never misses a copy, which
//! is the property correctness depends on. The model keeps L1 ⊆ L2
//! (back-invalidation on L2 eviction), so "private residency" is equivalent
//! to L2 residency and the directory tracks exactly that.
//!
//! # Hot-path implementation
//!
//! Every CPU access, NIC injection, and sweep consults the directory, so
//! [`Directory`] is a flat open-addressed table (linear probing,
//! backward-shift deletion) keyed by the same Fibonacci multiplicative hash
//! the caches use for set indexing — one multiply instead of SipHash per
//! probe, and no per-entry boxing. Sharer sets are returned as [`SharerSet`],
//! a `Copy` 64-bit mask iterated in place, so no coherence operation
//! allocates. [`ReferenceDirectory`] preserves the original
//! `HashMap`-backed implementation as the oracle for differential tests.

use std::collections::HashMap;

use crate::addr::BlockAddr;

/// Maximum cores a sharer bitmask supports.
pub const MAX_CORES: usize = 64;

/// The multiplier of Fibonacci hashing (⌊2^64/φ⌋), shared with the cache set
/// hash. The *high* product bits are used: the low bits of a multiplicative
/// hash merely permute the low input bits, so power-of-two-strided block
/// addresses (per-core rings) would collide on a handful of probe sequences.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A set of core ids holding a block, as a `Copy` 64-bit mask.
///
/// Replaces the `Vec<u16>` the coherence API used to return — one heap
/// allocation per coherence event, including every swept block. Iterates
/// ascending, matching the old vector order.
///
/// ```
/// use sweeper_sim::coherence::SharerSet;
/// let s = SharerSet::from_mask(0b1010_0001);
/// assert_eq!(s.to_vec(), vec![0, 5, 7]);
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(5) && !s.contains(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Builds a set from a raw bitmask (bit `i` = core `i`).
    pub fn from_mask(mask: u64) -> Self {
        Self(mask)
    }

    /// The raw bitmask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Whether no core is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `core` is in the set.
    pub fn contains(self, core: u16) -> bool {
        (core as usize) < MAX_CORES && self.0 & (1 << core) != 0
    }

    /// The set minus `core`.
    pub fn without(self, core: u16) -> SharerSet {
        if (core as usize) < MAX_CORES {
            SharerSet(self.0 & !(1 << core))
        } else {
            self
        }
    }

    /// Iterates core ids ascending.
    pub fn iter(self) -> SharerIter {
        SharerIter(self.0)
    }

    /// Collects into a vector (tests and diagnostics; the hot path iterates).
    pub fn to_vec(self) -> Vec<u16> {
        self.iter().collect()
    }
}

impl IntoIterator for SharerSet {
    type Item = u16;
    type IntoIter = SharerIter;

    fn into_iter(self) -> SharerIter {
        self.iter()
    }
}

/// Ascending iterator over a [`SharerSet`]'s core ids.
#[derive(Debug, Clone)]
pub struct SharerIter(u64);

impl Iterator for SharerIter {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as u16;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SharerIter {}

/// One open-addressed table slot. `sharers == 0` marks the slot empty —
/// valid because the directory removes an entry the moment its last sharer
/// leaves, so a stored entry always has a nonzero mask.
#[derive(Debug, Clone, Copy)]
struct Slot {
    block: u64,
    sharers: u64,
    dirty_owner: u16,
}

const NO_OWNER: u16 = u16::MAX;

const EMPTY_SLOT: Slot = Slot {
    block: 0,
    sharers: 0,
    dirty_owner: NO_OWNER,
};

/// Initial table capacity (power of two). Grows by doubling at 7/8 load.
const INITIAL_CAPACITY: usize = 1024;

/// Sparse directory over private-cache residency.
///
/// ```
/// use sweeper_sim::coherence::Directory;
/// use sweeper_sim::addr::BlockAddr;
///
/// let mut dir = Directory::new();
/// let b = BlockAddr(5);
/// dir.add_sharer(b, 0);
/// dir.add_sharer(b, 3);
/// assert_eq!(dir.sharers(b).to_vec(), vec![0, 3]);
/// assert_eq!(dir.others(b, 0).to_vec(), vec![3]);
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    slots: Box<[Slot]>,
    len: usize,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self {
            slots: vec![EMPTY_SLOT; INITIAL_CAPACITY].into_boxed_slice(),
            len: 0,
        }
    }

    #[inline]
    fn home(&self, block: u64) -> usize {
        ((block.wrapping_mul(FIB) >> 32) as usize) & (self.slots.len() - 1)
    }

    /// Hints the host CPU to pull `block`'s probe neighborhood into cache.
    /// The table is tens of megabytes, so an un-prefetched probe is usually
    /// a host memory stall; see [`SetAssocCache::prefetch`]
    /// (crate::cache::SetAssocCache::prefetch) for the pattern. No simulated
    /// state changes.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        let i = self.home(block.0);
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.slots.as_ptr().add(i).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = i;
    }

    /// Index of `block`'s slot, if present.
    #[inline]
    fn find(&self, block: u64) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(block);
        loop {
            let s = &self.slots[i];
            if s.sharers == 0 {
                return None;
            }
            if s.block == block {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Index of `block`'s slot, claiming an empty one if absent. The caller
    /// must leave the slot with a nonzero sharer mask (an all-zero mask
    /// would read as empty and corrupt later probes).
    #[inline]
    fn find_or_claim(&mut self, block: u64) -> usize {
        // Keep load ≤ 7/8 so probe sequences stay short and one empty slot
        // always terminates the scan.
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(block);
        loop {
            let s = &mut self.slots[i];
            if s.sharers == 0 {
                s.block = block;
                s.dirty_owner = NO_OWNER;
                self.len += 1;
                return i;
            }
            if s.block == block {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let doubled = vec![EMPTY_SLOT; self.slots.len() * 2].into_boxed_slice();
        let old = std::mem::replace(&mut self.slots, doubled);
        let mask = self.slots.len() - 1;
        for s in old.iter().filter(|s| s.sharers != 0) {
            let mut i = self.home(s.block);
            while self.slots[i].sharers != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = *s;
        }
    }

    /// Deletes the entry at `i` by backward-shifting the probe chain, so no
    /// tombstones accumulate and probe lengths stay tied to load.
    fn remove_at(&mut self, mut i: usize) {
        let mask = self.slots.len() - 1;
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let s = self.slots[j];
            if s.sharers == 0 {
                break;
            }
            // Move `s` into the hole unless its home lies in (i, j] — then
            // the hole does not break its probe chain.
            let home = self.home(s.block);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.slots[i] = s;
                i = j;
            }
        }
        self.slots[i] = EMPTY_SLOT;
    }

    /// Records that `core`'s private caches now hold `block`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= MAX_CORES`.
    pub fn add_sharer(&mut self, block: BlockAddr, core: u16) {
        assert!((core as usize) < MAX_CORES, "core id out of range");
        let i = self.find_or_claim(block.0);
        self.slots[i].sharers |= 1 << core;
    }

    /// Records that `core` no longer holds `block`; clears dirty ownership if
    /// `core` was the owner. Removes the entry once no sharers remain.
    pub fn remove_sharer(&mut self, block: BlockAddr, core: u16) {
        if let Some(i) = self.find(block.0) {
            let s = &mut self.slots[i];
            s.sharers &= !(1 << core);
            if s.dirty_owner == core {
                s.dirty_owner = NO_OWNER;
            }
            if s.sharers == 0 {
                self.remove_at(i);
            }
        }
    }

    /// Marks `core` as holding the only dirty private copy.
    ///
    /// The caller must have already invalidated other sharers (see
    /// [`Directory::others`]); this method enforces that by resetting the
    /// sharer set to `{core}`.
    pub fn set_dirty_owner(&mut self, block: BlockAddr, core: u16) {
        assert!((core as usize) < MAX_CORES, "core id out of range");
        let i = self.find_or_claim(block.0);
        self.slots[i].sharers = 1 << core;
        self.slots[i].dirty_owner = core;
    }

    /// Downgrades a dirty owner to a plain sharer (e.g. after its data was
    /// forwarded or written back).
    pub fn clear_dirty(&mut self, block: BlockAddr) {
        if let Some(i) = self.find(block.0) {
            self.slots[i].dirty_owner = NO_OWNER;
        }
    }

    /// The core holding a dirty private copy, if any.
    pub fn dirty_owner(&self, block: BlockAddr) -> Option<u16> {
        self.find(block.0).and_then(|i| {
            let owner = self.slots[i].dirty_owner;
            (owner != NO_OWNER).then_some(owner)
        })
    }

    /// All cores holding the block, ascending.
    pub fn sharers(&self, block: BlockAddr) -> SharerSet {
        match self.find(block.0) {
            None => SharerSet::EMPTY,
            Some(i) => SharerSet(self.slots[i].sharers),
        }
    }

    /// Cores other than `exclude` holding the block, ascending.
    pub fn others(&self, block: BlockAddr, exclude: u16) -> SharerSet {
        self.sharers(block).without(exclude)
    }

    /// Whether any core other than `exclude` holds the block.
    pub fn shared_elsewhere(&self, block: BlockAddr, exclude: u16) -> bool {
        !self.others(block, exclude).is_empty()
    }

    /// Whether any core holds the block.
    pub fn any_sharer(&self, block: BlockAddr) -> bool {
        self.find(block.0).is_some()
    }

    /// Removes all tracking for the block, returning the previous sharers.
    /// Used by sweeps and NIC writes that invalidate every CPU copy.
    pub fn drop_block(&mut self, block: BlockAddr) -> SharerSet {
        match self.find(block.0) {
            None => SharerSet::EMPTY,
            Some(i) => {
                let sharers = self.slots[i].sharers;
                self.remove_at(i);
                SharerSet(sharers)
            }
        }
    }

    /// Number of tracked blocks (diagnostics).
    pub fn tracked_blocks(&self) -> usize {
        self.len
    }

    /// Iterates every tracked entry as `(block, sharers, dirty_owner)` —
    /// lets the correctness harness cross-check the directory against
    /// actual private-cache residency. Iteration order is unspecified.
    pub fn iter_entries(&self) -> impl Iterator<Item = (BlockAddr, SharerSet, Option<u16>)> + '_ {
        self.slots.iter().filter(|s| s.sharers != 0).map(|s| {
            (
                BlockAddr(s.block),
                SharerSet(s.sharers),
                (s.dirty_owner != NO_OWNER).then_some(s.dirty_owner),
            )
        })
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: u64,
    dirty_owner: Option<u16>,
}

/// The original `HashMap`-backed directory, kept as the oracle for
/// differential tests of [`Directory`]. Same API, same semantics, SipHash
/// and per-operation allocation — do not use on hot paths.
#[derive(Debug, Clone, Default)]
pub struct ReferenceDirectory {
    entries: HashMap<u64, DirEntry>,
}

impl ReferenceDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`Directory::add_sharer`].
    ///
    /// # Panics
    ///
    /// Panics if `core >= MAX_CORES`.
    pub fn add_sharer(&mut self, block: BlockAddr, core: u16) {
        assert!((core as usize) < MAX_CORES, "core id out of range");
        let e = self.entries.entry(block.0).or_default();
        e.sharers |= 1 << core;
    }

    /// See [`Directory::remove_sharer`].
    pub fn remove_sharer(&mut self, block: BlockAddr, core: u16) {
        if let Some(e) = self.entries.get_mut(&block.0) {
            e.sharers &= !(1 << core);
            if e.dirty_owner == Some(core) {
                e.dirty_owner = None;
            }
            if e.sharers == 0 {
                self.entries.remove(&block.0);
            }
        }
    }

    /// See [`Directory::set_dirty_owner`].
    ///
    /// # Panics
    ///
    /// Panics if `core >= MAX_CORES`.
    pub fn set_dirty_owner(&mut self, block: BlockAddr, core: u16) {
        assert!((core as usize) < MAX_CORES, "core id out of range");
        let e = self.entries.entry(block.0).or_default();
        e.sharers = 1 << core;
        e.dirty_owner = Some(core);
    }

    /// See [`Directory::clear_dirty`].
    pub fn clear_dirty(&mut self, block: BlockAddr) {
        if let Some(e) = self.entries.get_mut(&block.0) {
            e.dirty_owner = None;
        }
    }

    /// See [`Directory::dirty_owner`].
    pub fn dirty_owner(&self, block: BlockAddr) -> Option<u16> {
        self.entries.get(&block.0).and_then(|e| e.dirty_owner)
    }

    /// See [`Directory::sharers`].
    pub fn sharers(&self, block: BlockAddr) -> SharerSet {
        match self.entries.get(&block.0) {
            None => SharerSet::EMPTY,
            Some(e) => SharerSet(e.sharers),
        }
    }

    /// See [`Directory::others`].
    pub fn others(&self, block: BlockAddr, exclude: u16) -> SharerSet {
        self.sharers(block).without(exclude)
    }

    /// See [`Directory::shared_elsewhere`].
    pub fn shared_elsewhere(&self, block: BlockAddr, exclude: u16) -> bool {
        !self.others(block, exclude).is_empty()
    }

    /// See [`Directory::any_sharer`].
    pub fn any_sharer(&self, block: BlockAddr) -> bool {
        self.entries.contains_key(&block.0)
    }

    /// See [`Directory::drop_block`].
    pub fn drop_block(&mut self, block: BlockAddr) -> SharerSet {
        match self.entries.remove(&block.0) {
            None => SharerSet::EMPTY,
            Some(e) => SharerSet(e.sharers),
        }
    }

    /// See [`Directory::tracked_blocks`].
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(77);

    #[test]
    fn add_remove_sharers() {
        let mut d = Directory::new();
        assert!(!d.any_sharer(B));
        d.add_sharer(B, 1);
        d.add_sharer(B, 5);
        d.add_sharer(B, 5); // idempotent
        assert_eq!(d.sharers(B).to_vec(), vec![1, 5]);
        assert!(d.shared_elsewhere(B, 1));
        d.remove_sharer(B, 1);
        assert_eq!(d.sharers(B).to_vec(), vec![5]);
        assert!(!d.shared_elsewhere(B, 5));
        d.remove_sharer(B, 5);
        assert!(!d.any_sharer(B));
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn dirty_ownership_lifecycle() {
        let mut d = Directory::new();
        d.add_sharer(B, 2);
        d.add_sharer(B, 3);
        // Core 3 writes: becomes exclusive dirty owner.
        d.set_dirty_owner(B, 3);
        assert_eq!(d.dirty_owner(B), Some(3));
        assert_eq!(d.sharers(B).to_vec(), vec![3], "set_dirty_owner makes exclusive");
        // Forwarding downgrades the owner.
        d.clear_dirty(B);
        assert_eq!(d.dirty_owner(B), None);
        assert_eq!(d.sharers(B).to_vec(), vec![3]);
    }

    #[test]
    fn removing_owner_clears_dirty() {
        let mut d = Directory::new();
        d.set_dirty_owner(B, 4);
        d.remove_sharer(B, 4);
        assert_eq!(d.dirty_owner(B), None);
        assert!(!d.any_sharer(B));
    }

    #[test]
    fn others_excludes_requester() {
        let mut d = Directory::new();
        for c in [0u16, 7, 23] {
            d.add_sharer(B, c);
        }
        assert_eq!(d.others(B, 7).to_vec(), vec![0, 23]);
        assert_eq!(d.others(B, 1).to_vec(), vec![0, 7, 23]);
        assert!(d.others(BlockAddr(123), 0).is_empty());
    }

    #[test]
    fn drop_block_returns_all_sharers() {
        let mut d = Directory::new();
        d.add_sharer(B, 0);
        d.add_sharer(B, 9);
        d.set_dirty_owner(B, 9);
        let dropped = d.drop_block(B);
        assert_eq!(dropped.to_vec(), vec![9], "owner was exclusive");
        assert!(!d.any_sharer(B));
        assert!(d.drop_block(B).is_empty());
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn rejects_large_core_ids() {
        Directory::new().add_sharer(B, 64);
    }

    #[test]
    fn sharer_set_basics() {
        assert!(SharerSet::EMPTY.is_empty());
        assert_eq!(SharerSet::from_mask(0).to_vec(), Vec::<u16>::new());
        assert_eq!(SharerSet::from_mask(0b1).to_vec(), vec![0]);
        assert_eq!(SharerSet::from_mask(0b1010_0001).to_vec(), vec![0, 5, 7]);
        assert_eq!(SharerSet::from_mask(0b1010_0001).len(), 3);
        assert_eq!(SharerSet::from_mask(0b11).without(0).to_vec(), vec![1]);
        assert_eq!(SharerSet::from_mask(0b11).iter().len(), 2);
        assert!(SharerSet::from_mask(1 << 63).contains(63));
        assert!(!SharerSet::from_mask(u64::MAX).contains(64));
    }

    #[test]
    fn block_zero_is_a_valid_key() {
        // The empty-slot marker is `sharers == 0`, not the block id, so
        // block 0 must round-trip like any other key.
        let mut d = Directory::new();
        d.add_sharer(BlockAddr(0), 2);
        assert!(d.any_sharer(BlockAddr(0)));
        assert_eq!(d.sharers(BlockAddr(0)).to_vec(), vec![2]);
        assert_eq!(d.drop_block(BlockAddr(0)).to_vec(), vec![2]);
        assert!(!d.any_sharer(BlockAddr(0)));
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        // Insert far more blocks than INITIAL_CAPACITY, with the stride-2^15
        // addresses of per-core rings that stress the hash.
        let mut d = Directory::new();
        let n = 4 * super::INITIAL_CAPACITY as u64;
        for i in 0..n {
            d.add_sharer(BlockAddr(i << 15), (i % 24) as u16);
        }
        assert_eq!(d.tracked_blocks(), n as usize);
        for i in 0..n {
            assert_eq!(d.sharers(BlockAddr(i << 15)).to_vec(), vec![(i % 24) as u16]);
        }
        for i in 0..n {
            d.remove_sharer(BlockAddr(i << 15), (i % 24) as u16);
        }
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn backward_shift_deletion_keeps_chains_reachable() {
        // Deleting from the middle of a probe chain must not orphan later
        // entries. Drive every block through one table and verify against
        // the reference after each mutation.
        let mut d = Directory::new();
        let mut r = ReferenceDirectory::new();
        // A mix of colliding strides and dense addresses, interleaved
        // add/remove/drop with a deterministic pattern.
        let blocks: Vec<u64> = (0..2048u64)
            .map(|i| if i % 3 == 0 { i << 15 } else { i })
            .collect();
        for (n, &b) in blocks.iter().enumerate() {
            let block = BlockAddr(b);
            let core = (n % MAX_CORES) as u16;
            match n % 5 {
                0..=2 => {
                    d.add_sharer(block, core);
                    r.add_sharer(block, core);
                }
                3 => {
                    let prev = BlockAddr(blocks[n / 2]);
                    d.remove_sharer(prev, core);
                    r.remove_sharer(prev, core);
                }
                _ => {
                    let prev = BlockAddr(blocks[n / 3]);
                    assert_eq!(d.drop_block(prev), r.drop_block(prev));
                }
            }
        }
        assert_eq!(d.tracked_blocks(), r.tracked_blocks());
        for &b in &blocks {
            let block = BlockAddr(b);
            assert_eq!(d.sharers(block), r.sharers(block), "block {b}");
            assert_eq!(d.dirty_owner(block), r.dirty_owner(block));
        }
    }

    #[test]
    fn reference_directory_matches_on_basic_lifecycle() {
        let mut r = ReferenceDirectory::new();
        r.add_sharer(B, 1);
        r.set_dirty_owner(B, 1);
        assert_eq!(r.dirty_owner(B), Some(1));
        assert_eq!(r.sharers(B).to_vec(), vec![1]);
        assert!(r.any_sharer(B));
        assert!(!r.shared_elsewhere(B, 1));
        r.clear_dirty(B);
        assert_eq!(r.dirty_owner(B), None);
        assert_eq!(r.drop_block(B).to_vec(), vec![1]);
        assert_eq!(r.tracked_blocks(), 0);
    }
}
