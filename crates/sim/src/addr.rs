//! Physical address space and region classification.
//!
//! The simulator attributes every memory-system event to its source the same
//! way the paper's figures do (RX buffers, TX buffers, application data). To
//! do so, the physical address space is carved into *regions*, each tagged
//! with a [`RegionKind`]. The [`AddressMap`] allocates regions sequentially
//! and answers point queries with a binary search.

use std::fmt;

use crate::BLOCK_BYTES;

/// A physical byte address.
///
/// A newtype so byte addresses and [block addresses](BlockAddr) cannot be
/// confused — mixing the two is the classic off-by-shift bug in cache
/// simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache block containing this address.
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_BYTES)
    }

    /// Byte offset within the containing cache block.
    pub fn block_offset(self) -> u64 {
        self.0 % BLOCK_BYTES
    }

    /// Address advanced by `bytes`.
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-block address (byte address divided by the 64 B block size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// First byte address of this block.
    pub fn base(self) -> Addr {
        Addr(self.0 * BLOCK_BYTES)
    }

    /// The block `n` blocks after this one.
    pub fn step(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// Iterates over the cache blocks that a `[addr, addr+len)` byte range
/// touches.
///
/// ```
/// use sweeper_sim::addr::{blocks_of, Addr};
/// // 100 bytes starting at byte 60 straddle blocks 0 and 1 and block 2.
/// let blocks: Vec<_> = blocks_of(Addr(60), 100).collect();
/// assert_eq!(blocks.len(), 3);
/// ```
pub fn blocks_of(addr: Addr, len: u64) -> impl Iterator<Item = BlockAddr> {
    let first = addr.block().0;
    let last = if len == 0 {
        first
    } else {
        Addr(addr.0 + len - 1).block().0 + 1
    };
    (first..last.max(first)).map(BlockAddr)
}

/// Number of whole cache blocks needed to hold `len` bytes starting at a
/// block boundary.
pub fn blocks_for_len(len: u64) -> u64 {
    len.div_ceil(BLOCK_BYTES)
}

/// Classification of an address-space region.
///
/// Matches the attribution categories of the paper's memory-access breakdowns
/// (Figures 1c, 2c, 5c, 7b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A receive ring buffer owned by one core.
    Rx {
        /// Owning core id.
        core: u16,
    },
    /// A transmit ring buffer owned by one core.
    Tx {
        /// Owning core id.
        core: u16,
    },
    /// Application data (key-value log, hash buckets, forwarding tables,
    /// X-Mem datasets, ...).
    App,
    /// Anything not explicitly allocated (stack, code, kernel, ...).
    Other,
}

impl RegionKind {
    /// Whether this region holds network RX buffers.
    pub fn is_rx(self) -> bool {
        matches!(self, RegionKind::Rx { .. })
    }

    /// Whether this region holds network TX buffers.
    pub fn is_tx(self) -> bool {
        matches!(self, RegionKind::Tx { .. })
    }
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::Rx { core } => write!(f, "rx[core {core}]"),
            RegionKind::Tx { core } => write!(f, "tx[core {core}]"),
            RegionKind::App => write!(f, "app"),
            RegionKind::Other => write!(f, "other"),
        }
    }
}

#[derive(Debug, Clone)]
struct Region {
    start: u64,
    end: u64, // exclusive
    kind: RegionKind,
}

/// Sequential region allocator plus point-query classifier.
///
/// Regions are allocated upward from a base address, each aligned to the
/// cache-block size, so distinct regions never share a cache block.
///
/// ```
/// use sweeper_sim::addr::{AddressMap, RegionKind};
/// let mut map = AddressMap::new();
/// let rx = map.alloc(1 << 20, RegionKind::Rx { core: 3 });
/// let app = map.alloc(4096, RegionKind::App);
/// assert_eq!(map.classify(rx), RegionKind::Rx { core: 3 });
/// assert_eq!(map.classify(app), RegionKind::App);
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    regions: Vec<Region>,
    next: u64,
}

/// Base of the allocatable address range. Nonzero so address 0 stays in
/// [`RegionKind::Other`], which catches uninitialized-address bugs in tests.
const ALLOC_BASE: u64 = 1 << 30;

impl AddressMap {
    /// Creates an empty map; every address classifies as
    /// [`RegionKind::Other`].
    pub fn new() -> Self {
        Self {
            regions: Vec::new(),
            next: ALLOC_BASE,
        }
    }

    /// Allocates a fresh block-aligned region of at least `bytes` bytes and
    /// returns its base address.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, bytes: u64, kind: RegionKind) -> Addr {
        assert!(bytes > 0, "cannot allocate an empty region");
        let len = bytes.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        let start = self.next;
        self.next += len;
        self.regions.push(Region {
            start,
            end: start + len,
            kind,
        });
        Addr(start)
    }

    /// Classifies an address; unallocated addresses are
    /// [`RegionKind::Other`].
    pub fn classify(&self, addr: Addr) -> RegionKind {
        let a = addr.0;
        // Regions are sorted by construction; binary search on start.
        match self.regions.binary_search_by(|r| {
            if a < r.start {
                std::cmp::Ordering::Greater
            } else if a >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.regions[i].kind,
            Err(_) => RegionKind::Other,
        }
    }

    /// Classifies a block address (blocks never straddle regions).
    pub fn classify_block(&self, block: BlockAddr) -> RegionKind {
        self.classify(block.base())
    }

    /// Total bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.next - ALLOC_BASE
    }

    /// Number of allocated regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_math() {
        assert_eq!(Addr(0).block(), BlockAddr(0));
        assert_eq!(Addr(63).block(), BlockAddr(0));
        assert_eq!(Addr(64).block(), BlockAddr(1));
        assert_eq!(Addr(130).block_offset(), 2);
        assert_eq!(BlockAddr(5).base(), Addr(320));
        assert_eq!(BlockAddr(5).step(3), BlockAddr(8));
    }

    #[test]
    fn blocks_of_exact_and_straddling() {
        assert_eq!(blocks_of(Addr(0), 64).count(), 1);
        assert_eq!(blocks_of(Addr(0), 65).count(), 2);
        assert_eq!(blocks_of(Addr(0), 128).count(), 2);
        assert_eq!(blocks_of(Addr(32), 64).count(), 2);
        assert_eq!(blocks_of(Addr(0), 0).count(), 0);
        // 1 KB packet at a block boundary = 16 blocks, as in the paper.
        assert_eq!(blocks_of(Addr(1 << 30), 1024).count(), 16);
    }

    #[test]
    fn blocks_for_len_rounds_up() {
        assert_eq!(blocks_for_len(1), 1);
        assert_eq!(blocks_for_len(64), 1);
        assert_eq!(blocks_for_len(65), 2);
        assert_eq!(blocks_for_len(1024), 16);
        assert_eq!(blocks_for_len(512), 8);
    }

    #[test]
    fn address_map_classifies() {
        let mut map = AddressMap::new();
        let a = map.alloc(100, RegionKind::Rx { core: 1 });
        let b = map.alloc(64, RegionKind::Tx { core: 1 });
        let c = map.alloc(1 << 16, RegionKind::App);
        assert_eq!(map.classify(a), RegionKind::Rx { core: 1 });
        // Allocation is block-aligned: 100 bytes occupy two blocks.
        assert_eq!(map.classify(a.offset(127)), RegionKind::Rx { core: 1 });
        assert_eq!(map.classify(b), RegionKind::Tx { core: 1 });
        assert_eq!(map.classify(c.offset((1 << 16) - 1)), RegionKind::App);
        assert_eq!(map.classify(Addr(0)), RegionKind::Other);
        assert_eq!(map.classify(Addr(u64::MAX)), RegionKind::Other);
        assert_eq!(map.region_count(), 3);
    }

    #[test]
    fn address_map_alloc_is_disjoint_and_aligned() {
        let mut map = AddressMap::new();
        let mut prev_end = 0;
        for i in 0..50 {
            let a = map.alloc(i * 7 + 1, RegionKind::App);
            assert_eq!(a.0 % BLOCK_BYTES, 0, "region base must be block aligned");
            assert!(a.0 >= prev_end, "regions must not overlap");
            prev_end = a.0 + (i * 7 + 1);
        }
    }

    #[test]
    fn allocated_bytes_tracks_rounding() {
        let mut map = AddressMap::new();
        map.alloc(1, RegionKind::App);
        assert_eq!(map.allocated_bytes(), BLOCK_BYTES);
        map.alloc(64, RegionKind::App);
        assert_eq!(map.allocated_bytes(), 2 * BLOCK_BYTES);
    }

    #[test]
    fn region_kind_predicates() {
        assert!(RegionKind::Rx { core: 0 }.is_rx());
        assert!(!RegionKind::Rx { core: 0 }.is_tx());
        assert!(RegionKind::Tx { core: 9 }.is_tx());
        assert!(!RegionKind::App.is_rx());
        assert!(!RegionKind::Other.is_tx());
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn alloc_zero_panics() {
        AddressMap::new().alloc(0, RegionKind::App);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", Addr(0x40)), "0x40");
        assert_eq!(format!("{}", BlockAddr(1)), "blk:0x1");
        assert_eq!(format!("{}", RegionKind::Rx { core: 2 }), "rx[core 2]");
        assert_eq!(format!("{}", RegionKind::App), "app");
    }
}
