//! DDR4 main-memory model with channel/rank/bank timing and queuing.
//!
//! The paper provisions 3–8 DDR4-3200 channels with 4 ranks × 8 banks each
//! (Table I, parameters from Ramulator). This model reproduces the properties
//! that drive the paper's results:
//!
//! * **finite per-channel bandwidth** — a 64 B burst occupies the channel data
//!   bus for `t_bl` cycles, so offered load beyond ~25.6 GB/s/channel queues;
//! * **bank conflicts and row-buffer locality** — row hits pay `t_cas`, row
//!   misses pay `t_rp + t_rcd + t_cas`;
//! * **load-dependent latency** — each access returns its actual completion
//!   latency including queuing, recorded in a histogram for Figure 6's CDFs.
//!
//! The model is a resource-reservation simulation: banks and buses keep
//! next-free timestamps rather than replaying a full command schedule. That
//! keeps multi-million-access runs fast while preserving the queue-growth
//! behaviour the evaluation depends on.

use crate::addr::BlockAddr;
use crate::stats::Histogram;
use crate::Cycle;

/// DRAM configuration.
///
/// Defaults correspond to DDR4-3200 expressed in 3.2 GHz CPU cycles:
/// CL=tRCD=tRP=22 DRAM cycles ≈ 13.75 ns ≈ 44 CPU cycles; a 64 B burst at
/// 25.6 GB/s lasts 2.5 ns = 8 CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of memory channels (Table I: 3 to 8).
    pub channels: usize,
    /// Ranks per channel (Table I: 4).
    pub ranks_per_channel: usize,
    /// Banks per rank (Table I: 8).
    pub banks_per_rank: usize,
    /// Column access latency (CAS) in CPU cycles.
    pub t_cas: Cycle,
    /// Row activation latency (RCD) in CPU cycles.
    pub t_rcd: Cycle,
    /// Precharge latency (RP) in CPU cycles.
    pub t_rp: Cycle,
    /// Data-bus occupancy of one 64 B burst in CPU cycles.
    pub t_bl: Cycle,
    /// Cache blocks per DRAM row (8 KB row / 64 B = 128).
    pub row_blocks: u64,
    /// Extra bus cycles when the data bus changes direction (tWTR/tRTW).
    pub t_turnaround: Cycle,
    /// Extra channel occupancy charged per row activation (command-bus and
    /// tFAW/tRRD pressure). Random-access streams therefore cap at
    /// `t_bl / (t_bl + t_act_bus)` of nominal peak (~2/3 with defaults),
    /// while row-hit streaming keeps full bandwidth — matching measured
    /// DDR4 behaviour.
    pub t_act_bus: Cycle,
    /// Refresh interval per channel (tREFI), CPU cycles.
    pub t_refi: Cycle,
    /// Refresh duration (tRFC) during which a channel's banks stall, CPU
    /// cycles.
    pub t_rfc: Cycle,
}

impl DramConfig {
    /// The paper's default: four DDR4-3200 channels.
    pub fn paper_default() -> Self {
        Self::with_channels(4)
    }

    /// DDR4-3200 with an explicit channel count.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn with_channels(channels: usize) -> Self {
        assert!(channels > 0, "at least one memory channel is required");
        Self {
            channels,
            ranks_per_channel: 4,
            banks_per_rank: 8,
            t_cas: 44,
            t_rcd: 44,
            t_rp: 44,
            t_bl: 8,
            row_blocks: 128,
            // DDR4-3200: tWTR_L ≈ tCCD + write recovery ≈ 10 ns ≈ 32 CPU
            // cycles; we charge a symmetric, smaller penalty per direction
            // switch.
            t_turnaround: 16,
            t_act_bus: 4,
            // tREFI = 7.8 µs, tRFC ≈ 350 ns for 8 Gb devices.
            t_refi: 24_960,
            t_rfc: 1_120,
        }
    }

    /// Banks per channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Theoretical peak bandwidth in GB/s (all channels).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        let bytes_per_cycle = crate::BLOCK_BYTES as f64 / self.t_bl as f64;
        bytes_per_cycle * self.channels as f64 * crate::engine::CLOCK_HZ as f64 / 1e9
    }

    /// Unloaded (no queuing, row miss on an idle closed bank) read latency.
    pub fn unloaded_latency(&self) -> Cycle {
        self.t_rcd + self.t_cas + self.t_bl
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    busy_until: Cycle,
    open_row: Option<u64>,
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<Bank>,
    bus_free: Cycle,
    /// Burst cycles accumulated in the write buffer, drained in batches.
    write_queue_work: Cycle,
    writes_pending: u32,
    reads: u64,
    writes: u64,
}

/// Writes drain in batches of this many bursts, amortizing the two bus
/// turnarounds (read→write, write→read) each drain costs — the standard
/// write-buffering policy of DDR controllers.
const WRITE_DRAIN_BATCH: u32 = 16;

/// Whether a DRAM access moves data to or from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramOp {
    /// Data read (demand fill); the requester waits for completion.
    Read,
    /// Data write (writeback); posted, the requester does not wait.
    Write,
}

/// Outcome of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycles from issue to data completion (queuing + device time).
    pub latency: Cycle,
    /// Whether the access hit an open row.
    pub row_hit: bool,
    /// Channel that serviced the access.
    pub channel: usize,
}

/// The DRAM subsystem.
///
/// ```
/// use sweeper_sim::dram::{Dram, DramConfig, DramOp};
/// use sweeper_sim::addr::BlockAddr;
///
/// let mut dram = Dram::new(DramConfig::paper_default());
/// let a = dram.access(BlockAddr(0), 0, DramOp::Read);
/// assert_eq!(a.latency, dram.config().unloaded_latency());
/// // Same row, immediately after: row hit, but queued behind the first.
/// let b = dram.access(BlockAddr(4), a.latency, DramOp::Read);
/// assert!(b.row_hit);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    read_latency: Histogram,
    row_hits: u64,
    row_misses: u64,
}

impl Dram {
    /// Builds an idle DRAM subsystem.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); cfg.banks_per_channel()],
                bus_free: 0,
                write_queue_work: 0,
                writes_pending: 0,
                reads: 0,
                writes: 0,
            })
            .collect();
        Self {
            cfg,
            channels,
            read_latency: Histogram::new(),
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// The configuration this subsystem was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn map(&self, block: BlockAddr) -> (usize, usize, u64) {
        let ch = (block.0 % self.cfg.channels as u64) as usize;
        let within = block.0 / self.cfg.channels as u64;
        let row_id = within / self.cfg.row_blocks;
        // Permutation-based bank interleaving: hash the row id into a bank
        // so that power-of-two strides (ring spacing, partition spacing)
        // cannot resonate onto one bank — the XOR/permutation schemes real
        // controllers use for exactly this reason. Consecutive blocks still
        // share a row, preserving streaming row-buffer locality.
        let bank =
            (row_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % self.cfg.banks_per_channel() as u64;
        // The row id itself tags the open row: distinct rows never alias.
        (ch, bank as usize, row_id)
    }

    /// Performs one 64 B access at cycle `now` and returns its timing.
    ///
    /// Reads record their latency in the histogram used by the Figure 6 CDFs;
    /// writes occupy the same resources but are posted.
    pub fn access(&mut self, block: BlockAddr, now: Cycle, op: DramOp) -> DramAccess {
        let (ch_idx, bank_idx, row) = self.map(block);
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        // Periodic all-bank refresh (tREFI/tRFC): accesses landing inside a
        // refresh window (the tail of each tREFI interval) wait for it to
        // finish.
        let mut ready = now.max(bank.busy_until);
        if self.cfg.t_refi > 0 {
            let phase = ready % self.cfg.t_refi;
            if phase >= self.cfg.t_refi - self.cfg.t_rfc {
                ready += self.cfg.t_refi - phase;
            }
        }

        let (device, row_hit) = match bank.open_row {
            Some(r) if r == row => (self.cfg.t_cas, true),
            Some(_) => (self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas, false),
            None => (self.cfg.t_rcd + self.cfg.t_cas, false),
        };
        let data_ready = ready + device;
        let bus_work = self.cfg.t_bl + if row_hit { 0 } else { self.cfg.t_act_bus };

        // The bank frees once its own column access completes (the data sits
        // in the channel's buffers if the bus is backed up); only the burst
        // itself occupies the data bus. Coupling the two queues would
        // collapse the channel far below its real sustainable bandwidth.
        bank.busy_until = data_ready + self.cfg.t_bl;
        bank.open_row = Some(row);

        let latency;
        match op {
            DramOp::Write => {
                // Posted: the burst enters the write buffer. Full batches
                // drain onto the data bus immediately (amortizing the two
                // turnarounds), so write bandwidth is charged continuously
                // and a write-heavy requester cannot push its bus work onto
                // later readers for free.
                ch.write_queue_work += bus_work;
                ch.writes_pending += 1;
                ch.writes += 1;
                if ch.writes_pending >= WRITE_DRAIN_BATCH {
                    ch.bus_free = ch.bus_free.max(now)
                        + ch.write_queue_work
                        + 2 * self.cfg.t_turnaround;
                    ch.write_queue_work = 0;
                    ch.writes_pending = 0;
                }
                latency = data_ready.saturating_sub(now) + self.cfg.t_bl;
            }
            DramOp::Read => {
                let data_start = data_ready.max(ch.bus_free);
                let done = data_start + self.cfg.t_bl;
                ch.bus_free = data_start + bus_work;
                latency = done - now;
                ch.reads += 1;
                self.read_latency.record(latency);
            }
        }
        if row_hit {
            self.row_hits += 1;
        } else {
            self.row_misses += 1;
        }

        DramAccess {
            latency,
            row_hit,
            channel: ch_idx,
        }
    }

    /// Histogram of read latencies (cycles) since the last
    /// [`clear_latencies`](Self::clear_latencies).
    pub fn read_latency(&self) -> &Histogram {
        &self.read_latency
    }

    /// Discards recorded read latencies (e.g. after warmup).
    pub fn clear_latencies(&mut self) {
        self.read_latency.clear();
    }

    /// Clears latencies plus the per-channel and row-hit counters (end of
    /// warmup). Timing state (bank/bus reservations) is kept.
    pub fn reset_counters(&mut self) {
        self.read_latency.clear();
        self.row_hits = 0;
        self.row_misses = 0;
        for ch in &mut self.channels {
            ch.reads = 0;
            ch.writes = 0;
        }
    }

    /// Outstanding bus work (cycles) beyond `now` on the busiest channel —
    /// the backpressure signal a DMA engine observes when the memory system
    /// cannot absorb its writes.
    pub fn backlog(&self, now: Cycle) -> Cycle {
        self.channels
            .iter()
            .map(|ch| (ch.bus_free + ch.write_queue_work).saturating_sub(now))
            .max()
            .unwrap_or(0)
    }

    /// Total accesses serviced, per channel, as `(reads, writes)`.
    pub fn channel_counts(&self) -> Vec<(u64, u64)> {
        self.channels.iter().map(|c| (c.reads, c.writes)).collect()
    }

    /// Snapshot of the scheduling frontier: per channel, the bus-free time
    /// followed by every bank's busy-until time. `access` only ever moves
    /// these forward, so each element must be non-decreasing across
    /// snapshots — the correctness harness asserts exactly that.
    pub fn timing_frontier(&self) -> Vec<Cycle> {
        let mut out = Vec::new();
        for ch in &self.channels {
            out.push(ch.bus_free);
            out.extend(ch.banks.iter().map(|b| b.busy_until));
        }
        out
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::paper_default())
    }

    #[test]
    fn config_sanity() {
        let cfg = DramConfig::paper_default();
        assert_eq!(cfg.channels, 4);
        assert_eq!(cfg.banks_per_channel(), 32);
        // 25.6 GB/s per channel x 4 channels.
        assert!((cfg.peak_bandwidth_gbps() - 102.4).abs() < 0.1);
        assert_eq!(cfg.unloaded_latency(), 44 + 44 + 8);
    }

    #[test]
    fn unloaded_read_has_base_latency() {
        let mut d = dram();
        let a = d.access(BlockAddr(0), 1000, DramOp::Read);
        assert_eq!(a.latency, d.config().unloaded_latency());
        assert!(!a.row_hit);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let first = d.access(BlockAddr(0), 0, DramOp::Read);
        // Same channel/bank/row, issued long after the bank is free.
        let later = first.latency + 10_000;
        let second = d.access(BlockAddr(0), later, DramOp::Read);
        assert!(second.row_hit);
        assert_eq!(second.latency, d.config().t_cas + d.config().t_bl);
        assert!(second.latency < first.latency);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = DramConfig::paper_default();
        let conflict_latency = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_bl;
        // Bank indices are hashed, so search channel-0 rows for one that
        // collides with row 0's bank: it must then pay the precharge.
        let mut found = false;
        for k in 1..200u64 {
            let mut d = Dram::new(cfg);
            d.access(BlockAddr(0), 0, DramOp::Read);
            let candidate = BlockAddr(k * cfg.channels as u64 * cfg.row_blocks);
            let a = d.access(candidate, 1_000_000, DramOp::Read);
            assert!(!a.row_hit, "different rows can never row-hit");
            if a.latency == conflict_latency {
                found = true;
                break;
            }
            // Non-colliding banks start closed: activation only.
            assert_eq!(a.latency, cfg.t_rcd + cfg.t_cas + cfg.t_bl);
        }
        assert!(found, "some row must collide with row 0's bank");
    }

    #[test]
    fn hashed_banks_spread_strided_rows() {
        // The resonance the hash exists to kill: rows strided by a power of
        // two must not all land on one bank.
        let cfg = DramConfig::paper_default();
        let mut d = Dram::new(cfg);
        let mut banks = std::collections::HashSet::new();
        for k in 0..64u64 {
            let block = BlockAddr(k * 64 * cfg.channels as u64 * cfg.row_blocks);
            // Observe the bank indirectly through map(); use latency-free
            // probing via the public access on a fresh device per probe.
            let _ = d.access(block, k * 1_000_000, DramOp::Read);
            banks.insert(d.map(block).1);
        }
        assert!(
            banks.len() > 8,
            "64 power-of-two-strided rows hit only {} banks",
            banks.len()
        );
    }

    #[test]
    fn consecutive_blocks_interleave_channels() {
        let mut d = dram();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4u64 {
            seen.insert(d.access(BlockAddr(i), 0, DramOp::Read).channel);
        }
        assert_eq!(seen.len(), 4, "4 consecutive blocks hit 4 channels");
    }

    #[test]
    fn saturation_grows_latency() {
        let mut d = dram();
        // Hammer a single channel (stride = channel count keeps channel 0).
        let mut last = 0;
        for i in 0..1000u64 {
            let a = d.access(BlockAddr(i * 4), 0, DramOp::Read);
            last = a.latency;
        }
        // All thousand requests queued at cycle 0 on one channel: the last
        // one waits for ~999 bursts.
        assert!(
            last > 900 * d.config().t_bl,
            "expected queuing growth, got {last}"
        );
    }

    #[test]
    fn offered_load_spread_over_channels_is_faster() {
        let mut spread = dram();
        let mut single = dram();
        let mut spread_last = 0;
        let mut single_last = 0;
        for i in 0..1000u64 {
            // Stride of 131 rows varies the bank on every access, so the
            // single-channel stream is limited by its data bus rather than
            // by one bank's chain.
            let row_stride = i * 131 * 128;
            spread_last = spread
                .access(BlockAddr(row_stride + i % 4), 0, DramOp::Read)
                .latency;
            single_last = single
                .access(BlockAddr(row_stride * 4), 0, DramOp::Read)
                .latency;
        }
        assert!(
            spread_last * 3 < single_last,
            "spread {spread_last} vs single {single_last}"
        );
    }

    #[test]
    fn writes_occupy_bandwidth_but_are_counted_separately() {
        let mut d = dram();
        for i in 0..100u64 {
            d.access(BlockAddr(i * 4), 0, DramOp::Write);
        }
        let read = d.access(BlockAddr(400), 0, DramOp::Read);
        assert!(
            read.latency > d.config().unloaded_latency(),
            "read must queue behind writes"
        );
        let (reads, writes) = d.channel_counts()[0];
        assert_eq!(reads, 1);
        assert_eq!(writes, 100);
    }

    #[test]
    fn latency_histogram_records_reads_only() {
        let mut d = dram();
        d.access(BlockAddr(0), 0, DramOp::Write);
        assert_eq!(d.read_latency().count(), 0);
        d.access(BlockAddr(1), 0, DramOp::Read);
        assert_eq!(d.read_latency().count(), 1);
        d.clear_latencies();
        assert_eq!(d.read_latency().count(), 0);
    }

    #[test]
    fn row_hit_rate_tracks() {
        let mut d = dram();
        d.access(BlockAddr(0), 0, DramOp::Read);
        d.access(BlockAddr(0), 10_000, DramOp::Read);
        assert!((d.row_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn row_hit_rate_is_zero_before_any_access() {
        assert_eq!(dram().row_hit_rate(), 0.0);
    }

    #[test]
    fn more_channels_more_bandwidth() {
        let c8 = DramConfig::with_channels(8);
        let c3 = DramConfig::with_channels(3);
        assert!(c8.peak_bandwidth_gbps() > 2.0 * c3.peak_bandwidth_gbps());
    }

    #[test]
    #[should_panic(expected = "at least one memory channel")]
    fn zero_channels_rejected() {
        DramConfig::with_channels(0);
    }
}
