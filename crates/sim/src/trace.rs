//! Memory-event tracing.
//!
//! A bounded, allocation-free event recorder for debugging simulations and
//! for exporting access streams to external tools. Tracing is opt-in per
//! [`MemorySystem`](crate::hierarchy::MemorySystem) (see
//! [`enable_trace`](crate::hierarchy::MemorySystem::enable_trace)); when
//! disabled, the hot path pays a single branch.
//!
//! The recorder is a ring: the last `capacity` events survive, with a count
//! of how many were recorded in total. `to_csv` exports the retained window.

use crate::addr::BlockAddr;
use crate::span::NO_TRACE;
use crate::telemetry::{CsvTable, Value};
use crate::Cycle;

/// The kinds of memory-system events recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// CPU demand read (per range access).
    CpuRead,
    /// CPU store (per range access).
    CpuWrite,
    /// NIC packet injection.
    NicWrite,
    /// NIC transmit-path read.
    NicRead,
    /// `clsweep`/relinquish invalidation.
    Sweep,
    /// Dirty eviction written back to DRAM.
    Writeback,
}

impl TraceKind {
    /// Short label used by the CSV export.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::CpuRead => "cpu_rd",
            TraceKind::CpuWrite => "cpu_wr",
            TraceKind::NicWrite => "nic_wr",
            TraceKind::NicRead => "nic_rd",
            TraceKind::Sweep => "sweep",
            TraceKind::Writeback => "wb",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Cycle,
    /// Event kind.
    pub kind: TraceKind,
    /// Requesting core (`u16::MAX` for NIC-originated events).
    pub core: u16,
    /// First block touched.
    pub block: BlockAddr,
    /// Blocks touched by the operation.
    pub blocks: u32,
    /// Latency observed by the requester (0 for posted operations).
    pub latency: Cycle,
    /// Trace id of the request the event belongs to
    /// ([`NO_TRACE`](crate::span::NO_TRACE) when span tracing is off or the
    /// event happened outside any request context).
    pub trace: u64,
}

/// Bounded ring of trace events.
#[derive(Debug, Clone)]
pub struct Trace {
    ring: Vec<TraceEvent>,
    head: usize,
    recorded: u64,
}

impl Trace {
    /// Creates a trace retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            ring: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
        }
    }

    /// Records one event.
    pub fn record(&mut self, event: TraceEvent) {
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.ring.len();
        }
        self.recorded += 1;
    }

    /// Total events recorded (including those that fell out of the window).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Retained events of one kind, oldest first.
    pub fn events_of(&self, kind: TraceKind) -> Vec<TraceEvent> {
        self.events().into_iter().filter(|e| e.kind == kind).collect()
    }

    /// CSV export of the retained window, in the workspace's shared CSV
    /// dialect: `# key: value` manifest comment lines (artifact name,
    /// totals), then a header row, then one row per event.
    pub fn to_csv(&self) -> String {
        self.to_csv_with_comments(&[])
    }

    /// Like [`Trace::to_csv`], with extra caller-supplied manifest comment
    /// lines (run configuration, seed, …) prepended after the artifact's
    /// own.
    ///
    /// When span tracing tagged any retained event with a request trace id,
    /// the export grows a trailing `trace` column (empty for untagged
    /// events). Runs without span tracing keep the original column set
    /// byte-identical.
    pub fn to_csv_with_comments(&self, comments: &[(String, String)]) -> String {
        let tagged = self.ring.iter().any(|e| e.trace != NO_TRACE);
        let headers: &[&str] = if tagged {
            &["cycle", "kind", "core", "block", "blocks", "latency", "trace"]
        } else {
            &["cycle", "kind", "core", "block", "blocks", "latency"]
        };
        let mut table = CsvTable::new(headers)
            .comment("artifact", "memtrace")
            .comment("events_recorded", self.recorded.to_string())
            .comment("events_retained", self.ring.len().to_string())
            .comments(comments);
        for e in self.events() {
            let mut row = vec![
                Value::U64(e.at),
                Value::Str(e.kind.label().to_string()),
                Value::U64(e.core as u64),
                Value::U64(e.block.0),
                Value::U64(e.blocks as u64),
                Value::U64(e.latency),
            ];
            if tagged {
                row.push(if e.trace == NO_TRACE {
                    Value::Str(String::new())
                } else {
                    Value::U64(e.trace)
                });
            }
            table.value_row(row);
        }
        table.to_csv()
    }

    /// Discards all retained events (the total count is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Cycle) -> TraceEvent {
        TraceEvent {
            at,
            kind: TraceKind::CpuRead,
            core: 0,
            block: BlockAddr(at),
            blocks: 1,
            latency: 4,
            trace: NO_TRACE,
        }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut t = Trace::new(4);
        for i in 0..3 {
            t.record(ev(i));
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at, 0);
        assert_eq!(events[2].at, 2);
        assert_eq!(t.recorded(), 3);
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut t = Trace::new(4);
        for i in 0..10 {
            t.record(ev(i));
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.at).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(t.recorded(), 10);
    }

    #[test]
    fn filter_by_kind() {
        let mut t = Trace::new(8);
        t.record(ev(1));
        t.record(TraceEvent {
            kind: TraceKind::Sweep,
            ..ev(2)
        });
        assert_eq!(t.events_of(TraceKind::Sweep).len(), 1);
        assert_eq!(t.events_of(TraceKind::CpuRead).len(), 1);
        assert_eq!(t.events_of(TraceKind::NicWrite).len(), 0);
    }

    #[test]
    fn csv_export_shape() {
        let mut t = Trace::new(2);
        t.record(ev(5));
        let csv = t.to_csv();
        assert!(csv.starts_with("# artifact: memtrace\n"));
        assert!(csv.contains("# events_recorded: 1\n"));
        assert!(csv.contains("\ncycle,kind,core,block,blocks,latency\n"));
        assert!(csv.contains("5,cpu_rd,0,5,1,4"));
    }

    #[test]
    fn csv_gains_trace_column_only_when_tagged() {
        let mut t = Trace::new(4);
        t.record(ev(5));
        t.record(TraceEvent { trace: 17, ..ev(6) });
        let csv = t.to_csv();
        assert!(csv.contains("\ncycle,kind,core,block,blocks,latency,trace\n"));
        // Untagged events leave the trailing cell empty.
        assert!(csv.contains("5,cpu_rd,0,5,1,4,\n"));
        assert!(csv.contains("6,cpu_rd,0,6,1,4,17"));
    }

    #[test]
    fn csv_export_extra_comments() {
        let mut t = Trace::new(2);
        t.record(ev(5));
        let csv =
            t.to_csv_with_comments(&[("seed".to_string(), "42".to_string())]);
        assert!(csv.contains("# seed: 42\n"));
    }

    #[test]
    fn clear_keeps_total() {
        let mut t = Trace::new(2);
        t.record(ev(1));
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.recorded(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Trace::new(0);
    }
}
