//! Structured telemetry values: a dependency-free `Value`/`Record` tree
//! with correct JSON and CSV writers.
//!
//! Every machine-readable artifact the workspace produces — run reports,
//! figure tables, load sweeps, perf-trajectory files, memory traces,
//! time-series samples — serializes through this one layer, so external
//! tools parse exactly one JSON shape and one CSV dialect.
//!
//! # JSON policy
//!
//! * Strings are escaped per RFC 8259 (`"`, `\`, and all control
//!   characters below U+0020 as `\u00XX`; `\n`, `\r`, `\t` use the short
//!   forms).
//! * Non-finite floats (`NaN`, `±Inf`) have no JSON representation and are
//!   written as `null`. Producers that care should avoid emitting them;
//!   consumers must treat `null` as "not a number".
//! * Numbers use Rust's shortest round-trip formatting, so equal inputs
//!   always produce byte-equal documents (the golden tests rely on this).
//!
//! # CSV dialect
//!
//! One dialect for every artifact: optional `# key: value` manifest
//! comment lines, then a header row, then data rows. Fields containing a
//! comma, quote, CR/LF, or leading `#` are quoted with `""`-doubling.

use std::fmt::Write as _;

/// A structured telemetry value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (counters, cycles).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values serialize as JSON `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A nested record.
    Record(Record),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}
impl From<Record> for Value {
    fn from(v: Record) -> Self {
        Value::Record(v)
    }
}

impl Value {
    /// The value as a bare CSV cell (no JSON quoting; strings verbatim).
    /// Arrays and records are rendered as compact JSON so they survive a
    /// single cell.
    pub fn to_cell(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => float_repr(*v),
            Value::Str(s) => s.clone(),
            Value::Array(_) | Value::Record(_) => {
                let mut out = String::new();
                self.write_json_compact(&mut out);
                out
            }
        }
    }

    /// Pretty JSON (2-space indent) with a trailing newline.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, depth: usize) {
        match self {
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => out.push_str(&float_repr(*v)),
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_json(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Record(rec) => {
                if rec.fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in rec.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write_json(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    fn write_json_compact(&self, out: &mut String) {
        match self {
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json_compact(out);
                }
                out.push(']');
            }
            Value::Record(rec) => {
                out.push('{');
                for (i, (key, value)) in rec.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write_json_compact(out);
                }
                out.push('}');
            }
            Value::Str(s) => write_json_string(out, s),
            other => other.write_json(out, 0),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON representation of a float: shortest round-trip, `null` when
/// non-finite (NaN and infinities have no JSON encoding).
fn float_repr(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An ordered record of named [`Value`]s.
///
/// Field order is insertion order and is preserved in the JSON output, so
/// documents built the same way are byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push(key, value);
        self
    }

    /// Appends a field.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((key.into(), value.into()));
    }

    /// The first field named `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Pretty JSON (2-space indent) with a trailing newline.
    pub fn to_json_pretty(&self) -> String {
        Value::Record(self.clone()).to_json_pretty()
    }
}

/// Escapes one CSV field: quote-and-double when the field contains a
/// comma, quote, newline, or starts with the comment marker `#`.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) || field.starts_with('#') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// A CSV artifact in the workspace's one dialect: `# key: value` manifest
/// comment lines, a header row, and data rows.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    comments: Vec<(String, String)>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            comments: Vec::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one `# key: value` manifest comment line (builder style).
    pub fn comment(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.comments.push((key.into(), value.into()));
        self
    }

    /// Appends the manifest comments from a flat key/value list.
    pub fn comments(mut self, pairs: &[(String, String)]) -> Self {
        self.comments
            .extend(pairs.iter().map(|(k, v)| (k.clone(), v.clone())));
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Appends a data row of [`Value`]s.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn value_row(&mut self, cells: Vec<Value>) {
        self.row(cells.iter().map(Value::to_cell).collect());
    }

    /// Renders the table in the shared dialect.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.comments {
            // Comment values stay on one line: escape embedded newlines.
            let flat = value.replace(['\n', '\r'], " ");
            let _ = writeln!(out, "# {key}: {flat}");
        }
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| csv_escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\te\r\u{1}f".into());
        assert_eq!(v.to_json_pretty(), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001f\"\n");
    }

    #[test]
    fn json_non_finite_floats_become_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Value::F64(bad).to_json_pretty(), "null\n");
        }
        assert_eq!(Value::F64(1.5).to_json_pretty(), "1.5\n");
        assert_eq!(Value::F64(-0.25).to_json_pretty(), "-0.25\n");
    }

    #[test]
    fn json_empty_containers() {
        assert_eq!(Value::Array(vec![]).to_json_pretty(), "[]\n");
        assert_eq!(Record::new().to_json_pretty(), "{}\n");
    }

    #[test]
    fn json_record_preserves_insertion_order() {
        let rec = Record::new().with("z", 1u64).with("a", 2u64);
        assert_eq!(rec.to_json_pretty(), "{\n  \"z\": 1,\n  \"a\": 2\n}\n");
    }

    #[test]
    fn json_nested_structure() {
        let rec = Record::new()
            .with("name", "x,\"y\"")
            .with("vals", vec![Value::U64(1), Value::F64(0.5)])
            .with("inner", Record::new().with("ok", true));
        let json = rec.to_json_pretty();
        assert!(json.contains("\"x,\\\"y\\\"\""));
        assert!(json.contains("\"vals\": [\n    1,\n    0.5\n  ]"));
        assert!(json.contains("\"inner\": {\n    \"ok\": true\n  }"));
    }

    #[test]
    fn record_get_and_len() {
        let rec = Record::new().with("k", 7u64);
        assert_eq!(rec.get("k"), Some(&Value::U64(7)));
        assert_eq!(rec.get("missing"), None);
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
    }

    #[test]
    fn csv_escaping_rules() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_escape("#not-a-comment"), "\"#not-a-comment\"");
    }

    #[test]
    fn csv_table_dialect() {
        let mut t = CsvTable::new(&["a", "b,c"]).comment("artifact", "demo");
        t.row(vec!["1".into(), "x,y".into()]);
        t.value_row(vec![Value::F64(2.5), Value::Str("z".into())]);
        assert_eq!(
            t.to_csv(),
            "# artifact: demo\na,\"b,c\"\n1,\"x,y\"\n2.5,z\n"
        );
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn csv_table_rejects_ragged_rows() {
        let mut t = CsvTable::new(&["only"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn cell_rendering_covers_all_variants() {
        assert_eq!(Value::Bool(true).to_cell(), "true");
        assert_eq!(Value::I64(-3).to_cell(), "-3");
        assert_eq!(Value::U64(9).to_cell(), "9");
        assert_eq!(Value::Str("s".into()).to_cell(), "s");
        assert_eq!(
            Value::Array(vec![Value::U64(1), Value::U64(2)]).to_cell(),
            "[1,2]"
        );
        assert_eq!(
            Value::Record(Record::new().with("k", 1u64)).to_cell(),
            "{\"k\":1}"
        );
    }
}
