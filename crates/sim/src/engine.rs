//! Simulation clock helpers, deterministic RNG, and a generic event queue.
//!
//! The substrate is a discrete-time simulation: every component reasons in CPU
//! cycles ([`Cycle`]). Wall-clock conversions assume the paper's 3.2 GHz core
//! clock unless a different frequency is supplied explicitly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Cycle;

/// CPU clock frequency of the simulated server, in Hz (Table I: 3.2 GHz).
pub const CLOCK_HZ: u64 = 3_200_000_000;

/// Converts a duration in nanoseconds to CPU cycles (rounding up).
///
/// ```
/// use sweeper_sim::engine::ns_to_cycles;
/// assert_eq!(ns_to_cycles(1000.0), 3200);
/// ```
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns * CLOCK_HZ as f64 / 1e9).ceil() as Cycle
}

/// Converts CPU cycles to nanoseconds.
///
/// ```
/// use sweeper_sim::engine::cycles_to_ns;
/// assert!((cycles_to_ns(3200) - 1000.0).abs() < 1e-9);
/// ```
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 * 1e9 / CLOCK_HZ as f64
}

/// Converts CPU cycles to seconds.
pub fn cycles_to_secs(cycles: Cycle) -> f64 {
    cycles as f64 / CLOCK_HZ as f64
}

/// Converts microseconds to CPU cycles (rounding up).
pub fn us_to_cycles(us: f64) -> Cycle {
    ns_to_cycles(us * 1e3)
}

/// Deterministic simulation RNG.
///
/// Every stochastic component (traffic generator, key popularity, service-time
/// spikes) draws from a [`SimRng`] seeded from the experiment configuration,
/// so a simulation run is exactly reproducible.
///
/// ```
/// use sweeper_sim::engine::SimRng;
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.next_u64_in(100), b.next_u64_in(100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; useful to give each simulated
    /// component its own stream without correlation.
    pub fn fork(&mut self) -> Self {
        Self::seeded(self.inner.gen())
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_u64_in(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson inter-arrival times of the traffic generator
    /// (Appendix A: "injects packets at configurable Poisson arrival rate").
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }
}

/// A time-ordered event queue.
///
/// Events with equal timestamps are popped in insertion order (FIFO), which
/// keeps simulations deterministic regardless of heap internals.
///
/// ```
/// use sweeper_sim::engine::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(20, "b");
/// q.push(10, "a");
/// q.push(20, "c");
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((20, "b")));
/// assert_eq!(q.pop(), Some((20, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with pre-reserved heap capacity, so a
    /// `push`-heavy simulation loop whose population bound is known up
    /// front never reallocates mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `payload` at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversions_round_trip() {
        assert_eq!(ns_to_cycles(0.0), 0);
        assert_eq!(ns_to_cycles(1.0), 4); // 3.2 cycles rounds up to 4
        assert_eq!(us_to_cycles(1.0), 3200);
        let c = 123_456;
        let back = ns_to_cycles(cycles_to_ns(c));
        assert_eq!(back, c);
    }

    #[test]
    fn cycles_to_secs_matches_clock() {
        assert!((cycles_to_secs(CLOCK_HZ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_in(1000), b.next_u64_in(1000));
        }
    }

    #[test]
    fn rng_fork_decorrelates() {
        let mut a = SimRng::seeded(42);
        let mut child = a.fork();
        // The child stream must differ from the parent's subsequent stream.
        let parent_draws: Vec<u64> = (0..8).map(|_| a.next_u64_in(u64::MAX)).collect();
        let child_draws: Vec<u64> = (0..8).map(|_| child.next_u64_in(u64::MAX)).collect();
        assert_ne!(parent_draws, child_draws);
    }

    #[test]
    fn exp_mean_is_approximately_right() {
        let mut rng = SimRng::seeded(1);
        let n = 100_000;
        let mean = 50.0;
        let sum: f64 = (0..n).map(|_| rng.next_exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn event_queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(5, 'b');
        q.push(1, 'a');
        q.push(9, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn event_queue_fifo_for_ties() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn event_queue_len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(3, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn rng_zero_bound_panics() {
        SimRng::seeded(0).next_u64_in(0);
    }
}
