//! The three-level cache hierarchy with DDIO injection and sweep support.
//!
//! Models the paper's simulated server (Table I): per-core private L1d and L2
//! caches, a shared non-inclusive LLC operating as a victim cache for L2
//! evictions, a NoC hop to the LLC, and the DRAM subsystem behind it.
//!
//! Three NIC packet-injection policies are supported (§III):
//!
//! * [`InjectionPolicy::Dma`] — conventional DMA: packets go straight to
//!   DRAM; cached copies are invalidated.
//! * [`InjectionPolicy::Ddio`] — DDIO: the NIC write-allocates into a
//!   restricted set of LLC ways; hits are write-updates.
//! * [`InjectionPolicy::Ideal`] — an unrealistic infinite side-cache for
//!   network data: network buffers never occupy the real hierarchy and never
//!   touch DRAM.
//!
//! The `sweep` operation implements the semantics of the paper's `clsweep`
//! instruction (§V-B): every copy of a block is invalidated *without* a
//! writeback, conserving memory bandwidth.

use std::ops::Range;

use crate::addr::{blocks_of, Addr, AddressMap, BlockAddr, RegionKind};
use crate::cache::{CacheGeometry, Evicted, Line, LineOrigin, ReplacementPolicy, SetAssocCache, WayMask};
use crate::check::{CheckConfig, CheckReport, CheckState, ViolationKind};
use crate::coherence::Directory;
use crate::dram::{Dram, DramConfig, DramOp};
use crate::span::{SpanKind, SpanRecorder, SpanRing, NO_TRACE};
use crate::stats::{MemStats, TrafficClass};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::Cycle;

/// How the NIC moves arriving packets into the memory system (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPolicy {
    /// Conventional DMA to DRAM.
    Dma,
    /// Direct Cache Access into the LLC's DDIO ways.
    Ddio,
    /// Infinite separate network cache; zero network memory traffic.
    Ideal,
}

impl std::fmt::Display for InjectionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectionPolicy::Dma => f.write_str("DMA"),
            InjectionPolicy::Ddio => f.write_str("DDIO"),
            InjectionPolicy::Ideal => f.write_str("Ideal-DDIO"),
        }
    }
}

/// Full machine configuration (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (Table I: 24).
    pub cores: usize,
    /// Private L1 data cache geometry (48 KB, 12-way, 4 cycles).
    pub l1: CacheGeometry,
    /// Private L2 geometry (1.25 MB, 20-way, 14 cycles).
    pub l2: CacheGeometry,
    /// Shared LLC geometry (36 MB, 12-way, 35 cycles).
    pub llc: CacheGeometry,
    /// NoC crossbar latency to reach the LLC (8 cycles).
    pub noc_latency: Cycle,
    /// Number of LLC ways the NIC may write-allocate into (DDIO ways).
    pub ddio_ways: u32,
    /// Packet injection policy.
    pub injection: InjectionPolicy,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Per-block pipelined issue cost within a multi-block range access.
    pub block_issue_cost: Cycle,
    /// Cost charged to the issuing core per `clsweep` (pipelined).
    pub sweep_issue_cost: Cycle,
    /// Whether a CPU *read* hit leaves the (possibly dirty) line resident in
    /// the LLC (Intel-style non-inclusive behaviour, the default) or
    /// migrates it out like a strict victim cache. Ablation knob for the
    /// design decision that makes consumed buffers accumulate in the DDIO
    /// ways.
    pub llc_read_hit_retains: bool,
    /// Whether CPU-side LLC insertions are excluded from the DDIO ways
    /// (strict partition) instead of being allowed anywhere (insertion-mask
    /// semantics, the default). Ablation knob for the §VI-C "runaway
    /// buffer" behaviour.
    pub ddio_strict_partition: bool,
    /// LLC replacement policy (private caches stay LRU). SRRIP is an
    /// ablation: scan-resistant insertion interacts with how long dead
    /// network buffers survive in the LLC.
    pub llc_replacement: ReplacementPolicy,
    /// Next-line prefetch into L2 on CPU demand misses that reach DRAM.
    /// Off by default (the paper's effects are prefetch-independent); an
    /// extension/ablation knob.
    pub l2_next_line_prefetch: bool,
}

impl MachineConfig {
    /// The paper's simulated 24-core server (Table I), with the default
    /// 2-way DDIO configuration.
    pub fn paper_default() -> Self {
        Self {
            cores: 24,
            l1: CacheGeometry {
                size_bytes: 48 * 1024,
                ways: 12,
                latency: 4,
            },
            l2: CacheGeometry {
                size_bytes: 1280 * 1024,
                ways: 20,
                latency: 14,
            },
            llc: CacheGeometry {
                size_bytes: 36 * 1024 * 1024,
                ways: 12,
                latency: 35,
            },
            noc_latency: 8,
            ddio_ways: 2,
            injection: InjectionPolicy::Ddio,
            dram: DramConfig::paper_default(),
            block_issue_cost: 1,
            sweep_issue_cost: 2,
            llc_read_hit_retains: true,
            ddio_strict_partition: false,
            llc_replacement: ReplacementPolicy::Lru,
            l2_next_line_prefetch: false,
        }
    }

    /// A scaled-down machine for fast unit tests (same shape, tiny caches).
    pub fn tiny_for_tests() -> Self {
        Self {
            cores: 2,
            l1: CacheGeometry {
                size_bytes: 4 * 64 * 2,
                ways: 2,
                latency: 4,
            },
            l2: CacheGeometry {
                size_bytes: 16 * 64 * 4,
                ways: 4,
                latency: 14,
            },
            llc: CacheGeometry {
                size_bytes: 64 * 64 * 4,
                ways: 4,
                latency: 35,
            },
            noc_latency: 8,
            ddio_ways: 2,
            injection: InjectionPolicy::Ddio,
            dram: DramConfig::paper_default(),
            block_issue_cost: 1,
            sweep_issue_cost: 2,
            llc_read_hit_retains: true,
            ddio_strict_partition: false,
            llc_replacement: ReplacementPolicy::Lru,
            l2_next_line_prefetch: false,
        }
    }

    /// Returns a copy with a different DDIO way count.
    pub fn with_ddio_ways(mut self, ways: u32) -> Self {
        self.ddio_ways = ways;
        self
    }

    /// Returns a copy with a different injection policy.
    pub fn with_injection(mut self, policy: InjectionPolicy) -> Self {
        self.injection = policy;
        self
    }

    /// Returns a copy with a different memory channel count.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.dram = DramConfig::with_channels(channels);
        self
    }
}

/// Outcome of a CPU range access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access {
    /// Latency observed by the issuing core, in cycles. Blocks within one
    /// range access are issued back-to-back and overlap (the 352-entry-ROB
    /// OOO cores of Table I easily cover a buffer copy), so the range
    /// latency is the slowest block's completion plus a per-block issue
    /// cost.
    pub latency: Cycle,
    /// Number of cache blocks touched.
    pub blocks: u64,
    /// Blocks that had to be fetched from DRAM.
    pub dram_fetches: u64,
}

/// Outcome of a NIC-side range operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NicAccess {
    /// Number of cache blocks touched.
    pub blocks: u64,
    /// DRAM transfers this operation performed directly (injection writes,
    /// TX reads) — evictions it *caused* are counted in [`MemStats`] only.
    pub dram_transfers: u64,
}

/// LLC occupancy (in 64 B lines) split by region category, as returned by
/// [`MemorySystem::llc_occupancy_by_region`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcOccupancy {
    /// Lines holding RX-buffer blocks (any core).
    pub rx: u64,
    /// Lines holding TX-buffer blocks (any core).
    pub tx: u64,
    /// Lines holding application data.
    pub app: u64,
    /// Lines holding anything else.
    pub other: u64,
}

impl LlcOccupancy {
    /// Total occupied lines across all categories.
    pub fn total(&self) -> u64 {
        self.rx + self.tx + self.app + self.other
    }
}

/// Incremental per-[`RegionKind`] LLC occupancy counters, updated on every
/// LLC insert/evict/invalidate so occupancy queries never scan the cache.
///
/// Kinds index a flat vector: `App` = 0, `Other` = 1, then `Rx`/`Tx`
/// interleaved per core — at most `2 + 2 * MAX_CORES` entries, grown on
/// demand.
#[derive(Debug, Clone, Default)]
struct OccupancyCounters {
    counts: Vec<u64>,
}

impl OccupancyCounters {
    fn idx(kind: RegionKind) -> usize {
        match kind {
            RegionKind::App => 0,
            RegionKind::Other => 1,
            RegionKind::Rx { core } => 2 + 2 * core as usize,
            RegionKind::Tx { core } => 3 + 2 * core as usize,
        }
    }

    fn kind_of(idx: usize) -> RegionKind {
        match idx {
            0 => RegionKind::App,
            1 => RegionKind::Other,
            i if i % 2 == 0 => RegionKind::Rx {
                core: (i as u16 - 2) / 2,
            },
            i => RegionKind::Tx {
                core: (i as u16 - 3) / 2,
            },
        }
    }

    fn add(&mut self, kind: RegionKind) {
        let i = Self::idx(kind);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    fn sub(&mut self, kind: RegionKind) {
        let i = Self::idx(kind);
        debug_assert!(
            self.counts.get(i).is_some_and(|&c| c > 0),
            "occupancy underflow for {kind}"
        );
        self.counts[i] -= 1;
    }

    fn total_matching(&self, pred: impl Fn(RegionKind) -> bool) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .filter(|&(i, _)| pred(Self::kind_of(i)))
            .map(|(_, &c)| c)
            .sum()
    }
}

/// The simulated memory system.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MachineConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    llc_occ: OccupancyCounters,
    dir: Directory,
    dram: Dram,
    stats: MemStats,
    map: AddressMap,
    ddio_mask: WayMask,
    cpu_masks: Vec<WayMask>,
    trace: Option<Trace>,
    spans: Option<Box<SpanRecorder>>,
    check: Option<Box<CheckState>>,
}

impl MemorySystem {
    /// Builds an idle memory system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is zero or exceeds the directory's 64-core
    /// limit, or `cfg.ddio_ways` exceeds the LLC associativity.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(
            cfg.cores >= 1 && cfg.cores <= crate::coherence::MAX_CORES,
            "core count out of range"
        );
        assert!(
            cfg.ddio_ways >= 1 && cfg.ddio_ways as usize <= cfg.llc.ways,
            "DDIO ways must be within LLC associativity"
        );
        let l1 = (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect();
        let l2 = (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l2)).collect();
        Self {
            l1,
            l2,
            llc: SetAssocCache::with_policy(cfg.llc, cfg.llc_replacement),
            llc_occ: OccupancyCounters::default(),
            dir: Directory::new(),
            dram: Dram::new(cfg.dram),
            stats: MemStats::new(),
            map: AddressMap::new(),
            ddio_mask: WayMask::first(cfg.ddio_ways),
            cpu_masks: vec![WayMask::ALL; cfg.cores],
            trace: None,
            spans: None,
            check: None,
            cfg,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The address map, for allocating classified regions.
    pub fn address_map_mut(&mut self) -> &mut AddressMap {
        &mut self.map
    }

    /// Read-only view of the address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The DRAM subsystem (latency histograms, channel counters).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The shared LLC (occupancy diagnostics).
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Enables event tracing, retaining the most recent `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Disables tracing and returns the recorder, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// The trace recorder, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Discards retained trace events, keeping the recorder live (end of
    /// warmup).
    pub fn clear_trace(&mut self) {
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
    }

    /// Enables request-level span recording, retaining the most recent
    /// `capacity` spans. When disabled, span hooks cost one branch.
    pub fn enable_spans(&mut self, capacity: usize) {
        self.spans = Some(Box::new(SpanRecorder::new(capacity)));
    }

    /// Disables span recording and returns the ring, if any.
    pub fn take_spans(&mut self) -> Option<SpanRing> {
        self.spans.take().map(|r| r.into_ring())
    }

    /// The span ring, if span recording is enabled.
    pub fn spans(&self) -> Option<&SpanRing> {
        self.spans.as_deref().map(SpanRecorder::ring)
    }

    /// Discards retained spans and resets the request context, keeping the
    /// recorder live (end of warmup).
    pub fn clear_spans(&mut self) {
        if let Some(spans) = &mut self.spans {
            spans.clear();
        }
    }

    /// Sets the request context: subsequent spans *and* trace events are
    /// tagged with this trace id until the next call. One branch when span
    /// recording is disabled.
    #[inline]
    pub fn set_span_trace(&mut self, trace: u64) {
        if let Some(spans) = &mut self.spans {
            spans.set_trace(trace);
        }
    }

    /// The current request context ([`NO_TRACE`] when untagged or span
    /// recording is disabled).
    #[inline]
    pub fn span_trace(&self) -> u64 {
        self.spans.as_deref().map_or(NO_TRACE, SpanRecorder::trace)
    }

    /// Records one span under the current request context. One branch when
    /// span recording is disabled.
    #[inline]
    pub fn record_span(&mut self, kind: SpanKind, core: u16, start: Cycle, end: Cycle) {
        if let Some(spans) = &mut self.spans {
            spans.record(kind, core, start, end);
        }
    }

    /// Enables the correctness harness: every NIC write, CPU store, sweep,
    /// writeback, and DRAM fill is mirrored into the shadow-memory oracle,
    /// and [`MemorySystem::check_walk`] verifies the hierarchy invariants.
    /// When disabled, each hook costs one branch.
    pub fn enable_check(&mut self, cfg: CheckConfig) {
        self.check = Some(Box::new(CheckState::new(cfg)));
    }

    /// Whether the correctness harness is enabled.
    pub fn check_enabled(&self) -> bool {
        self.check.is_some()
    }

    /// The harness configuration, if enabled.
    pub fn check_config(&self) -> Option<&CheckConfig> {
        self.check.as_deref().map(CheckState::config)
    }

    /// Snapshot of the harness's violation ledger, if enabled.
    pub fn check_report(&self) -> Option<CheckReport> {
        self.check.as_deref().map(CheckState::report)
    }

    /// Records an externally-detected violation (e.g. the server's RX ring
    /// index checks) into the harness ledger. No-op when disabled.
    pub fn check_note_violation(&mut self, kind: ViolationKind, detail: impl FnOnce() -> String) {
        if let Some(chk) = &mut self.check {
            chk.note_violation(kind, detail);
        }
    }

    /// Tells the oracle the CPU has consumed `[addr, addr+len)`: sweeping
    /// these blocks is now legal until the NIC next overwrites them. One
    /// branch when the harness is disabled.
    #[inline]
    pub fn mark_consumed(&mut self, addr: Addr, len: u64) {
        if let Some(chk) = &mut self.check {
            chk.mark_consumed(addr, len);
        }
    }

    /// Walks every hierarchy invariant, recording violations into the
    /// harness ledger. No-op when the harness is disabled; expensive —
    /// O(resident lines + directory entries) — so call only at drain
    /// points, not per access.
    pub fn check_walk(&mut self) {
        let Some(mut chk) = self.check.take() else {
            return;
        };
        chk.note_walk();

        // Directory ⊆ residency: every sharer the directory records must
        // actually hold the block in its L2, and a dirty owner must be in
        // its own sharer set.
        for (block, sharers, owner) in self.dir.iter_entries() {
            for core in sharers {
                if self.l2[core as usize].peek(block).is_none() {
                    chk.note_violation(ViolationKind::DirectoryResidencyMismatch, || {
                        format!("{block}: directory lists core {core} but its L2 misses")
                    });
                }
            }
            if let Some(o) = owner {
                if !sharers.contains(o) {
                    chk.note_violation(ViolationKind::DirtyOwnershipMismatch, || {
                        format!("{block}: dirty owner {o} not in sharer set")
                    });
                }
            }
        }

        // Residency ⊆ directory, L1 ⊆ L2 inclusion, and the per-block dirty
        // census (at most one dirty copy may exist hierarchy-wide).
        let mut dirty_copies: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for line in self.llc.iter_lines() {
            if chk.is_swept(line.block) {
                chk.note_violation(ViolationKind::SweptBlockResident, || {
                    format!("{}: swept block still resident in LLC", line.block)
                });
            }
            if line.dirty {
                *dirty_copies.entry(line.block.0).or_default() += 1;
            }
        }
        for c in 0..self.cfg.cores {
            for line in self.l1[c].iter_lines() {
                if self.l2[c].peek(line.block).is_none() {
                    chk.note_violation(ViolationKind::InclusionViolation, || {
                        format!("{}: in core {c}'s L1 but not its L2", line.block)
                    });
                }
            }
            for line in self.l2[c].iter_lines() {
                if !self.dir.sharers(line.block).contains(c as u16) {
                    chk.note_violation(ViolationKind::DirectoryResidencyMismatch, || {
                        format!("{}: in core {c}'s L2 but not its directory entry", line.block)
                    });
                }
                if chk.is_swept(line.block) {
                    chk.note_violation(ViolationKind::SweptBlockResident, || {
                        format!("{}: swept block still resident in core {c}", line.block)
                    });
                }
                let dirty = line.dirty || self.l1[c].peek(line.block).is_some_and(|l| l.dirty);
                if dirty {
                    *dirty_copies.entry(line.block.0).or_default() += 1;
                    // Under the default semantics every dirty private line
                    // has a registered owner; the strict-victim ablation
                    // deliberately installs dirty lines without claiming
                    // ownership, so the subcheck is gated.
                    if self.cfg.llc_read_hit_retains
                        && self.dir.dirty_owner(line.block) != Some(c as u16)
                    {
                        chk.note_violation(ViolationKind::DirtyOwnershipMismatch, || {
                            format!("{}: dirty in core {c} without dirty ownership", line.block)
                        });
                    }
                }
            }
        }
        for (&block, &copies) in &dirty_copies {
            if copies > 1 {
                chk.note_violation(ViolationKind::MultipleDirtyCopies, || {
                    format!("{}: {copies} dirty copies in the hierarchy", BlockAddr(block))
                });
            }
        }

        // NIC-origin LLC lines must sit inside the DDIO way mask.
        for (_, way, line) in self.llc.iter_located_lines() {
            if line.origin == LineOrigin::Nic && !self.ddio_mask.allows(way) {
                chk.note_violation(ViolationKind::DdioWayEscape, || {
                    format!("{}: NIC-origin line in non-DDIO way {way}", line.block)
                });
            }
        }

        // Incremental per-region occupancy counters vs a from-scratch
        // recount of the LLC.
        let mut recount = OccupancyCounters::default();
        for line in self.llc.iter_lines() {
            recount.add(self.map.classify_block(line.block));
        }
        let width = recount.counts.len().max(self.llc_occ.counts.len());
        for i in 0..width {
            let fresh = recount.counts.get(i).copied().unwrap_or(0);
            let incremental = self.llc_occ.counts.get(i).copied().unwrap_or(0);
            if fresh != incremental {
                chk.note_violation(ViolationKind::OccupancyDrift, || {
                    format!(
                        "{}: incremental count {incremental}, recount {fresh}",
                        OccupancyCounters::kind_of(i)
                    )
                });
            }
        }

        // DRAM never schedules an access in the past: the bank/bus frontier
        // must be elementwise non-decreasing between walks.
        chk.check_dram_frontier(self.dram.timing_frontier());

        self.check = Some(chk);
    }

    #[inline]
    fn trace_event(&mut self, at: Cycle, kind: TraceKind, core: u16, block: BlockAddr, blocks: u32, latency: Cycle) {
        let trace = self.span_trace();
        if let Some(rec) = &mut self.trace {
            rec.record(TraceEvent { at, kind, core, block, blocks, latency, trace });
        }
    }

    /// Clears statistics and recorded DRAM latencies (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::new();
        self.dram.reset_counters();
    }

    /// Restricts the LLC ways the NIC may allocate into. Used by the
    /// collocation experiments (§VI-E) to pin DDIO into partition A.
    pub fn set_ddio_mask(&mut self, mask: WayMask) {
        assert!(
            mask.count_in(self.cfg.llc.ways) > 0,
            "DDIO mask allows no LLC ways"
        );
        self.ddio_mask = mask;
    }

    /// Restricts the LLC ways CPU-side insertions from `core` may allocate
    /// into (Intel CAT-style partitioning, §VI-E).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or the mask is empty.
    pub fn set_cpu_llc_mask(&mut self, core: u16, mask: WayMask) {
        assert!(
            mask.count_in(self.cfg.llc.ways) > 0,
            "CPU mask allows no LLC ways"
        );
        self.cpu_masks[core as usize] = mask;
    }

    fn eviction_class(kind: RegionKind) -> TrafficClass {
        match kind {
            RegionKind::Rx { .. } => TrafficClass::RxEvct,
            RegionKind::Tx { .. } => TrafficClass::TxEvct,
            RegionKind::App | RegionKind::Other => TrafficClass::OtherEvct,
        }
    }

    fn cpu_read_class(kind: RegionKind) -> TrafficClass {
        match kind {
            RegionKind::Rx { .. } => TrafficClass::CpuRxRd,
            RegionKind::Tx { .. } => TrafficClass::CpuTxRdWr,
            RegionKind::App | RegionKind::Other => TrafficClass::CpuOtherRd,
        }
    }

    fn is_network(kind: RegionKind) -> bool {
        kind.is_rx() || kind.is_tx()
    }

    /// Writes a dirty block back to DRAM, attributed to its region.
    ///
    /// Returns the stall the *triggering* access must absorb when the memory
    /// system's write path is backlogged — the writeback-queue-full stall of
    /// a real miss pipeline. Without it, eviction-heavy producers would dump
    /// unbounded posted write work whose latency only unrelated readers pay.
    fn writeback(&mut self, block: BlockAddr, now: Cycle) -> Cycle {
        let kind = self.map.classify_block(block);
        if self.cfg.injection == InjectionPolicy::Ideal && Self::is_network(kind) {
            // Ideal-DDIO: network data never produces memory traffic.
            return 0;
        }
        const WRITE_ALLOWANCE: Cycle = 2_000;
        if let Some(chk) = self.check.as_deref_mut() {
            chk.on_writeback(block);
        }
        let stall = self.dram.backlog(now).saturating_sub(WRITE_ALLOWANCE);
        let class = Self::eviction_class(kind);
        self.dram.access(block, now, DramOp::Write);
        self.stats.dram_writes.bump(class);
        self.trace_event(now, TraceKind::Writeback, u16::MAX, block, 1, 0);
        stall
    }

    /// LLC insert that keeps the per-region occupancy counters in sync.
    /// All LLC residency changes must go through this or
    /// [`MemorySystem::llc_invalidate`].
    fn llc_insert(
        &mut self,
        block: BlockAddr,
        dirty: bool,
        origin: LineOrigin,
        mask: WayMask,
    ) -> Option<Evicted> {
        let before = self.llc.resident_lines();
        let ev = self.llc.insert(block, dirty, origin, mask);
        if let Some(e) = &ev {
            self.llc_occ.add(self.map.classify_block(block));
            self.llc_occ.sub(self.map.classify_block(e.line.block));
        } else if self.llc.resident_lines() > before {
            self.llc_occ.add(self.map.classify_block(block));
        }
        // else: in-place update of a resident block — occupancy unchanged.
        ev
    }

    /// LLC invalidate that keeps the per-region occupancy counters in sync.
    fn llc_invalidate(&mut self, block: BlockAddr) -> Option<Line> {
        let line = self.llc.invalidate(block);
        if line.is_some() {
            self.llc_occ.sub(self.map.classify_block(block));
        }
        line
    }

    /// Installs a block into the LLC (victim path / DDIO allocation),
    /// handling the displaced victim's writeback. Returns the write-path
    /// stall to charge to the triggering access.
    fn llc_install(
        &mut self,
        block: BlockAddr,
        dirty: bool,
        origin: LineOrigin,
        mask: WayMask,
        now: Cycle,
    ) -> Cycle {
        if let Some(ev) = self.llc_insert(block, dirty, origin, mask) {
            if ev.line.origin == LineOrigin::Nic && ev.line.dirty {
                match origin {
                    LineOrigin::Nic => self.stats.nic_lines_evicted_by_nic += 1,
                    LineOrigin::Cpu => self.stats.nic_lines_evicted_by_cpu += 1,
                }
            }
            if ev.line.dirty {
                return self.writeback(ev.line.block, now);
            }
        }
        0
    }

    /// Handles an L2 eviction: back-invalidates the core's L1 (inclusion),
    /// updates the directory, and spills the line into the LLC. Returns the
    /// write-path stall to charge to the triggering access.
    fn handle_l2_eviction(&mut self, core: u16, block: BlockAddr, mut dirty: bool, now: Cycle) -> Cycle {
        if let Some(l1line) = self.l1[core as usize].invalidate(block) {
            dirty |= l1line.dirty;
        }
        self.dir.remove_sharer(block, core);
        // Victim LLC: L2 evictions (clean or dirty) allocate in the LLC,
        // using the core's CPU insertion mask — deliberately NOT the DDIO
        // mask, which is what lets prematurely-evicted-and-reread network
        // buffers "run away" into non-DDIO ways (§VI-C). The strict-
        // partition ablation excludes the DDIO ways instead.
        let mut mask = self.cpu_masks[core as usize];
        if self.cfg.ddio_strict_partition {
            let outside = WayMask(mask.0 & !self.ddio_mask.0);
            if outside.count_in(self.cfg.llc.ways) > 0 {
                mask = outside;
            }
        }
        self.llc_install(block, dirty, LineOrigin::Cpu, mask, now)
    }

    /// Installs a block into a core's private L1+L2 after a fill. Returns
    /// the write-path stall to charge to the triggering access.
    fn fill_private(&mut self, core: u16, block: BlockAddr, dirty: bool, now: Cycle) -> Cycle {
        let c = core as usize;
        let mut stall = 0;
        if let Some(ev) = self.l2[c].insert(block, dirty, LineOrigin::Cpu, WayMask::ALL) {
            // The eviction chain probes the victim's directory slot and LLC
            // set — addresses only known now. Start both loads before the L1
            // back-invalidate so the two misses overlap instead of queueing.
            self.dir.prefetch(ev.line.block);
            self.llc.prefetch(ev.line.block);
            stall = self.handle_l2_eviction(core, ev.line.block, ev.line.dirty, now);
        }
        if let Some(ev) = self.l1[c].insert(block, dirty, LineOrigin::Cpu, WayMask::ALL) {
            // Inclusion guarantees the evicted L1 line is still in L2;
            // propagate dirtiness there.
            if ev.line.dirty && !self.l2[c].mark_dirty(ev.line.block) {
                debug_assert!(false, "L1 ⊆ L2 inclusion violated");
                self.stats.dirty_dropped_unexpectedly += 1;
            }
        }
        self.dir.add_sharer(block, core);
        stall
    }

    /// One CPU block access. Returns the latency seen by the core and
    /// whether DRAM was accessed.
    fn cpu_block_access(
        &mut self,
        core: u16,
        block: BlockAddr,
        now: Cycle,
        write: bool,
    ) -> (Cycle, bool) {
        let c = core as usize;
        self.stats.block_accesses += 1;
        let mut latency = self.cfg.l1.latency;
        // Dirty-hit fast path: under the default non-inclusive LLC semantics
        // every dirty private line was created by a write that also made this
        // core the exclusive dirty owner, and any event that could add a
        // sharer or transfer ownership (remote read/write, NIC overwrite,
        // sweep) cleans or invalidates the private copy first. So a write
        // that hits an already-dirty line needs no L2 dirty propagation, no
        // remote-sharer resolution, and no directory update. The strict-
        // victim ablation breaks the invariant (it installs dirty lines
        // without claiming ownership), so it always takes the slow path.
        let dirty_hit_exclusive = self.cfg.llc_read_hit_retains;

        // L1.
        if let Some(line) = self.l1[c].lookup(block) {
            if write && !(line.dirty && dirty_hit_exclusive) {
                self.l1[c].mark_dirty(block);
                self.l2[c].mark_dirty(block);
                // RFO upgrade: a retained LLC copy (left behind by a read
                // hit or another core's L2 eviction) is stale the moment
                // this write completes. Drop it — without this, a later
                // LLC lookup would hit the stale line before ever
                // consulting the dirty owner, and a retained *dirty* line
                // would make two dirty copies race their writebacks.
                self.llc_invalidate(block);
                self.resolve_remote_sharers(core, block, now);
                self.dir.set_dirty_owner(block, core);
            }
            return (latency, false);
        }

        // L2.
        latency += self.cfg.l2.latency;
        if let Some(line) = self.l2[c].lookup(block) {
            if let Some(ev) = self.l1[c].insert(block, line.dirty, LineOrigin::Cpu, WayMask::ALL) {
                if ev.line.dirty {
                    let present = self.l2[c].mark_dirty(ev.line.block);
                    debug_assert!(present, "L1 ⊆ L2 inclusion violated");
                }
            }
            if write && !(line.dirty && dirty_hit_exclusive) {
                self.l1[c].mark_dirty(block);
                self.l2[c].mark_dirty(block);
                // RFO upgrade: a retained LLC copy (left behind by a read
                // hit or another core's L2 eviction) is stale the moment
                // this write completes. Drop it — without this, a later
                // LLC lookup would hit the stale line before ever
                // consulting the dirty owner, and a retained *dirty* line
                // would make two dirty copies race their writebacks.
                self.llc_invalidate(block);
                self.resolve_remote_sharers(core, block, now);
                self.dir.set_dirty_owner(block, core);
            }
            return (latency, false);
        }

        // Beyond the private caches: NoC hop + LLC lookup. Classification is
        // deferred to here — the L1/L2 hits above never need it.
        let kind = self.map.classify_block(block);
        latency += self.cfg.noc_latency + self.cfg.llc.latency;

        // Ideal-DDIO short-circuit: network blocks always "hit" in the
        // infinite network cache and are never installed anywhere.
        if self.cfg.injection == InjectionPolicy::Ideal && Self::is_network(kind) {
            self.stats.llc_hits += 1;
            return (latency, false);
        }

        // LLC. Non-inclusive (Table I): on a read hit the LLC *retains* the
        // line — crucially including its dirty state when the NIC wrote it —
        // and hands a clean copy to the private caches. This is what makes
        // consumed network buffers accumulate as dirty lines in the DDIO
        // ways until eviction (§IV-A). A write hit migrates the line out
        // (exclusive ownership).
        if let Some(line) = self.llc.lookup(block) {
            self.stats.llc_hits += 1;
            if write {
                self.llc_invalidate(block);
                latency += self.fill_private(core, block, line.dirty, now);
                self.l1[c].mark_dirty(block);
                self.l2[c].mark_dirty(block);
                self.resolve_remote_sharers(core, block, now);
                self.dir.set_dirty_owner(block, core);
            } else if self.cfg.llc_read_hit_retains {
                latency += self.fill_private(core, block, false, now);
            } else {
                // Strict-victim ablation: the hit migrates the line (and its
                // dirty state) out of the LLC entirely.
                self.llc_invalidate(block);
                latency += self.fill_private(core, block, line.dirty, now);
            }
            return (latency, false);
        }

        // Remote private caches (cache-to-cache transfer).
        if let Some(owner) = self.dir.dirty_owner(block) {
            if owner != core {
                // MESI M→S downgrade: forward data, write back to memory.
                self.stats.c2c_transfers += 1;
                self.clean_private_copy(owner, block);
                self.dir.clear_dirty(block);
                self.writeback(block, now);
                latency += self.cfg.noc_latency; // extra hop to the owner
                latency += self.fill_private(core, block, false, now);
                if write {
                    self.l1[c].mark_dirty(block);
                    self.l2[c].mark_dirty(block);
                    self.resolve_remote_sharers(core, block, now);
                    self.dir.set_dirty_owner(block, core);
                }
                return (latency, false);
            }
        } else if self.dir.shared_elsewhere(block, core) {
            // Clean copy in another core's private cache: forward on-die.
            self.stats.c2c_transfers += 1;
            latency += self.cfg.noc_latency;
            latency += self.fill_private(core, block, false, now);
            if write {
                self.l1[c].mark_dirty(block);
                self.l2[c].mark_dirty(block);
                self.resolve_remote_sharers(core, block, now);
                self.dir.set_dirty_owner(block, core);
            }
            return (latency, false);
        }

        // Miss everywhere: DRAM.
        self.stats.llc_misses += 1;
        let class = if write && kind.is_tx() {
            TrafficClass::CpuTxRdWr
        } else {
            Self::cpu_read_class(kind)
        };
        self.stats.dram_reads.bump(class);
        self.stats.note_core_dram_read(core);
        if let Some(chk) = self.check.as_deref_mut() {
            chk.on_dram_fill(block);
        }
        let acc = self.dram.access(block, now, DramOp::Read);
        latency += acc.latency;
        self.record_span(SpanKind::DramQueue, core, now, now + acc.latency);
        latency += self.fill_private(core, block, false, now);
        if write {
            self.l1[c].mark_dirty(block);
            self.l2[c].mark_dirty(block);
            self.dir.set_dirty_owner(block, core);
        }
        // Optional next-line prefetcher: fetch block+1 into L2 in the
        // background (bandwidth is consumed; the demand access does not
        // wait). Skipped when the next block is already cached anywhere the
        // core could hit it cheaply.
        if self.cfg.l2_next_line_prefetch && !write {
            let next = block.step(1);
            if self.l2[c].peek(next).is_none()
                && self.llc.peek(next).is_none()
                && !self.dir.any_sharer(next)
            {
                let kind_next = self.map.classify_block(next);
                if !(self.cfg.injection == InjectionPolicy::Ideal && Self::is_network(kind_next)) {
                    self.stats.dram_reads.bump(Self::cpu_read_class(kind_next));
                    if let Some(chk) = self.check.as_deref_mut() {
                        chk.on_dram_fill(next);
                    }
                    self.dram.access(next, now, DramOp::Read);
                    if let Some(ev) =
                        self.l2[c].insert(next, false, LineOrigin::Cpu, WayMask::ALL)
                    {
                        self.handle_l2_eviction(core, ev.line.block, ev.line.dirty, now);
                    }
                    self.dir.add_sharer(next, core);
                }
            }
        }
        (latency, true)
    }

    /// Invalidates other cores' copies before `core` writes (MESI upgrade).
    fn resolve_remote_sharers(&mut self, core: u16, block: BlockAddr, _now: Cycle) {
        for other in self.dir.others(block, core) {
            self.clean_private_copy(other, block);
            self.invalidate_private(other, block);
            self.dir.remove_sharer(block, other);
            self.stats.invalidations += 1;
        }
    }

    fn invalidate_private(&mut self, core: u16, block: BlockAddr) {
        let d1 = self.l1[core as usize].invalidate(block);
        let d2 = self.l2[core as usize].invalidate(block);
        if d1.is_some_and(|l| l.dirty) || d2.is_some_and(|l| l.dirty) {
            self.stats.dirty_dropped_unexpectedly += 1;
        }
    }

    /// Invalidates a core's private copies when the NIC fully overwrites the
    /// block; dropping dirty data is safe here.
    fn invalidate_private_for_overwrite(&mut self, core: u16, block: BlockAddr) {
        let d1 = self.l1[core as usize].invalidate(block);
        let d2 = self.l2[core as usize].invalidate(block);
        if d1.is_some_and(|l| l.dirty) || d2.is_some_and(|l| l.dirty) {
            self.stats.dirty_dropped_by_nic_overwrite += 1;
        }
    }

    /// Clears the dirty bit of a private copy without removing it (used on
    /// M→S downgrades; the data has been written back by the caller).
    fn clean_private_copy(&mut self, core: u16, block: BlockAddr) {
        let c = core as usize;
        if let Some(line) = self.l1[c].invalidate(block) {
            self.l1[c].insert(line.block, false, line.origin, WayMask::ALL);
        }
        if let Some(line) = self.l2[c].invalidate(block) {
            self.l2[c].insert(line.block, false, line.origin, WayMask::ALL);
        }
    }

    /// Prefetches the metadata a `cpu_block_access` for `block` will probe.
    /// The probes form a serial dependency chain (L1 set, then L2 set, then
    /// LLC set, then directory slot), each a likely host-memory stall;
    /// issuing all of a range's prefetches before touching the first block
    /// lets the host overlap the misses.
    #[inline]
    fn prefetch_block_metadata(&self, core: usize, block: BlockAddr) {
        self.l1[core].prefetch(block);
        self.l2[core].prefetch(block);
        self.llc.prefetch(block);
        self.dir.prefetch(block);
    }

    fn range_access(&mut self, core: u16, addr: Addr, len: u64, now: Cycle, write: bool) -> Access {
        let mut out = Access::default();
        let mut max_block_latency = 0;
        for block in blocks_of(addr, len) {
            self.prefetch_block_metadata(core as usize, block);
        }
        for block in blocks_of(addr, len) {
            let (lat, dram) = self.cpu_block_access(core, block, now, write);
            // The store is mirrored *after* the access: a write-allocate
            // RFO legitimately fills from DRAM first, then dirties.
            if write {
                if let Some(chk) = self.check.as_deref_mut() {
                    chk.on_cpu_write(block);
                }
            }
            max_block_latency = max_block_latency.max(lat);
            out.blocks += 1;
            if dram {
                out.dram_fetches += 1;
            }
        }
        out.latency = max_block_latency + out.blocks.saturating_sub(1) * self.cfg.block_issue_cost;
        out
    }

    /// CPU read of `[addr, addr+len)` by `core` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cpu_read(&mut self, core: u16, addr: Addr, len: u64, now: Cycle) -> Access {
        assert!((core as usize) < self.cfg.cores, "core id out of range");
        let acc = self.range_access(core, addr, len, now, false);
        self.trace_event(now, TraceKind::CpuRead, core, addr.block(), acc.blocks as u32, acc.latency);
        acc
    }

    /// CPU read of several independent blocks issued back-to-back (e.g. a
    /// pointer-free random-access loop with high memory-level parallelism,
    /// like X-Mem): the accesses overlap, so the observed latency is the
    /// slowest block plus per-block issue cost.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cpu_read_scatter(&mut self, core: u16, addrs: &[Addr], now: Cycle) -> Access {
        assert!((core as usize) < self.cfg.cores, "core id out of range");
        let mut out = Access::default();
        let mut max_block_latency = 0;
        for addr in addrs {
            self.prefetch_block_metadata(core as usize, addr.block());
        }
        for addr in addrs {
            let (lat, dram) = self.cpu_block_access(core, addr.block(), now, false);
            max_block_latency = max_block_latency.max(lat);
            out.blocks += 1;
            if dram {
                out.dram_fetches += 1;
            }
        }
        out.latency = max_block_latency + out.blocks.saturating_sub(1) * self.cfg.block_issue_cost;
        out
    }

    /// CPU write of `[addr, addr+len)` by `core` at cycle `now`
    /// (write-allocate with RFO semantics).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cpu_write(&mut self, core: u16, addr: Addr, len: u64, now: Cycle) -> Access {
        assert!((core as usize) < self.cfg.cores, "core id out of range");
        let acc = self.range_access(core, addr, len, now, true);
        self.trace_event(now, TraceKind::CpuWrite, core, addr.block(), acc.blocks as u32, acc.latency);
        acc
    }

    /// Cycles a DMA/DDIO writer must stall before injecting more data, given
    /// the memory system's current backlog. Models the PCIe/mesh
    /// backpressure that throttles a NIC when writebacks cannot drain —
    /// without it, posted eviction writes would grow without bound and
    /// starve DRAM readers.
    pub fn nic_backpressure(&self, now: Cycle) -> Cycle {
        const ALLOWANCE: Cycle = 2_000;
        self.dram.backlog(now).saturating_sub(ALLOWANCE)
    }

    /// NIC delivery of an arriving packet into `[addr, addr+len)` under the
    /// configured injection policy (full-block overwrites).
    pub fn nic_write(&mut self, addr: Addr, len: u64, now: Cycle) -> NicAccess {
        self.trace_event(now, TraceKind::NicWrite, u16::MAX, addr.block(), crate::addr::blocks_for_len(len) as u32, 0);
        if self.cfg.injection == InjectionPolicy::Ddio {
            // One instantaneous marker per delivery: the packet write-
            // allocated into the LLC's DDIO ways.
            self.record_span(SpanKind::LlcFill, u16::MAX, now, now);
        }
        let mut out = NicAccess::default();
        for block in blocks_of(addr, len) {
            self.llc.prefetch(block);
            self.dir.prefetch(block);
        }
        for block in blocks_of(addr, len) {
            out.blocks += 1;
            self.stats.block_accesses += 1;
            if let Some(chk) = self.check.as_deref_mut() {
                let is_rx = self.map.classify_block(block).is_rx();
                chk.on_nic_write(block, is_rx, self.cfg.injection);
            }
            // The NIC fully overwrites the block: all CPU copies become
            // stale and are invalidated without writeback.
            for core in self.dir.drop_block(block) {
                self.invalidate_private_for_overwrite(core, block);
                self.stats.invalidations += 1;
            }
            match self.cfg.injection {
                InjectionPolicy::Ideal => {}
                InjectionPolicy::Dma => {
                    self.llc_invalidate(block);
                    self.dram.access(block, now, DramOp::Write);
                    self.stats.dram_writes.bump(TrafficClass::NicRxWr);
                    out.dram_transfers += 1;
                }
                InjectionPolicy::Ddio => {
                    // DDIO (re-)confines network lines to its ways on every
                    // write: a stale copy of the buffer anywhere in the LLC
                    // is dropped (the write fully overwrites the block, so
                    // no writeback is needed) and the fresh data allocates
                    // within the DDIO mask. Without re-confinement, dead
                    // buffer lines that escaped into non-DDIO ways via
                    // private-cache spills would turn the whole LLC into a
                    // persistent ring cache, which neither real DDIO nor
                    // the paper's baseline exhibits.
                    if let Some(old) = self.llc_invalidate(block) {
                        if old.dirty {
                            self.stats.dirty_dropped_by_nic_overwrite += 1;
                        }
                        self.stats.ddio_hits += 1;
                    } else {
                        self.stats.ddio_allocs += 1;
                    }
                    self.llc_install(block, true, LineOrigin::Nic, self.ddio_mask, now);
                }
            }
        }
        out
    }

    /// NIC read of `[addr, addr+len)` on the transmit path.
    pub fn nic_read(&mut self, addr: Addr, len: u64, now: Cycle) -> NicAccess {
        self.trace_event(now, TraceKind::NicRead, u16::MAX, addr.block(), crate::addr::blocks_for_len(len) as u32, 0);
        let mut out = NicAccess::default();
        for block in blocks_of(addr, len) {
            out.blocks += 1;
            self.stats.block_accesses += 1;
            let kind = self.map.classify_block(block);
            match self.cfg.injection {
                InjectionPolicy::Ideal if Self::is_network(kind) => {}
                InjectionPolicy::Dma => {
                    // The NIC reads from DRAM; any dirty cached copy must be
                    // flushed first.
                    if let Some(owner) = self.dir.dirty_owner(block) {
                        self.clean_private_copy(owner, block);
                        self.dir.clear_dirty(block);
                        self.writeback(block, now);
                    } else if self.llc.peek(block).is_some_and(|l| l.dirty) {
                        self.llc_invalidate(block);
                        self.llc_insert(block, false, LineOrigin::Cpu, WayMask::ALL);
                        self.writeback(block, now);
                    }
                    if let Some(chk) = self.check.as_deref_mut() {
                        chk.on_dram_fill(block);
                    }
                    let acc = self.dram.access(block, now, DramOp::Read);
                    self.record_span(SpanKind::DramQueue, u16::MAX, now, now + acc.latency);
                    self.stats.dram_reads.bump(TrafficClass::NicTxRd);
                    out.dram_transfers += 1;
                }
                InjectionPolicy::Ddio | InjectionPolicy::Ideal => {
                    if self.dir.any_sharer(block) {
                        // On-die forward from a private cache (dirty or
                        // clean); the private copy's state is unchanged.
                        self.stats.c2c_transfers += 1;
                    } else if self.llc.lookup(block).is_some() {
                        self.stats.llc_hits += 1;
                    } else {
                        self.stats.llc_misses += 1;
                        if let Some(chk) = self.check.as_deref_mut() {
                            chk.on_dram_fill(block);
                        }
                        let acc = self.dram.access(block, now, DramOp::Read);
                        self.record_span(SpanKind::DramQueue, u16::MAX, now, now + acc.latency);
                        self.stats.dram_reads.bump(TrafficClass::NicTxRd);
                        out.dram_transfers += 1;
                    }
                }
            }
        }
        out
    }

    /// Sweeps one block: every cached copy is invalidated and *no* dirty data
    /// is written back (`clsweep`, §V-B). Returns the number of dirty copies
    /// whose writeback was suppressed.
    pub fn sweep_block(&mut self, block: BlockAddr) -> u64 {
        self.stats.block_accesses += 1;
        if let Some(chk) = self.check.as_deref_mut() {
            let is_rx = self.map.classify_block(block).is_rx();
            chk.on_sweep(block, is_rx);
        }
        let mut saved = 0;
        for core in self.dir.drop_block(block) {
            let c = core as usize;
            let d1 = self.l1[c].invalidate(block).is_some_and(|l| l.dirty);
            let d2 = self.l2[c].invalidate(block).is_some_and(|l| l.dirty);
            if d1 || d2 {
                saved += 1;
            }
            self.stats.swept_blocks += 1;
        }
        if let Some(line) = self.llc_invalidate(block) {
            self.stats.swept_blocks += 1;
            if line.dirty {
                saved += 1;
            }
        }
        self.stats.sweep_saved_writebacks += saved;
        saved
    }

    /// Sweeps `[addr, addr+len)` and returns the latency charged to the
    /// issuing core (the `relinquish` library call of §V-A compiles to one
    /// `clsweep` per block; sweeps are pipelined).
    pub fn sweep_range(&mut self, addr: Addr, len: u64, now: Cycle) -> Cycle {
        let mut blocks = 0;
        for block in blocks_of(addr, len) {
            self.sweep_block(block);
            blocks += 1;
        }
        let latency = blocks * self.cfg.sweep_issue_cost;
        self.trace_event(now, TraceKind::Sweep, u16::MAX, addr.block(), blocks as u32, latency);
        self.record_span(SpanKind::Sweep, u16::MAX, now, now + latency);
        latency
    }

    /// Flushes (CLWB-style) `[addr, addr+len)`: dirty copies are written
    /// back to memory and all copies become clean but stay resident. Models
    /// the kernel mitigation for the page-recycling privacy concern (§V-B).
    pub fn flush_range(&mut self, addr: Addr, len: u64, now: Cycle) -> u64 {
        let mut written = 0;
        for block in blocks_of(addr, len) {
            self.stats.block_accesses += 1;
            let mut dirty = false;
            if let Some(owner) = self.dir.dirty_owner(block) {
                self.clean_private_copy(owner, block);
                self.dir.clear_dirty(block);
                dirty = true;
            }
            if self.llc.peek(block).is_some_and(|l| l.dirty) {
                self.llc_invalidate(block);
                self.llc_insert(block, false, LineOrigin::Cpu, WayMask::ALL);
                dirty = true;
            }
            if dirty {
                self.writeback(block, now);
                written += 1;
            }
        }
        written
    }

    /// OS-scheduled DMA write of `[addr, addr+len)` that bypasses the cache
    /// hierarchy: cached copies are invalidated (the DMA fully overwrites the
    /// range) and the data lands in DRAM. Models the kernel zeroing a page
    /// "by scheduling a conventional DMA that does not make use of DDIO",
    /// the first mitigation for the page-recycling privacy concern (§V-B).
    pub fn dma_zero_range(&mut self, addr: Addr, len: u64, now: Cycle) -> u64 {
        let mut written = 0;
        for block in blocks_of(addr, len) {
            self.stats.block_accesses += 1;
            if let Some(chk) = self.check.as_deref_mut() {
                chk.on_dma_zero(block);
            }
            for core in self.dir.drop_block(block) {
                self.invalidate_private_for_overwrite(core, block);
                self.stats.invalidations += 1;
            }
            self.llc_invalidate(block);
            self.dram.access(block, now, DramOp::Write);
            self.stats
                .dram_writes
                .bump(Self::eviction_class(self.map.classify_block(block)));
            written += 1;
        }
        written
    }

    /// LLC lines currently holding blocks of the given region kind.
    ///
    /// O(region kinds), not O(LLC capacity): incremental counters are
    /// maintained on every LLC insert/evict/invalidate, so periodic
    /// occupancy sampling costs nothing per line.
    pub fn llc_occupancy_of(&self, pred: impl Fn(RegionKind) -> bool) -> u64 {
        self.llc_occ.total_matching(pred)
    }

    /// LLC occupancy split by region category in one pass over the
    /// incremental counters — the shape the in-run telemetry sampler
    /// snapshots every cadence tick.
    pub fn llc_occupancy_by_region(&self) -> LlcOccupancy {
        let mut occ = LlcOccupancy::default();
        for (i, &count) in self.llc_occ.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            match OccupancyCounters::kind_of(i) {
                RegionKind::Rx { .. } => occ.rx += count,
                RegionKind::Tx { .. } => occ.tx += count,
                RegionKind::App => occ.app += count,
                RegionKind::Other => occ.other += count,
            }
        }
        occ
    }

    /// Whether a block is resident anywhere in the hierarchy (tests).
    pub fn resident_anywhere(&self, block: BlockAddr) -> bool {
        self.llc.peek(block).is_some()
            || self.dir.any_sharer(block)
            || self
                .l1
                .iter()
                .chain(self.l2.iter())
                .any(|c| c.peek(block).is_some())
    }

    /// Direct access to a core's private L1 (tests/diagnostics).
    pub fn l1_of(&self, core: u16) -> &SetAssocCache {
        &self.l1[core as usize]
    }

    /// Direct access to a core's private L2 (tests/diagnostics).
    pub fn l2_of(&self, core: u16) -> &SetAssocCache {
        &self.l2[core as usize]
    }

    /// Core id range helper.
    pub fn cores(&self) -> Range<u16> {
        0..self.cfg.cores as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(policy: InjectionPolicy, ddio_ways: u32) -> MemorySystem {
        let cfg = MachineConfig::tiny_for_tests()
            .with_injection(policy)
            .with_ddio_ways(ddio_ways);
        MemorySystem::new(cfg)
    }

    fn rx_region(mem: &mut MemorySystem, bytes: u64) -> Addr {
        mem.address_map_mut().alloc(bytes, RegionKind::Rx { core: 0 })
    }

    #[test]
    fn paper_default_matches_table_1() {
        let cfg = MachineConfig::paper_default();
        assert_eq!(cfg.cores, 24);
        assert_eq!(cfg.l1.size_bytes, 48 * 1024);
        assert_eq!(cfg.l1.ways, 12);
        assert_eq!(cfg.l1.latency, 4);
        assert_eq!(cfg.l2.size_bytes, 1280 * 1024);
        assert_eq!(cfg.l2.ways, 20);
        assert_eq!(cfg.l2.latency, 14);
        assert_eq!(cfg.llc.size_bytes, 36 * 1024 * 1024);
        assert_eq!(cfg.llc.ways, 12);
        assert_eq!(cfg.llc.latency, 35);
        assert_eq!(cfg.noc_latency, 8);
        assert_eq!(cfg.dram.channels, 4);
    }

    #[test]
    fn l1_hit_after_first_read() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = mem.address_map_mut().alloc(64, RegionKind::App);
        let first = mem.cpu_read(0, a, 64, 0);
        assert_eq!(first.dram_fetches, 1, "cold miss goes to DRAM");
        let second = mem.cpu_read(0, a, 64, 1000);
        assert_eq!(second.dram_fetches, 0);
        assert_eq!(second.latency, mem.config().l1.latency);
    }

    #[test]
    fn ddio_write_then_cpu_read_hits_llc() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = rx_region(&mut mem, 1024);
        let w = mem.nic_write(a, 1024, 0);
        assert_eq!(w.blocks, 16);
        assert_eq!(w.dram_transfers, 0, "DDIO does not touch DRAM");
        let r = mem.cpu_read(0, a, 1024, 100);
        assert_eq!(r.dram_fetches, 0, "packet found in LLC");
        assert!(mem.stats().llc_hits >= 16);
    }

    #[test]
    fn dma_write_goes_to_dram_and_read_misses() {
        let mut mem = system(InjectionPolicy::Dma, 2);
        let a = rx_region(&mut mem, 512);
        let w = mem.nic_write(a, 512, 0);
        assert_eq!(w.dram_transfers, 8);
        assert_eq!(mem.stats().dram_writes[TrafficClass::NicRxWr], 8);
        let r = mem.cpu_read(0, a, 512, 100);
        assert_eq!(r.dram_fetches, 8);
        assert_eq!(mem.stats().dram_reads[TrafficClass::CpuRxRd], 8);
    }

    #[test]
    fn ideal_network_data_never_touches_dram_or_caches() {
        let mut mem = system(InjectionPolicy::Ideal, 2);
        let rx = rx_region(&mut mem, 1024);
        let tx = mem.address_map_mut().alloc(1024, RegionKind::Tx { core: 0 });
        mem.nic_write(rx, 1024, 0);
        mem.cpu_read(0, rx, 1024, 10);
        mem.cpu_write(0, tx, 1024, 20);
        mem.nic_read(tx, 1024, 30);
        assert_eq!(mem.stats().dram_accesses(), 0);
        assert!(!mem.resident_anywhere(rx.block()));
        assert_eq!(mem.llc().resident_lines(), 0);
    }

    #[test]
    fn ddio_eviction_of_consumed_buffer_is_rx_evct() {
        // 1-way-DDIO tiny LLC: hammer more RX blocks than the DDIO ways
        // hold; evicted dirty NIC lines must be counted as RX Evct.
        let mut mem = system(InjectionPolicy::Ddio, 1);
        let a = rx_region(&mut mem, 64 * 64 * 8); // far exceeds 1 LLC way
        mem.nic_write(a, 64 * 64 * 8, 0);
        assert!(
            mem.stats().dram_writes[TrafficClass::RxEvct] > 0,
            "dirty consumed buffers must be written back"
        );
        assert_eq!(mem.stats().dram_writes[TrafficClass::NicRxWr], 0);
    }

    #[test]
    fn sweep_suppresses_writebacks() {
        let mut mem = system(InjectionPolicy::Ddio, 1);
        let a = rx_region(&mut mem, 64 * 64 * 8);
        // Write one block, sweep it, and reuse the slot: the allocation
        // finds the swept (invalid) way, so reuse causes no writeback.
        mem.nic_write(a, 64, 0);
        let before = mem.stats().dram_writes[TrafficClass::RxEvct];
        mem.sweep_range(a, 64, 10);
        assert!(mem.stats().sweep_saved_writebacks > 0);
        assert!(!mem.resident_anywhere(a.block()));
        mem.nic_write(a, 64, 20);
        assert_eq!(
            mem.stats().dram_writes[TrafficClass::RxEvct],
            before,
            "no RX writebacks after sweeping"
        );
        // Baseline contrast: without a sweep, a dirty line evicted by a
        // colliding allocation *is* written back. Force the collision by
        // reusing the same block (re-confinement invalidates in place, so
        // write a second distinct round over the whole region instead).
        let mut baseline = system(InjectionPolicy::Ddio, 1);
        let b = {
            let m = baseline.address_map_mut();
            m.alloc(64 * 64 * 8, RegionKind::Rx { core: 0 })
        };
        baseline.nic_write(b, 64 * 64 * 8, 0);
        assert!(
            baseline.stats().dram_writes[TrafficClass::RxEvct] > 0,
            "unswept churn must produce writebacks"
        );
    }

    #[test]
    fn sweep_invalidates_private_copies_without_writeback() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = mem.address_map_mut().alloc(64, RegionKind::App);
        mem.cpu_write(0, a, 64, 0); // dirty in core 0's L1/L2
        let dram_before = mem.stats().dram_accesses();
        let saved = mem.sweep_block(a.block());
        assert_eq!(saved, 1);
        assert!(!mem.resident_anywhere(a.block()));
        assert_eq!(mem.stats().dram_accesses(), dram_before);
        // Re-read must go to DRAM (the swept value is lost).
        let r = mem.cpu_read(0, a, 64, 100);
        assert_eq!(r.dram_fetches, 1);
    }

    #[test]
    fn cpu_write_dirties_and_later_eviction_writes_back() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let tx = mem.address_map_mut().alloc(64, RegionKind::Tx { core: 0 });
        mem.cpu_write(0, tx, 64, 0);
        // Thrash core 0's private caches and the LLC with app data.
        let app = mem.address_map_mut().alloc(64 * 64 * 16, RegionKind::App);
        mem.cpu_read(0, app, 64 * 64 * 16, 100);
        assert!(
            mem.stats().dram_writes[TrafficClass::TxEvct] > 0,
            "dirty TX buffer must eventually be written back"
        );
    }

    #[test]
    fn nic_tx_read_finds_private_dirty_copy() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let tx = mem.address_map_mut().alloc(128, RegionKind::Tx { core: 0 });
        mem.cpu_write(0, tx, 128, 0);
        let r = mem.nic_read(tx, 128, 10);
        assert_eq!(r.dram_transfers, 0, "forwarded on-die");
        assert!(mem.stats().c2c_transfers >= 2);
    }

    #[test]
    fn dma_nic_tx_read_flushes_dirty_copy() {
        let mut mem = system(InjectionPolicy::Dma, 2);
        let tx = mem.address_map_mut().alloc(64, RegionKind::Tx { core: 0 });
        mem.cpu_write(0, tx, 64, 0);
        let r = mem.nic_read(tx, 64, 10);
        assert_eq!(r.dram_transfers, 1);
        assert_eq!(mem.stats().dram_writes[TrafficClass::TxEvct], 1);
        assert_eq!(mem.stats().dram_reads[TrafficClass::NicTxRd], 1);
    }

    #[test]
    fn nic_write_invalidates_stale_cpu_copies() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let rx = rx_region(&mut mem, 64);
        mem.nic_write(rx, 64, 0);
        mem.cpu_read(0, rx, 64, 10); // copy now in core 0 private caches
        mem.nic_write(rx, 64, 20); // buffer reuse: overwrite
        assert!(mem.l1_of(0).peek(rx.block()).is_none());
        assert!(mem.l2_of(0).peek(rx.block()).is_none());
        assert!(mem.llc.peek(rx.block()).is_some());
    }

    #[test]
    fn ddio_mask_confines_nic_allocations() {
        let mut mem = system(InjectionPolicy::Ddio, 1);
        let rx = rx_region(&mut mem, 64 * 64 * 8);
        mem.nic_write(rx, 64 * 64 * 8, 0);
        // With 1 DDIO way of a 4-way LLC, NIC lines can hold at most 1/4 of
        // the LLC.
        let nic_lines = mem.llc.resident_by_origin(LineOrigin::Nic);
        let llc_lines = mem.llc.geometry().sets() as u64 * 4;
        assert!(nic_lines <= llc_lines / 4);
    }

    #[test]
    fn cross_core_sharing_forwards_dirty_data() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = mem.address_map_mut().alloc(64, RegionKind::App);
        mem.cpu_write(0, a, 64, 0);
        let r = mem.cpu_read(1, a, 64, 100);
        assert_eq!(r.dram_fetches, 0, "dirty data forwarded, not re-read");
        assert_eq!(mem.stats().c2c_transfers, 1);
        // MESI downgrade wrote the data back.
        assert_eq!(mem.stats().dram_writes[TrafficClass::OtherEvct], 1);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = mem.address_map_mut().alloc(64, RegionKind::App);
        mem.cpu_read(0, a, 64, 0);
        mem.cpu_read(1, a, 64, 10);
        mem.cpu_write(1, a, 64, 20);
        assert!(mem.l1_of(0).peek(a.block()).is_none());
        assert!(mem.l2_of(0).peek(a.block()).is_none());
        assert!(mem.stats().invalidations >= 1);
    }

    #[test]
    fn flush_range_writes_back_and_keeps_clean_copy() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = mem.address_map_mut().alloc(128, RegionKind::App);
        mem.cpu_write(0, a, 128, 0);
        let written = mem.flush_range(a, 128, 10);
        assert_eq!(written, 2);
        assert_eq!(mem.stats().dram_writes[TrafficClass::OtherEvct], 2);
        // Copies survive, now clean: a sweep saves nothing.
        assert!(mem.resident_anywhere(a.block()));
        assert_eq!(mem.sweep_block(a.block()), 0);
    }

    #[test]
    fn llc_read_hit_retains_dirty_line() {
        // Non-inclusive LLC (Table I): a CPU *read* hit hands out a clean
        // copy but keeps the line — including the dirty state the NIC wrote.
        // This is what makes consumed buffers accumulate in the DDIO ways.
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let rx = rx_region(&mut mem, 64);
        mem.nic_write(rx, 64, 0);
        mem.cpu_read(0, rx, 64, 10);
        let line = mem.llc.peek(rx.block()).expect("line retained");
        assert!(line.dirty, "dirty state stays with the LLC copy");
        assert!(mem.l2_of(0).peek(rx.block()).is_some_and(|l| !l.dirty));
    }

    #[test]
    fn llc_write_hit_migrates_line_out() {
        // A write needs exclusive ownership: the LLC copy is invalidated and
        // the dirty line lives in the writer's private caches.
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = mem.address_map_mut().alloc(64, RegionKind::App);
        // Park the line in the LLC via an L2 eviction path: write it, then
        // flush it out of the private caches by sweeping L1/L2 only — easier:
        // use the NIC to place it (App region works the same way).
        mem.nic_write(a, 64, 0);
        assert!(mem.llc.peek(a.block()).is_some());
        mem.cpu_write(0, a, 64, 10);
        assert!(
            mem.llc.peek(a.block()).is_none(),
            "write hit migrates the line to the writer"
        );
        assert!(mem.l1_of(0).peek(a.block()).is_some_and(|l| l.dirty));
    }

    #[test]
    fn multi_block_access_overlaps_latency() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let a = mem.address_map_mut().alloc(1024, RegionKind::App);
        let acc = mem.cpu_read(0, a, 1024, 0);
        assert_eq!(acc.blocks, 16);
        // Far less than 16 serialized DRAM accesses.
        let serialized = 16 * mem.config().dram.unloaded_latency();
        assert!(acc.latency < serialized);
    }

    #[test]
    fn llc_occupancy_probe() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let rx = rx_region(&mut mem, 64 * 8);
        mem.nic_write(rx, 64 * 8, 0);
        assert_eq!(mem.llc_occupancy_of(|k| k.is_rx()), 8);
        assert_eq!(mem.llc_occupancy_of(|k| k.is_tx()), 0);
    }

    #[test]
    fn llc_occupancy_by_region_agrees_with_predicates() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let rx = rx_region(&mut mem, 64 * 8);
        mem.nic_write(rx, 64 * 8, 0);
        let app = mem.address_map_mut().alloc(64 * 4, RegionKind::App);
        mem.cpu_read(0, app, 64 * 4, 100);
        let occ = mem.llc_occupancy_by_region();
        assert_eq!(occ.rx, mem.llc_occupancy_of(|k| k.is_rx()));
        assert_eq!(occ.tx, mem.llc_occupancy_of(|k| k.is_tx()));
        assert_eq!(occ.app, mem.llc_occupancy_of(|k| k == RegionKind::App));
        assert_eq!(occ.other, mem.llc_occupancy_of(|k| k == RegionKind::Other));
        assert_eq!(occ.total(), mem.llc_occupancy_of(|_| true));
        assert_eq!(occ.rx, 8);
    }

    #[test]
    fn dirty_line_conservation() {
        // Every dirtied block must eventually reach DRAM (writeback),
        // still be cached dirty, or have been legitimately dropped by a
        // NIC overwrite or a sweep. Unexpected drops must be zero.
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let tx = mem.address_map_mut().alloc(64 * 64, RegionKind::Tx { core: 0 });
        let app = mem.address_map_mut().alloc(64 * 64 * 64, RegionKind::App);
        // Dirty the whole TX region once, then stream several LLC's worth
        // of app data through the hierarchy to flush it out.
        mem.cpu_write(0, tx, 64 * 64, 0);
        let mut t = 10_000;
        for round in 0..64u64 {
            mem.cpu_read(0, app.offset(round * 64 * 64), 64 * 64, t);
            t += 10_000;
        }
        assert_eq!(mem.stats().dirty_dropped_unexpectedly, 0);
        // Every dirty TX line was flushed to DRAM exactly once.
        assert_eq!(mem.stats().dram_writes[TrafficClass::TxEvct], 64);
    }

    #[test]
    fn nic_overwrite_drop_is_accounted() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let rx = rx_region(&mut mem, 64);
        // CPU dirties an RX block (e.g. in-place NF edit), then the NIC
        // overwrites the slot: the stale dirty copy is legally dropped.
        mem.nic_write(rx, 64, 0);
        mem.cpu_write(0, rx, 64, 10);
        mem.nic_write(rx, 64, 20);
        assert_eq!(mem.stats().dirty_dropped_by_nic_overwrite, 1);
        assert_eq!(mem.stats().dirty_dropped_unexpectedly, 0);
    }

    #[test]
    fn strict_partition_ablation_confines_cpu_spills() {
        let mut cfg = MachineConfig::tiny_for_tests().with_ddio_ways(2);
        cfg.ddio_strict_partition = true;
        let mut mem = MemorySystem::new(cfg);
        let rx = mem.address_map_mut().alloc(64 * 64 * 32, RegionKind::Rx { core: 0 });
        // Deliver packets, read them (migrating copies into L2), and churn
        // them out: with the strict partition, CPU spills of RX lines can
        // never enter the 2 DDIO ways.
        let mut t = 0;
        for i in 0..32u64 {
            let a = rx.offset(i * 64 * 64);
            mem.nic_write(a, 64 * 64, t);
            mem.cpu_read(0, a, 64 * 64, t + 100);
            t += 10_000;
        }
        assert_eq!(mem.stats().dirty_dropped_unexpectedly, 0);
    }

    #[test]
    fn victim_ablation_migrates_on_read_hit() {
        let mut cfg = MachineConfig::tiny_for_tests();
        cfg.llc_read_hit_retains = false;
        let mut mem = MemorySystem::new(cfg);
        let rx = mem.address_map_mut().alloc(64, RegionKind::Rx { core: 0 });
        mem.nic_write(rx, 64, 0);
        mem.cpu_read(0, rx, 64, 10);
        assert!(
            mem.llc().peek(rx.block()).is_none(),
            "victim ablation: read hit migrates the line out of the LLC"
        );
        assert!(mem.l2_of(0).peek(rx.block()).is_some_and(|l| l.dirty));
    }

    #[test]
    fn next_line_prefetch_warms_the_following_block() {
        let mut cfg = MachineConfig::tiny_for_tests();
        cfg.l2_next_line_prefetch = true;
        let mut mem = MemorySystem::new(cfg);
        let a = mem.address_map_mut().alloc(128, RegionKind::App);
        let first = mem.cpu_read(0, a, 64, 0);
        assert_eq!(first.dram_fetches, 1);
        // The prefetcher fetched the next block in the background ...
        assert!(mem.l2_of(0).peek(a.block().step(1)).is_some());
        // ... so the demand read of it is now a cheap private hit.
        let second = mem.cpu_read(0, a.offset(64), 64, 1_000);
        assert_eq!(second.dram_fetches, 0);
        assert!(second.latency <= mem.config().l2.latency + mem.config().l1.latency);
        // Bandwidth was spent: two DRAM reads for one demand fetch.
        assert_eq!(mem.stats().dram_reads.total(), 2);
    }

    #[test]
    fn srrip_llc_policy_is_applied() {
        let mut cfg = MachineConfig::tiny_for_tests();
        cfg.llc_replacement = crate::cache::ReplacementPolicy::Srrip;
        let mem = MemorySystem::new(cfg);
        assert_eq!(
            mem.llc().policy(),
            crate::cache::ReplacementPolicy::Srrip
        );
    }

    #[test]
    fn dma_zero_range_lands_in_memory_and_invalidates_caches() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        let page = mem.address_map_mut().alloc(256, RegionKind::Other);
        // Dirty the page through the caches first.
        mem.cpu_write(0, page, 256, 0);
        assert!(mem.resident_anywhere(page.block()));
        let written = mem.dma_zero_range(page, 256, 100);
        assert_eq!(written, 4);
        for i in 0..4 {
            assert!(!mem.resident_anywhere(page.block().step(i)));
        }
        // The zeros reached DRAM: a sweep now has nothing to suppress.
        assert_eq!(mem.sweep_block(page.block()), 0);
        assert_eq!(mem.stats().dram_writes[TrafficClass::OtherEvct], 4);
    }

    #[test]
    fn trace_records_full_buffer_lifecycle() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        mem.enable_trace(64);
        let rx = rx_region(&mut mem, 128);
        mem.nic_write(rx, 128, 10);
        mem.cpu_read(0, rx, 128, 20);
        mem.sweep_range(rx, 128, 30);
        let trace = mem.take_trace().expect("tracing enabled");
        use crate::trace::TraceKind as K;
        assert_eq!(trace.events_of(K::NicWrite).len(), 1);
        assert_eq!(trace.events_of(K::CpuRead).len(), 1);
        assert_eq!(trace.events_of(K::Sweep).len(), 1);
        let sweep = trace.events_of(K::Sweep)[0];
        assert_eq!(sweep.blocks, 2);
        assert_eq!(sweep.at, 30);
        // Tracing is off after take_trace.
        assert!(mem.trace().is_none());
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn rejects_bad_core() {
        let mut mem = system(InjectionPolicy::Ddio, 2);
        mem.cpu_read(99, Addr(0), 64, 0);
    }

    #[test]
    #[should_panic(expected = "DDIO ways must be within LLC associativity")]
    fn rejects_bad_ddio_ways() {
        let cfg = MachineConfig::tiny_for_tests().with_ddio_ways(99);
        MemorySystem::new(cfg);
    }
}
