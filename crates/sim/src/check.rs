//! Simulation correctness harness: a shadow-memory oracle plus the
//! bookkeeping behind [`MemorySystem::check_walk`]
//! (crate::hierarchy::MemorySystem::check_walk).
//!
//! Sweeper's headline optimisation is correctness-sensitive: dropping dirty
//! consumed-buffer blocks without a writeback (§V-B) must never lose live
//! data. After the directory and cache hot paths were rewritten for speed,
//! nothing end-to-end verified that the simulated memory *contents* are
//! still right — this module is that safety net, in the style of the
//! differential validation used by cycle-level simulators (zSim's
//! bound-weave verification, Ramulator's trace cross-checks).
//!
//! Two mechanisms, both off by default and costing one branch per hook when
//! disabled (the same discipline as span recording):
//!
//! * a **shadow-memory oracle** ([`CheckState`]): a flat block-granular
//!   reference store mirroring every NIC DMA write, CPU store, sweep,
//!   writeback, and DRAM fill. It tracks where the freshest copy of each
//!   block lives (DRAM, a dirty cache line, or nowhere because it was
//!   swept) and a pair of per-block versions — bumped on NIC delivery,
//!   latched on consumption — that detect sweeps of live (unconsumed) RX
//!   data and writebacks of blocks Sweeper claimed to drop;
//! * an **invariant checker** walked on demand over the real hierarchy
//!   (directory vs. private residency, L1 ⊆ L2 inclusion, single-dirty-copy,
//!   DDIO way confinement, occupancy-counter recounts, RX ring indices,
//!   DRAM timing-frontier monotonicity). The walk itself lives in
//!   `hierarchy.rs`, where the caches are; this module owns the
//!   configuration, the violation ledger, and the report.

use std::collections::HashMap;

use crate::addr::{blocks_of, Addr, BlockAddr};
use crate::hierarchy::InjectionPolicy;
use crate::telemetry::Record;
use crate::Cycle;

/// Configuration of the correctness harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Completed requests between on-demand invariant walks (the server also
    /// walks at the start of measurement and at the end of the run). Zero
    /// disables periodic walks, keeping only the drain-point ones.
    pub walk_every_requests: u64,
    /// Maximum retained human-readable violation details. Counts are always
    /// exact; details are a capped sample so a systematically-broken run
    /// cannot allocate without bound.
    pub max_details: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            walk_every_requests: 1024,
            max_details: 16,
        }
    }
}

/// Everything the harness can catch, one counter per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A sweep dropped an RX block the CPU had not yet consumed — the exact
    /// failure mode `clsweep`'s "only legal on consumed buffers" rule
    /// forbids (oracle invariant *a*).
    SweptLiveRx,
    /// The NIC overwrote an RX block whose previous packet was never
    /// consumed — a ring-accounting bug (slot reused while live).
    NicOverwroteLiveRx,
    /// A DRAM writeback of a block the oracle says was swept, with no
    /// intervening store: Sweeper claimed to drop the block without
    /// writeback, then the hierarchy wrote it back anyway (oracle
    /// invariant *b*).
    WritebackOfSweptBlock,
    /// A DRAM read fill while the oracle says the freshest copy is a dirty
    /// cache line — the fill returns stale data (oracle invariant *c*).
    StaleDramFill,
    /// A swept block is still resident somewhere in the hierarchy.
    SweptBlockResident,
    /// Directory sharer sets disagree with actual private-cache residency.
    DirectoryResidencyMismatch,
    /// A dirty owner is missing from its sharer set, or a dirty private
    /// line has no registered owner.
    DirtyOwnershipMismatch,
    /// A block is resident in a core's L1 but not its L2 (inclusion).
    InclusionViolation,
    /// More than one dirty copy of a block exists across LLC + private
    /// caches (single-writer violated; writeback order then decides whether
    /// DRAM ends up stale).
    MultipleDirtyCopies,
    /// A NIC-origin LLC line sits in a way the DDIO mask does not allow.
    DdioWayEscape,
    /// The incremental per-region LLC occupancy counters disagree with a
    /// from-scratch recount.
    OccupancyDrift,
    /// An RX ring's indices or slot occupancy are inconsistent
    /// (`recycled ≤ head ≤ tail ≤ recycled + capacity`, slots occupied iff
    /// in the live window).
    RingInconsistency,
    /// A DRAM bank or channel-bus frontier moved backwards between walks —
    /// an access was scheduled in the past.
    DramTimingRegression,
}

impl ViolationKind {
    /// Every kind, in report order.
    pub const ALL: [ViolationKind; 13] = [
        ViolationKind::SweptLiveRx,
        ViolationKind::NicOverwroteLiveRx,
        ViolationKind::WritebackOfSweptBlock,
        ViolationKind::StaleDramFill,
        ViolationKind::SweptBlockResident,
        ViolationKind::DirectoryResidencyMismatch,
        ViolationKind::DirtyOwnershipMismatch,
        ViolationKind::InclusionViolation,
        ViolationKind::MultipleDirtyCopies,
        ViolationKind::DdioWayEscape,
        ViolationKind::OccupancyDrift,
        ViolationKind::RingInconsistency,
        ViolationKind::DramTimingRegression,
    ];

    /// Stable snake_case name used in reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::SweptLiveRx => "swept_live_rx",
            ViolationKind::NicOverwroteLiveRx => "nic_overwrote_live_rx",
            ViolationKind::WritebackOfSweptBlock => "writeback_of_swept_block",
            ViolationKind::StaleDramFill => "stale_dram_fill",
            ViolationKind::SweptBlockResident => "swept_block_resident",
            ViolationKind::DirectoryResidencyMismatch => "directory_residency_mismatch",
            ViolationKind::DirtyOwnershipMismatch => "dirty_ownership_mismatch",
            ViolationKind::InclusionViolation => "inclusion_violation",
            ViolationKind::MultipleDirtyCopies => "multiple_dirty_copies",
            ViolationKind::DdioWayEscape => "ddio_way_escape",
            ViolationKind::OccupancyDrift => "occupancy_drift",
            ViolationKind::RingInconsistency => "ring_inconsistency",
            ViolationKind::DramTimingRegression => "dram_timing_regression",
        }
    }

    /// Position of this kind in [`ViolationKind::ALL`] — the index of its
    /// counter in aggregation arrays sized `[u64; ViolationKind::ALL.len()]`.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is listed in ALL")
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where the oracle believes a block's freshest data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum OracleLoc {
    /// DRAM holds the freshest copy (or the block was never written).
    #[default]
    Dram,
    /// Some cache line holds a dirty copy newer than DRAM.
    DirtyCached,
    /// The block was swept: every copy dropped, nothing may write it back
    /// and nothing should still hold it.
    Swept,
}

/// Per-block shadow state.
#[derive(Debug, Clone, Copy, Default)]
struct BlockObs {
    loc: OracleLoc,
    /// Bumped on every NIC delivery into the block.
    nic_version: u32,
    /// Latched to `nic_version` when the server consumes the packet; a
    /// sweep observing `nic_version > consumed_version` is dropping live
    /// data.
    consumed_version: u32,
}

/// The live harness state owned by a checked `MemorySystem`.
///
/// All hook methods are cheap (one hash probe); the expensive walks happen
/// only when `check_walk` is called at drain points.
#[derive(Debug, Clone)]
pub struct CheckState {
    cfg: CheckConfig,
    oracle: HashMap<u64, BlockObs>,
    counts: [u64; ViolationKind::ALL.len()],
    details: Vec<String>,
    /// Oracle events mirrored (NIC writes, CPU stores, sweeps, writebacks,
    /// DRAM fills, consumption marks).
    events: u64,
    /// Invariant walks performed.
    walks: u64,
    /// Last DRAM timing-frontier snapshot (per-channel bus then per-bank
    /// busy times); each element must be non-decreasing across walks.
    dram_frontier: Vec<Cycle>,
}

impl CheckState {
    /// Fresh state under `cfg`.
    pub fn new(cfg: CheckConfig) -> Self {
        Self {
            cfg,
            oracle: HashMap::new(),
            counts: [0; ViolationKind::ALL.len()],
            details: Vec::new(),
            events: 0,
            walks: 0,
            dram_frontier: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CheckConfig {
        &self.cfg
    }

    /// Records a violation with a capped human-readable detail.
    pub fn note_violation(&mut self, kind: ViolationKind, detail: impl FnOnce() -> String) {
        self.counts[kind.index()] += 1;
        if self.details.len() < self.cfg.max_details {
            self.details.push(format!("{}: {}", kind.name(), detail()));
        }
    }

    /// Counts one completed invariant walk.
    pub fn note_walk(&mut self) {
        self.walks += 1;
    }

    fn obs(&mut self, block: BlockAddr) -> &mut BlockObs {
        self.oracle.entry(block.0).or_default()
    }

    /// Mirrors a NIC delivery into `block`.
    pub fn on_nic_write(&mut self, block: BlockAddr, is_rx: bool, policy: InjectionPolicy) {
        self.events += 1;
        let o = self.obs(block);
        if is_rx && o.nic_version > o.consumed_version {
            let (nic, consumed) = (o.nic_version, o.consumed_version);
            self.note_violation(ViolationKind::NicOverwroteLiveRx, || {
                format!("{block}: delivery v{nic} never consumed (last consumed v{consumed})")
            });
        }
        let o = self.obs(block);
        o.nic_version += 1;
        // DDIO leaves the freshest copy dirty in the LLC; DMA lands it in
        // DRAM; Ideal's side-cache never interacts with DRAM at all, so
        // DRAM-resident is the neutral state that can't false-positive.
        o.loc = match policy {
            InjectionPolicy::Ddio => OracleLoc::DirtyCached,
            InjectionPolicy::Dma | InjectionPolicy::Ideal => OracleLoc::Dram,
        };
    }

    /// Mirrors a CPU store into `block`.
    pub fn on_cpu_write(&mut self, block: BlockAddr) {
        self.events += 1;
        self.obs(block).loc = OracleLoc::DirtyCached;
    }

    /// Mirrors a DRAM writeback of `block`.
    pub fn on_writeback(&mut self, block: BlockAddr) {
        self.events += 1;
        if self.obs(block).loc == OracleLoc::Swept {
            self.note_violation(ViolationKind::WritebackOfSweptBlock, || {
                format!("{block}: written back after being swept")
            });
        }
        self.obs(block).loc = OracleLoc::Dram;
    }

    /// Mirrors a sweep of `block`.
    pub fn on_sweep(&mut self, block: BlockAddr, is_rx: bool) {
        self.events += 1;
        let o = self.obs(block);
        if is_rx && o.nic_version > o.consumed_version {
            let (nic, consumed) = (o.nic_version, o.consumed_version);
            self.note_violation(ViolationKind::SweptLiveRx, || {
                format!("{block}: swept at delivery v{nic}, last consumed v{consumed}")
            });
        }
        self.obs(block).loc = OracleLoc::Swept;
    }

    /// Mirrors a DRAM read fill of `block`.
    pub fn on_dram_fill(&mut self, block: BlockAddr) {
        self.events += 1;
        let o = self.obs(block);
        match o.loc {
            OracleLoc::DirtyCached => {
                self.note_violation(ViolationKind::StaleDramFill, || {
                    format!("{block}: DRAM fill while a dirty cached copy is fresher")
                });
            }
            // A refetch of swept (or clean) data is plain DRAM data again.
            OracleLoc::Swept | OracleLoc::Dram => o.loc = OracleLoc::Dram,
        }
    }

    /// Mirrors an OS DMA-zero of `block`.
    pub fn on_dma_zero(&mut self, block: BlockAddr) {
        self.events += 1;
        self.obs(block).loc = OracleLoc::Dram;
    }

    /// Marks `[addr, addr+len)` as consumed: sweeps of these blocks are now
    /// legal until the next NIC delivery.
    pub fn mark_consumed(&mut self, addr: Addr, len: u64) {
        for block in blocks_of(addr, len) {
            self.events += 1;
            let o = self.obs(block);
            o.consumed_version = o.nic_version;
        }
    }

    /// Whether the oracle currently classifies `block` as swept — used by
    /// the walk to assert swept blocks are resident nowhere.
    pub fn is_swept(&self, block: BlockAddr) -> bool {
        self.oracle
            .get(&block.0)
            .is_some_and(|o| o.loc == OracleLoc::Swept)
    }

    /// Checks a DRAM timing-frontier snapshot against the previous one and
    /// stores it. Each element must be non-decreasing.
    pub fn check_dram_frontier(&mut self, frontier: Vec<Cycle>) {
        if self.dram_frontier.len() == frontier.len() {
            let prev = std::mem::take(&mut self.dram_frontier);
            for (i, (&prev, &cur)) in prev.iter().zip(&frontier).enumerate() {
                if cur < prev {
                    self.note_violation(ViolationKind::DramTimingRegression, || {
                        format!("frontier[{i}] went backwards: {prev} -> {cur}")
                    });
                }
            }
        }
        self.dram_frontier = frontier;
    }

    /// Snapshot of counts, walks, and details.
    pub fn report(&self) -> CheckReport {
        CheckReport {
            walks: self.walks,
            events: self.events,
            tracked_blocks: self.oracle.len() as u64,
            violations: ViolationKind::ALL
                .iter()
                .map(|k| (*k, self.counts[k.index()]))
                .collect(),
            details: self.details.clone(),
        }
    }
}

/// Pass/fail summary of one checked run, attached to the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Invariant walks performed.
    pub walks: u64,
    /// Oracle events mirrored.
    pub events: u64,
    /// Blocks the shadow store tracked.
    pub tracked_blocks: u64,
    /// Violation count per kind (every kind listed, zero or not).
    pub violations: Vec<(ViolationKind, u64)>,
    /// Capped human-readable samples of the first violations.
    pub details: Vec<String>,
}

impl CheckReport {
    /// Total violations across all kinds.
    pub fn total_violations(&self) -> u64 {
        self.violations.iter().map(|(_, n)| n).sum()
    }

    /// Whether the run passed every oracle and invariant assertion.
    pub fn passed(&self) -> bool {
        self.total_violations() == 0
    }

    /// Violation count for one kind.
    pub fn count(&self, kind: ViolationKind) -> u64 {
        self.violations
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// Structured export (the `check` section of run documents and the
    /// `sweeper.check/1` payload). Only nonzero kinds appear under
    /// `violations`, so a passing report is compact.
    pub fn to_record(&self) -> Record {
        let mut violations = Record::new();
        for (kind, n) in &self.violations {
            if *n > 0 {
                violations.push(kind.name(), *n);
            }
        }
        Record::new()
            .with("passed", self.passed())
            .with("walks", self.walks)
            .with("events", self.events)
            .with("tracked_blocks", self.tracked_blocks)
            .with("violations_total", self.total_violations())
            .with("violations", violations)
            .with(
                "details",
                self.details
                    .iter()
                    .map(|d| crate::telemetry::Value::from(d.as_str()))
                    .collect::<Vec<_>>(),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CheckState {
        CheckState::new(CheckConfig::default())
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut s = state();
        let b = Addr(1 << 30);
        // Deliver, consume, sweep: the legal Sweeper lifecycle.
        s.on_nic_write(b.block(), true, InjectionPolicy::Ddio);
        s.mark_consumed(b, 64);
        s.on_sweep(b.block(), true);
        // Slot reuse after the sweep.
        s.on_nic_write(b.block(), true, InjectionPolicy::Ddio);
        let r = s.report();
        assert!(r.passed(), "details: {:?}", r.details);
        assert_eq!(r.tracked_blocks, 1);
        assert!(r.events >= 4);
    }

    #[test]
    fn sweeping_unconsumed_rx_is_flagged() {
        let mut s = state();
        let b = BlockAddr(100);
        s.on_nic_write(b, true, InjectionPolicy::Ddio);
        s.on_sweep(b, true);
        let r = s.report();
        assert!(!r.passed());
        assert_eq!(r.count(ViolationKind::SweptLiveRx), 1);
        assert!(r.details[0].contains("swept_live_rx"));
    }

    #[test]
    fn overwriting_unconsumed_rx_is_flagged() {
        let mut s = state();
        let b = BlockAddr(7);
        s.on_nic_write(b, true, InjectionPolicy::Dma);
        s.on_nic_write(b, true, InjectionPolicy::Dma);
        assert_eq!(s.report().count(ViolationKind::NicOverwroteLiveRx), 1);
    }

    #[test]
    fn non_rx_blocks_have_no_liveness_rule() {
        let mut s = state();
        let b = BlockAddr(3);
        s.on_nic_write(b, false, InjectionPolicy::Ddio);
        s.on_nic_write(b, false, InjectionPolicy::Ddio);
        s.on_sweep(b, false);
        assert!(s.report().passed());
    }

    #[test]
    fn writeback_after_sweep_is_flagged_until_rewritten() {
        let mut s = state();
        let b = BlockAddr(9);
        s.on_cpu_write(b);
        s.on_sweep(b, false);
        s.on_writeback(b);
        assert_eq!(s.report().count(ViolationKind::WritebackOfSweptBlock), 1);
        // A fresh store legitimizes the next writeback.
        s.on_cpu_write(b);
        s.on_writeback(b);
        assert_eq!(s.report().count(ViolationKind::WritebackOfSweptBlock), 1);
    }

    #[test]
    fn stale_dram_fill_is_flagged() {
        let mut s = state();
        let b = BlockAddr(11);
        s.on_cpu_write(b);
        s.on_dram_fill(b);
        assert_eq!(s.report().count(ViolationKind::StaleDramFill), 1);
        // After a writeback the fill is clean.
        s.on_writeback(b);
        s.on_dram_fill(b);
        assert_eq!(s.report().count(ViolationKind::StaleDramFill), 1);
    }

    #[test]
    fn swept_state_tracks_refills() {
        let mut s = state();
        let b = BlockAddr(5);
        s.on_cpu_write(b);
        s.on_sweep(b, false);
        assert!(s.is_swept(b));
        s.on_dram_fill(b);
        assert!(!s.is_swept(b));
    }

    #[test]
    fn dram_frontier_regression_is_flagged() {
        let mut s = state();
        s.check_dram_frontier(vec![10, 20, 30]);
        s.check_dram_frontier(vec![10, 25, 30]);
        assert!(s.report().passed());
        s.check_dram_frontier(vec![11, 24, 30]);
        assert_eq!(s.report().count(ViolationKind::DramTimingRegression), 1);
    }

    #[test]
    fn details_are_capped_but_counts_exact() {
        let mut s = CheckState::new(CheckConfig {
            walk_every_requests: 0,
            max_details: 2,
        });
        for i in 0..10 {
            s.note_violation(ViolationKind::OccupancyDrift, || format!("drift {i}"));
        }
        let r = s.report();
        assert_eq!(r.count(ViolationKind::OccupancyDrift), 10);
        assert_eq!(r.details.len(), 2);
    }

    #[test]
    fn report_record_shape() {
        let mut s = state();
        s.note_walk();
        s.on_cpu_write(BlockAddr(1));
        let rec = s.report().to_record();
        assert_eq!(
            rec.get("passed"),
            Some(&crate::telemetry::Value::Bool(true))
        );
        assert_eq!(rec.get("walks"), Some(&crate::telemetry::Value::U64(1)));
        // Passing reports carry an empty violations record.
        match rec.get("violations") {
            Some(crate::telemetry::Value::Record(v)) => assert_eq!(v.len(), 0),
            other => panic!("violations: {other:?}"),
        }
    }

    #[test]
    fn every_kind_has_a_unique_name() {
        let names: std::collections::HashSet<_> =
            ViolationKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ViolationKind::ALL.len());
    }
}
