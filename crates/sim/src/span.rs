//! Request-level causal spans, cycle-attribution profiles, and outlier
//! snapshots.
//!
//! A *span* is one stage of one request's life — NIC DMA, ring wait, LLC
//! fill, CPU reads, application service, sweep, transmit, DRAM queuing —
//! tagged with the request's trace id (its [`PacketId`] value) so the
//! stages of a single request can be correlated across the NIC, the memory
//! system, and the server engine. Spans are recorded into a bounded,
//! allocation-free [`SpanRing`] with the same discipline as
//! [`trace`](crate::trace): opt-in per memory system, a single branch on
//! the hot path when disabled.
//!
//! Three consumers build on the ring:
//!
//! * [`perfetto_events`] renders retained spans as Chrome-trace-event
//!   JSON values (`ph: "X"` complete events) that `ui.perfetto.dev` opens
//!   directly;
//! * [`ProfileNode`] is the hierarchical cycle/DRAM-attribution tree the
//!   profiler reports through the `ReportSink` traversal;
//! * [`OutlierSnapshot`] captures the span window surrounding a
//!   tail-latency outlier for the flight recorder.
//!
//! The trace id of untagged events is [`NO_TRACE`]; exports omit it.

use crate::stats::ClassCounts;
use crate::telemetry::{Record, Value};
use crate::Cycle;

/// Trace id of events recorded outside any request context.
pub const NO_TRACE: u64 = u64::MAX;

/// The pipeline stage a span attributes its cycles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// NIC DMA of the arriving packet (arrival → delivered; includes
    /// memory backpressure stalls).
    NicDma,
    /// Delivered packet waiting in the RX ring for its core.
    RxRingWait,
    /// DDIO write-allocate of the packet into the LLC's DDIO ways.
    LlcFill,
    /// CPU demand reads of the request's data (RX buffer, application
    /// state).
    CpuRead,
    /// Application service work: compute and stores.
    AppService,
    /// `relinquish`/`clsweep` of a consumed buffer (§V-A, §V-D).
    Sweep,
    /// Transmit-path Work Queue execution.
    Tx,
    /// Time spent queued in a DRAM channel behind other transfers.
    DramQueue,
}

impl SpanKind {
    /// Every kind, in pipeline order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::NicDma,
        SpanKind::RxRingWait,
        SpanKind::LlcFill,
        SpanKind::CpuRead,
        SpanKind::AppService,
        SpanKind::Sweep,
        SpanKind::Tx,
        SpanKind::DramQueue,
    ];

    /// Stable label used by exports (Perfetto category, profile keys).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::NicDma => "nic_dma",
            SpanKind::RxRingWait => "rx_ring_wait",
            SpanKind::LlcFill => "llc_fill",
            SpanKind::CpuRead => "cpu_read",
            SpanKind::AppService => "app_service",
            SpanKind::Sweep => "sweep",
            SpanKind::Tx => "tx",
            SpanKind::DramQueue => "dram_queue",
        }
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace id of the owning request ([`NO_TRACE`] when untagged).
    pub trace: u64,
    /// Stage.
    pub kind: SpanKind,
    /// Core the stage ran on (`u16::MAX` for NIC/memory-side stages).
    pub core: u16,
    /// Start cycle.
    pub start: Cycle,
    /// End cycle (`start` for instantaneous events).
    pub end: Cycle,
}

impl SpanEvent {
    /// Span duration in cycles.
    pub fn duration(&self) -> Cycle {
        self.end.saturating_sub(self.start)
    }

    /// Structured export for the telemetry layer.
    pub fn to_record(&self) -> Record {
        let mut rec = Record::new();
        if self.trace != NO_TRACE {
            rec.push("trace", self.trace);
        }
        rec.push("kind", self.kind.label());
        rec.push("core", self.core as u64);
        rec.push("start", self.start);
        rec.push("end", self.end);
        rec
    }
}

/// Bounded ring of span events (same discipline as
/// [`Trace`](crate::trace::Trace)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRing {
    ring: Vec<SpanEvent>,
    head: usize,
    recorded: u64,
}

impl SpanRing {
    /// Creates a ring retaining the last `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring capacity must be positive");
        Self {
            ring: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
        }
    }

    /// Records one span.
    pub fn record(&mut self, event: SpanEvent) {
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.ring.len();
        }
        self.recorded += 1;
    }

    /// Total spans recorded (including those that fell out of the window).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no spans were retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retained spans, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Retained spans of one kind, oldest first.
    pub fn events_of(&self, kind: SpanKind) -> Vec<SpanEvent> {
        self.events().into_iter().filter(|e| e.kind == kind).collect()
    }

    /// Retained spans of one request, oldest first.
    pub fn events_of_trace(&self, trace: u64) -> Vec<SpanEvent> {
        self.events().into_iter().filter(|e| e.trace == trace).collect()
    }

    /// Discards all retained spans (the total count is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
    }
}

/// Live span-recording state inside a [`MemorySystem`]
/// (crate::hierarchy::MemorySystem): the ring plus the current request
/// context every recorded span is tagged with.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    ring: SpanRing,
    trace: u64,
}

impl SpanRecorder {
    /// A recorder retaining the last `capacity` spans, initially outside
    /// any request context.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: SpanRing::new(capacity),
            trace: NO_TRACE,
        }
    }

    /// Sets the trace id subsequent spans (and trace events) are tagged
    /// with.
    #[inline]
    pub fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }

    /// The current trace id.
    #[inline]
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Records one span under the current trace id.
    #[inline]
    pub fn record(&mut self, kind: SpanKind, core: u16, start: Cycle, end: Cycle) {
        self.ring.record(SpanEvent {
            trace: self.trace,
            kind,
            core,
            start,
            end,
        });
    }

    /// The underlying ring.
    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// Consumes the recorder, yielding its ring.
    pub fn into_ring(self) -> SpanRing {
        self.ring
    }

    /// Discards retained spans and resets the request context.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.trace = NO_TRACE;
    }
}

/// Microseconds per cycle, the unit Chrome trace events use for `ts`/`dur`.
fn cycles_to_us(cycles: Cycle) -> f64 {
    crate::engine::cycles_to_ns(cycles) / 1e3
}

/// Renders spans as Chrome-trace-event values (`ph: "X"` complete events,
/// timestamps in microseconds of simulated time), one per span. The
/// resulting array is the `traceEvents` section of a Perfetto-loadable
/// document; each span's stage is both the event name and its category, the
/// core its `tid`, and the trace id rides in `args` so Perfetto's query
/// engine can group a request's stages.
pub fn perfetto_events(events: &[SpanEvent]) -> Vec<Value> {
    events
        .iter()
        .map(|e| {
            let mut args = Record::new();
            if e.trace != NO_TRACE {
                args.push("trace_id", e.trace);
            }
            args.push("start_cycles", e.start);
            args.push("cycles", e.duration());
            Value::from(
                Record::new()
                    .with("name", e.kind.label())
                    .with("cat", e.kind.label())
                    .with("ph", "X")
                    .with("ts", cycles_to_us(e.start))
                    .with("dur", cycles_to_us(e.duration()))
                    .with("pid", 1u64)
                    .with("tid", e.core as u64)
                    .with("args", args),
            )
        })
        .collect()
}

/// One node of the hierarchical cycle-attribution profile.
///
/// `cycles` and `count` are this node's own totals; `classes` attributes
/// the DRAM transfers observed while the stage ran, per
/// [`TrafficClass`](crate::stats::TrafficClass). Children refine a stage
/// into sub-stages; a well-formed profile keeps the invariant that a
/// parent's cycles equal the sum of its children's (enforced by the
/// profiler's construction, checked by tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Stage label (stable machine key).
    pub label: String,
    /// Simulated cycles attributed to this stage.
    pub cycles: u64,
    /// Times the stage executed.
    pub count: u64,
    /// DRAM transfers attributed to the stage, per traffic class.
    pub classes: ClassCounts,
    /// Sub-stages.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// An empty node.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            ..Self::default()
        }
    }

    /// DRAM transfers attributed directly to this stage.
    pub fn dram_accesses(&self) -> u64 {
        self.classes.total()
    }

    /// Sum of the children's cycles.
    pub fn child_cycles(&self) -> u64 {
        self.children.iter().map(|c| c.cycles).sum()
    }

    /// The child named `label`, created on first use.
    pub fn child_mut(&mut self, label: &str) -> &mut ProfileNode {
        if let Some(i) = self.children.iter().position(|c| c.label == label) {
            return &mut self.children[i];
        }
        self.children.push(ProfileNode::new(label));
        self.children.last_mut().expect("just pushed")
    }

    /// Structured export for the telemetry layer, recursing into children.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("label", self.label.as_str())
            .with("cycles", self.cycles)
            .with("count", self.count)
            .with("dram_accesses", self.dram_accesses())
            .with("classes", self.classes.to_record())
            .with(
                "children",
                self.children
                    .iter()
                    .map(|c| Value::from(c.to_record()))
                    .collect::<Vec<_>>(),
            )
    }
}

/// The span window captured around one tail-latency outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierSnapshot {
    /// Snapshot ordinal within the run (0-based).
    pub seq: u64,
    /// Trace id of the outlier request.
    pub trace: u64,
    /// Core that served the request.
    pub core: u16,
    /// Completion cycle.
    pub at: Cycle,
    /// The request's end-to-end latency, cycles.
    pub latency: Cycle,
    /// The online percentile threshold the latency exceeded, cycles.
    pub threshold: Cycle,
    /// The quantile the threshold estimates (e.g. 0.999).
    pub quantile: f64,
    /// Retained spans surrounding the completion (oldest first).
    pub window: Vec<SpanEvent>,
}

impl OutlierSnapshot {
    /// Structured export for the telemetry layer.
    pub fn to_record(&self) -> Record {
        Record::new()
            .with("seq", self.seq)
            .with("trace", self.trace)
            .with("core", self.core as u64)
            .with("at_cycles", self.at)
            .with("latency_cycles", self.latency)
            .with("threshold_cycles", self.threshold)
            .with("quantile", self.quantile)
            .with(
                "spans",
                self.window
                    .iter()
                    .map(|e| Value::from(e.to_record()))
                    .collect::<Vec<_>>(),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: Cycle) -> SpanEvent {
        SpanEvent {
            trace: 7,
            kind: SpanKind::CpuRead,
            core: 0,
            start,
            end: start + 10,
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in SpanKind::ALL {
            assert!(seen.insert(kind.label()), "duplicate label {kind}");
        }
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut r = SpanRing::new(4);
        for i in 0..10 {
            r.record(ev(i));
        }
        let events = r.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.start).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(r.recorded(), 10);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn filters_by_kind_and_trace() {
        let mut r = SpanRing::new(8);
        r.record(ev(1));
        r.record(SpanEvent {
            trace: 9,
            kind: SpanKind::Sweep,
            ..ev(2)
        });
        assert_eq!(r.events_of(SpanKind::Sweep).len(), 1);
        assert_eq!(r.events_of(SpanKind::CpuRead).len(), 1);
        assert_eq!(r.events_of_trace(7).len(), 1);
        assert_eq!(r.events_of_trace(9).len(), 1);
        assert_eq!(r.events_of_trace(0).len(), 0);
    }

    #[test]
    fn recorder_tags_the_current_trace() {
        let mut rec = SpanRecorder::new(4);
        rec.record(SpanKind::NicDma, 0, 0, 5);
        rec.set_trace(42);
        rec.record(SpanKind::Tx, 1, 5, 5);
        let events = rec.ring().events();
        assert_eq!(events[0].trace, NO_TRACE);
        assert_eq!(events[1].trace, 42);
        assert_eq!(events[1].duration(), 0);
    }

    #[test]
    fn perfetto_events_carry_chrome_fields() {
        // 3200 cycles = 1 µs at the 3.2 GHz clock.
        let events = vec![SpanEvent {
            trace: 3,
            kind: SpanKind::NicDma,
            core: 5,
            start: 3200,
            end: 6400,
        }];
        let out = perfetto_events(&events);
        assert_eq!(out.len(), 1);
        let Value::Record(rec) = &out[0] else {
            panic!("perfetto event must be a record");
        };
        assert_eq!(rec.get("name"), Some(&Value::Str("nic_dma".into())));
        assert_eq!(rec.get("ph"), Some(&Value::Str("X".into())));
        assert_eq!(rec.get("ts"), Some(&Value::F64(1.0)));
        assert_eq!(rec.get("dur"), Some(&Value::F64(1.0)));
        assert_eq!(rec.get("tid"), Some(&Value::U64(5)));
        let Some(Value::Record(args)) = rec.get("args") else {
            panic!("args missing");
        };
        assert_eq!(args.get("trace_id"), Some(&Value::U64(3)));
        assert_eq!(args.get("cycles"), Some(&Value::U64(3200)));
    }

    #[test]
    fn untagged_span_omits_trace_id() {
        let events = vec![SpanEvent {
            trace: NO_TRACE,
            kind: SpanKind::Sweep,
            core: u16::MAX,
            start: 0,
            end: 0,
        }];
        let Value::Record(rec) = &perfetto_events(&events)[0] else {
            panic!("record expected");
        };
        let Some(Value::Record(args)) = rec.get("args") else {
            panic!("args missing");
        };
        assert!(args.get("trace_id").is_none());
        assert!(events[0].to_record().get("trace").is_none());
    }

    #[test]
    fn profile_node_finds_or_creates_children() {
        let mut root = ProfileNode::new("request");
        root.child_mut("service").cycles += 10;
        root.child_mut("service").cycles += 5;
        root.child_mut("nic_dma").cycles += 3;
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].cycles, 15);
        assert_eq!(root.child_cycles(), 18);
    }

    #[test]
    fn profile_record_recurses() {
        let mut root = ProfileNode::new("request");
        root.cycles = 20;
        root.count = 2;
        root.child_mut("service").cycles = 20;
        let rec = root.to_record();
        assert_eq!(rec.get("cycles"), Some(&Value::U64(20)));
        let Some(Value::Array(children)) = rec.get("children") else {
            panic!("children missing");
        };
        assert_eq!(children.len(), 1);
    }

    #[test]
    fn outlier_snapshot_exports_window() {
        let snap = OutlierSnapshot {
            seq: 0,
            trace: 11,
            core: 2,
            at: 500,
            latency: 400,
            threshold: 300,
            quantile: 0.999,
            window: vec![ev(100)],
        };
        let rec = snap.to_record();
        assert_eq!(rec.get("latency_cycles"), Some(&Value::U64(400)));
        let Some(Value::Array(spans)) = rec.get("spans") else {
            panic!("spans missing");
        };
        assert_eq!(spans.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SpanRing::new(0);
    }
}
