//! Property-based tests over the substrate's core data structures:
//! set-associative cache invariants, coherence-directory bookkeeping,
//! histogram correctness against a naive model, address-map classification,
//! and DRAM timing monotonicity.

use proptest::collection::vec;
use proptest::prelude::*;

use sweeper_sim::addr::{blocks_of, Addr, AddressMap, BlockAddr, RegionKind};
use sweeper_sim::cache::{CacheGeometry, LineOrigin, SetAssocCache, WayMask};
use sweeper_sim::coherence::{Directory, ReferenceDirectory};
use sweeper_sim::dram::{Dram, DramConfig, DramOp};
use sweeper_sim::stats::Histogram;

fn small_cache() -> SetAssocCache {
    SetAssocCache::new(CacheGeometry {
        size_bytes: 32 * 64,
        ways: 4,
        latency: 4,
    })
}

/// Operations the cache model is exercised with.
#[derive(Debug, Clone)]
enum CacheOp {
    Insert(u64, bool),
    Lookup(u64),
    Invalidate(u64),
    MarkDirty(u64),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    let block = 0u64..64;
    prop_oneof![
        (block.clone(), any::<bool>()).prop_map(|(b, d)| CacheOp::Insert(b, d)),
        block.clone().prop_map(CacheOp::Lookup),
        block.clone().prop_map(CacheOp::Invalidate),
        block.prop_map(CacheOp::MarkDirty),
    ]
}

proptest! {
    /// Whatever sequence of operations runs, the cache never exceeds its
    /// capacity, and a block that was just inserted is immediately findable.
    #[test]
    fn cache_capacity_and_presence_invariants(ops in vec(cache_op(), 1..300)) {
        let mut cache = small_cache();
        let mut model = std::collections::HashSet::new();
        for op in ops {
            match op {
                CacheOp::Insert(b, d) => {
                    if let Some(ev) = cache.insert(BlockAddr(b), d, LineOrigin::Cpu, WayMask::ALL) {
                        model.remove(&ev.line.block.0);
                    }
                    model.insert(b);
                    prop_assert!(cache.peek(BlockAddr(b)).is_some());
                }
                CacheOp::Lookup(b) => {
                    prop_assert_eq!(cache.lookup(BlockAddr(b)).is_some(), model.contains(&b));
                }
                CacheOp::Invalidate(b) => {
                    let was = cache.invalidate(BlockAddr(b)).is_some();
                    prop_assert_eq!(was, model.remove(&b));
                }
                CacheOp::MarkDirty(b) => {
                    let found = cache.mark_dirty(BlockAddr(b));
                    prop_assert_eq!(found, model.contains(&b));
                    if found {
                        prop_assert!(cache.peek(BlockAddr(b)).unwrap().dirty);
                    }
                }
            }
            prop_assert!(cache.resident_lines() <= 32);
            prop_assert_eq!(cache.resident_lines() as usize, model.len());
            prop_assert_eq!(cache.iter_lines().count(), model.len());
        }
    }

    /// Way-masked insertion never evicts a line outside the mask's ways (we
    /// observe this indirectly: lines inserted under a disjoint mask are
    /// never displaced by masked insertions).
    #[test]
    fn masked_insertions_do_not_displace_other_partitions(
        protected in vec(0u64..512, 1..8),
        churn in vec(512u64..4096, 1..200),
    ) {
        let mut cache = small_cache();
        let low = WayMask::first(2);
        let high = WayMask::range(2, 4);
        let mut kept = std::collections::HashSet::new();
        for b in protected {
            if let Some(ev) = cache.insert(BlockAddr(b), true, LineOrigin::Cpu, high) {
                kept.remove(&ev.line.block.0);
            }
            kept.insert(b);
        }
        for b in churn {
            if kept.contains(&b) {
                continue;
            }
            cache.insert(BlockAddr(b), true, LineOrigin::Nic, low);
        }
        for b in kept {
            prop_assert!(
                cache.peek(BlockAddr(b)).is_some(),
                "block {b} in the protected partition was displaced"
            );
        }
    }

    /// The directory's sharer sets behave like a map of sets, and dirty
    /// ownership is always one of the sharers.
    #[test]
    fn directory_matches_reference_model(
        ops in vec((0u64..32, 0u16..8, 0u8..3), 1..300)
    ) {
        let mut dir = Directory::new();
        let mut model: std::collections::HashMap<u64, std::collections::BTreeSet<u16>> =
            std::collections::HashMap::new();
        for (block, core, op) in ops {
            let b = BlockAddr(block);
            match op {
                0 => {
                    dir.add_sharer(b, core);
                    model.entry(block).or_default().insert(core);
                }
                1 => {
                    dir.remove_sharer(b, core);
                    if let Some(s) = model.get_mut(&block) {
                        s.remove(&core);
                        if s.is_empty() {
                            model.remove(&block);
                        }
                    }
                }
                _ => {
                    dir.set_dirty_owner(b, core);
                    let s = model.entry(block).or_default();
                    s.clear();
                    s.insert(core);
                }
            }
            let expect: Vec<u16> = model.get(&block).map(|s| s.iter().copied().collect()).unwrap_or_default();
            prop_assert_eq!(dir.sharers(b).to_vec(), expect);
            if let Some(owner) = dir.dirty_owner(b) {
                prop_assert!(dir.sharers(b).contains(owner));
            }
        }
    }

    /// Differential test: the open-addressed [`Directory`] must behave exactly
    /// like the straightforward `HashMap`-backed [`ReferenceDirectory`] under
    /// arbitrary interleavings of every mutating operation, including bulk
    /// `drop_block` (which exercises backward-shift deletion chains).
    #[test]
    fn open_addressed_directory_matches_hashmap_reference(
        ops in vec((0u64..96, 0u16..12, 0u8..5), 1..400)
    ) {
        let mut dir = Directory::new();
        let mut reference = ReferenceDirectory::new();
        for (block, core, op) in ops {
            // Spread keys so several share a home slot under the Fibonacci
            // hash (stride collisions) while others land far apart.
            let b = BlockAddr(block << (block % 7));
            match op {
                0 => {
                    dir.add_sharer(b, core);
                    reference.add_sharer(b, core);
                }
                1 => {
                    dir.remove_sharer(b, core);
                    reference.remove_sharer(b, core);
                }
                2 => {
                    dir.set_dirty_owner(b, core);
                    reference.set_dirty_owner(b, core);
                }
                3 => {
                    dir.clear_dirty(b);
                    reference.clear_dirty(b);
                }
                _ => {
                    prop_assert_eq!(
                        dir.drop_block(b).to_vec(),
                        reference.drop_block(b).to_vec()
                    );
                }
            }
            prop_assert_eq!(dir.sharers(b).to_vec(), reference.sharers(b).to_vec());
            prop_assert_eq!(dir.dirty_owner(b), reference.dirty_owner(b));
            prop_assert_eq!(dir.any_sharer(b), reference.any_sharer(b));
            prop_assert_eq!(dir.tracked_blocks(), reference.tracked_blocks());
            for ex in 0..12 {
                prop_assert_eq!(
                    dir.others(b, ex).to_vec(),
                    reference.others(b, ex).to_vec()
                );
                prop_assert_eq!(dir.shared_elsewhere(b, ex), reference.shared_elsewhere(b, ex));
            }
        }
    }

    /// Histogram mean/percentiles agree with a naive sorted-vector model
    /// (within the geometric buckets' documented precision).
    #[test]
    fn histogram_agrees_with_naive_model(samples in vec(0u64..2_000_000, 1..400)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        let naive_mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / sorted.len() as f64;
        prop_assert!((h.mean() - naive_mean).abs() < 1e-6);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
            let naive = sorted[idx];
            let est = h.percentile(q);
            // Exact below 1024; ≤ ~3.2% under-estimate above (geometric buckets).
            prop_assert!(est <= naive, "estimate {est} above exact {naive}");
            prop_assert!(
                est as f64 >= naive as f64 * 0.96 - 1.0,
                "estimate {est} too far below exact {naive} at q={q}"
            );
        }
    }

    /// Address-map classification: every byte of an allocated region
    /// classifies as that region; bytes outside classify as Other.
    #[test]
    fn address_map_classification_is_total(sizes in vec(1u64..10_000, 1..20)) {
        let mut map = AddressMap::new();
        let mut regions = Vec::new();
        for (i, len) in sizes.iter().enumerate() {
            let kind = match i % 3 {
                0 => RegionKind::Rx { core: (i % 7) as u16 },
                1 => RegionKind::Tx { core: (i % 7) as u16 },
                _ => RegionKind::App,
            };
            regions.push((map.alloc(*len, kind), *len, kind));
        }
        for (base, len, kind) in regions {
            prop_assert_eq!(map.classify(base), kind);
            prop_assert_eq!(map.classify(base.offset(len - 1)), kind);
            for block in blocks_of(base, len) {
                prop_assert_eq!(map.classify_block(block), kind);
            }
        }
        prop_assert_eq!(map.classify(Addr(0)), RegionKind::Other);
    }

    /// DRAM: completion latency is always at least the burst length, reads
    /// from a monotone clock never complete out of proportion, and the
    /// latency histogram records every read.
    #[test]
    fn dram_timing_sanity(blocks in vec((0u64..100_000, any::<bool>()), 1..300)) {
        let mut dram = Dram::new(DramConfig::paper_default());
        let mut now = 0;
        let mut reads = 0u64;
        for (b, is_write) in blocks {
            let op = if is_write { DramOp::Write } else { DramOp::Read };
            let acc = dram.access(BlockAddr(b), now, op);
            prop_assert!(acc.latency >= dram.config().t_bl);
            prop_assert!(acc.channel < dram.config().channels);
            if !is_write {
                reads += 1;
            }
            now += 13; // monotone issue clock
        }
        prop_assert_eq!(dram.read_latency().count(), reads);
        let totals: u64 = dram.channel_counts().iter().map(|(r, w)| r + w).sum();
        prop_assert_eq!(totals, dram.read_latency().count()
            + dram.channel_counts().iter().map(|(_, w)| w).sum::<u64>());
    }

    /// `percentile(q)` is monotone non-decreasing in q — the flight
    /// recorder's online outlier threshold depends on this: raising the
    /// quantile must never lower the threshold.
    #[test]
    fn histogram_percentile_is_monotone_in_q(
        samples in vec(0u64..2_000_000, 1..400),
        raw_qs in vec(0u32..1_000_001, 2..32),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut qs: Vec<f64> = raw_qs.iter().map(|&r| r as f64 / 1e6).collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = h.percentile(qs[0]);
        for &q in &qs[1..] {
            let cur = h.percentile(q);
            prop_assert!(
                cur >= prev,
                "percentile({q}) = {cur} dropped below previous {prev}"
            );
            prev = cur;
        }
        // The extremes bracket everything.
        prop_assert!(h.percentile(0.0) <= h.percentile(1.0));
        prop_assert!(h.percentile(1.0) <= h.max());
    }

    /// The CDF is monotone in both coordinates, ends at fraction 1.0, and
    /// its total mass equals the sample count.
    #[test]
    fn histogram_cdf_is_monotone_and_complete(samples in vec(0u64..2_000_000, 1..400)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let cdf = h.cdf();
        prop_assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            prop_assert!(w[1].0 > w[0].0, "cdf values not strictly increasing");
            prop_assert!(w[1].1 >= w[0].1, "cdf fractions not monotone");
        }
        let last = cdf.last().unwrap();
        prop_assert!((last.1 - 1.0).abs() < 1e-12, "cdf must end at 1.0");
    }

    /// blocks_of covers exactly the bytes of the range: union of block byte
    /// ranges ⊇ [addr, addr+len) and every block intersects the range.
    #[test]
    fn blocks_of_covers_range(start in 0u64..100_000, len in 0u64..5_000) {
        let blocks: Vec<BlockAddr> = blocks_of(Addr(start), len).collect();
        if len == 0 {
            prop_assert!(blocks.is_empty());
        } else {
            let first = blocks.first().unwrap();
            let last = blocks.last().unwrap();
            prop_assert!(first.base().0 <= start);
            prop_assert!(last.base().0 + 64 >= start + len);
            // Contiguous, no duplicates.
            for w in blocks.windows(2) {
                prop_assert_eq!(w[1].0, w[0].0 + 1);
            }
            // Every block intersects the byte range.
            for b in &blocks {
                let lo = b.base().0;
                prop_assert!(lo < start + len && lo + 64 > start);
            }
        }
    }
}

/// Deterministic edge cases the flight recorder's online threshold relies on.
mod histogram_edges {
    use sweeper_sim::stats::Histogram;

    #[test]
    fn empty_histogram_percentile_is_zero_and_cdf_empty() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 0, "empty histogram at q={q}");
        }
        assert!(h.cdf().is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_bucket_dominates_every_quantile() {
        let mut h = Histogram::new();
        for _ in 0..17 {
            h.record(42);
        }
        for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 42, "single-value histogram at q={q}");
        }
        assert_eq!(h.cdf(), vec![(42, 1.0)]);
    }

    #[test]
    fn single_geometric_bucket_reports_its_lower_bound() {
        let mut h = Histogram::new();
        // Value above LINEAR_MAX lands in a geometric bucket; the estimate
        // is the bucket's lower bound, never above the recorded value.
        h.record(100_000);
        let est = h.percentile(0.5);
        assert!(est <= 100_000);
        assert!(est as f64 >= 100_000.0 * 0.96);
        assert_eq!(h.percentile(1.0), est);
    }

    #[test]
    fn q_zero_returns_minimum_and_q_one_returns_maximum_bucket() {
        let mut h = Histogram::new();
        for v in [3, 7, 500, 900] {
            h.record(v);
        }
        // q=0 clamps to the first sample; q=1 walks to the last. All values
        // are below LINEAR_MAX so both are exact.
        assert_eq!(h.percentile(0.0), 3);
        assert_eq!(h.percentile(1.0), 900);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_out_of_range_quantiles() {
        Histogram::new().percentile(1.5);
    }
}
