//! Property-based drivers through a checked [`MemorySystem`]: the
//! correctness harness must stay silent for disciplined RX lifecycles, and
//! the hierarchy's structural invariants must hold under arbitrary access
//! soup — only the lifecycle-discipline oracles may fire there.

use proptest::collection::vec;
use proptest::prelude::*;

use sweeper_sim::addr::{Addr, RegionKind};
use sweeper_sim::check::{CheckConfig, ViolationKind};
use sweeper_sim::hierarchy::{MachineConfig, MemorySystem};
use sweeper_sim::Cycle;

const BLOCK: u64 = 64;
const SLOTS: u64 = 16;
const APP_BLOCKS: u64 = 32;

/// A checked memory system with an RX region of [`SLOTS`] one-block slots
/// and an app region of [`APP_BLOCKS`] blocks. Returns `(mem, rx, app)`.
fn checked_system() -> (MemorySystem, Addr, Addr) {
    let mut mem = MemorySystem::new(MachineConfig::tiny_for_tests());
    mem.enable_check(CheckConfig {
        walk_every_requests: 1,
        max_details: 16,
    });
    let rx = mem
        .address_map_mut()
        .alloc(SLOTS * BLOCK, RegionKind::Rx { core: 0 });
    let app = mem.address_map_mut().alloc(APP_BLOCKS * BLOCK, RegionKind::App);
    (mem, rx, app)
}

/// Per-slot position in the disciplined RX lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Free,
    Delivered,
    Consumed,
}

proptest! {
    /// Disciplined lifecycle: every slot strictly cycles
    /// deliver → consume → sweep. However the per-slot steps interleave
    /// (and whatever app traffic runs alongside), the harness must report a
    /// clean pass — zero violations of any kind.
    #[test]
    fn disciplined_rx_lifecycle_is_clean(
        steps in vec((0u64..SLOTS, 0u8..4, 0u64..APP_BLOCKS, any::<bool>()), 1..400),
    ) {
        let (mut mem, rx, app) = checked_system();
        let mut slots = [Slot::Free; SLOTS as usize];
        let mut now: Cycle = 0;
        for (slot, op, app_block, app_write) in steps {
            now += 50;
            let addr = rx.offset(slot * BLOCK);
            let state = &mut slots[slot as usize];
            match op {
                // Advance the slot's lifecycle by one legal step.
                0..=2 => match *state {
                    Slot::Free => {
                        mem.nic_write(addr, BLOCK, now);
                        *state = Slot::Delivered;
                    }
                    Slot::Delivered => {
                        mem.cpu_read(0, addr, BLOCK, now);
                        mem.mark_consumed(addr, BLOCK);
                        *state = Slot::Consumed;
                    }
                    Slot::Consumed => {
                        mem.sweep_range(addr, BLOCK, now);
                        *state = Slot::Free;
                    }
                },
                // Unrelated app traffic sharing the hierarchy.
                _ => {
                    let a = app.offset(app_block * BLOCK);
                    if app_write {
                        mem.cpu_write(1, a, BLOCK, now);
                    } else {
                        mem.cpu_read(1, a, BLOCK, now);
                    }
                }
            }
            mem.check_walk();
        }
        mem.check_walk();
        let report = mem.check_report().expect("check enabled");
        prop_assert!(
            report.passed(),
            "disciplined lifecycle flagged: {:?}",
            report.violations
        );
        prop_assert!(report.events > 0);
        prop_assert!(report.walks > 0);
    }

    /// Random soup: arbitrary interleavings of NIC writes, CPU accesses,
    /// sweeps, flushes, and DMA zeroing. The lifecycle oracles
    /// (`swept_live_rx`, `nic_overwrote_live_rx`) may legitimately fire —
    /// the driver takes no care to consume before sweeping — but the
    /// *structural* invariants (directory vs residency, inclusion,
    /// single-writer, DDIO confinement, occupancy recount, swept-block
    /// semantics, DRAM timing) must hold regardless of driver discipline.
    #[test]
    fn structural_invariants_hold_under_access_soup(
        ops in vec((0u8..7, 0u64..SLOTS, 0u64..APP_BLOCKS), 1..400),
    ) {
        let (mut mem, rx, app) = checked_system();
        let mut now: Cycle = 0;
        for (op, slot, app_block) in ops {
            now += 50;
            let r = rx.offset(slot * BLOCK);
            let a = app.offset(app_block * BLOCK);
            match op {
                0 => {
                    mem.nic_write(r, BLOCK, now);
                }
                1 => {
                    mem.cpu_read((slot % 2) as u16, r, BLOCK, now);
                }
                2 => {
                    mem.cpu_write((slot % 2) as u16, a, BLOCK, now);
                }
                3 => {
                    mem.cpu_read((app_block % 2) as u16, a, BLOCK, now);
                }
                4 => {
                    mem.sweep_range(r, BLOCK, now);
                }
                5 => {
                    mem.flush_range(a, BLOCK, now);
                }
                _ => {
                    mem.dma_zero_range(r, BLOCK, now);
                }
            }
            mem.check_walk();
        }
        mem.check_walk();
        let report = mem.check_report().expect("check enabled");
        let structural = [
            ViolationKind::WritebackOfSweptBlock,
            ViolationKind::StaleDramFill,
            ViolationKind::SweptBlockResident,
            ViolationKind::DirectoryResidencyMismatch,
            ViolationKind::DirtyOwnershipMismatch,
            ViolationKind::InclusionViolation,
            ViolationKind::MultipleDirtyCopies,
            ViolationKind::DdioWayEscape,
            ViolationKind::OccupancyDrift,
            ViolationKind::RingInconsistency,
            ViolationKind::DramTimingRegression,
        ];
        for kind in structural {
            prop_assert_eq!(
                report.count(kind),
                0,
                "structural invariant {} violated by undisciplined traffic",
                kind
            );
        }
    }
}
