//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use, measuring with
//! `std::time::Instant` and printing one line per benchmark:
//!
//! ```text
//! cache/llc_lookup_hit      time:  41.2 ns/iter   24.3 Melem/s
//! ```
//!
//! Differences from upstream: no statistical analysis, no plots, no
//! baseline comparison — a median over a few fixed samples. `--test` (what
//! cargo passes under `cargo test`) runs each benchmark once as a smoke
//! check. `CRITERION_SAMPLE_MS` overrides the per-sample time budget.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration declaration used to derive a rate from the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Uses the parameter's `Display` form as the benchmark name.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        Self(p.to_string())
    }

    /// A `name/parameter` id.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    /// Measured duration of the iteration loop (filled by [`Bencher::iter`]).
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    fn from_args() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 5,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms)
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the number of timing samples (upstream-compatible knob; the
    /// shim clamps it to a handful since it reports a median, not a curve).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.clamp(2, 10);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, &mut f);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0.clone(), &mut |b: &mut Bencher| f(b, input));
    }

    fn run(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        if self.test_mode {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 1 };
            f(&mut b);
            println!("{full}: ok (smoke, 1 iter)");
            return;
        }

        // Calibrate: grow the iteration count until one sample fills the
        // per-sample budget.
        let budget = sample_budget();
        let mut iters = 1u64;
        let mut b = Bencher { elapsed: Duration::ZERO, iters };
        loop {
            b.iters = iters;
            f(&mut b);
            if b.elapsed >= budget || iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (budget.as_secs_f64() / b.elapsed.as_secs_f64()).ceil().min(16.0) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                b.iters = iters;
                f(&mut b);
                b.elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {}elem/s", si(n as f64 / median)),
            Some(Throughput::Bytes(n)) => format!("  {}B/s", si(n as f64 / median)),
            None => String::new(),
        };
        println!("{full:<44} time: {:>10}/iter{rate}", fmt_time(median));
    }

    /// Ends the group (output is already printed; kept for API parity).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Declares a benchmark group runner (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::__from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Internal constructor used by `criterion_group!`.
    #[doc(hidden)]
    pub fn __from_args() -> Self {
        Self::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_reports_are_formatted() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-5).contains("µs"));
        assert!(fmt_time(5e-2).contains("ms"));
        assert!(si(2.5e6).contains('M'));
    }

    #[test]
    fn bencher_runs_the_closure() {
        let mut count = 0u64;
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 10 };
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }
}
