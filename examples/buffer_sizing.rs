//! Buffer provisioning under bursty load (§VI-F).
//!
//! Shallow rings keep network buffers LLC-resident but drop packets under
//! service-time spikes; deep rings absorb bursts but — without Sweeper —
//! leak consumed buffers and lose throughput. This example runs the spiky
//! KVS microbenchmark (random [1,100] µs processing delays) across ring
//! depths and prints the no-drop peak plus drop rates at a fixed load.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example buffer_sizing
//! ```

use sweeper::core::experiment::{Experiment, ExperimentConfig, PeakCriteria};
use sweeper::core::server::{RunOptions, SweeperMode};
use sweeper::workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};
use sweeper::workloads::spiky::{SpikeConfig, Spiky};

fn experiment(buffers: usize, sweeper: SweeperMode) -> Experiment {
    let cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .rx_buffers_per_core(buffers)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(RunOptions {
            warmup_requests: (buffers as u64 * 24 * 12) / 10,
            measure_requests: 20_000,
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    Experiment::new(cfg, || {
        Spiky::new(
            MicaKvs::new(KvsConfig::paper_default()),
            SpikeConfig::paper_default(),
        )
    })
}

fn main() {
    println!("Spiky KVS (1% of requests stall 1-100 µs), 2-way DDIO\n");
    println!("-- no-drop peak vs ring depth --");
    println!("{:>8}  {:>10}  {:>10}", "RX/core", "baseline", "+Sweeper");
    for buffers in [128usize, 512, 2048] {
        let base = experiment(buffers, SweeperMode::Disabled)
            .find_peak(PeakCriteria::no_drops())
            .throughput_mrps();
        let swept = experiment(buffers, SweeperMode::Enabled)
            .find_peak(PeakCriteria::no_drops())
            .throughput_mrps();
        println!("{buffers:>8}  {base:>7.1} M  {swept:>7.1} M");
    }

    println!("\n-- drop rate at 20 Mrps offered --");
    for (label, buffers, sweeper) in [
        ("128 buffers          ", 128usize, SweeperMode::Disabled),
        ("2048 buffers         ", 2048, SweeperMode::Disabled),
        ("2048 buffers + Sweep ", 2048, SweeperMode::Enabled),
    ] {
        let report = experiment(buffers, sweeper).run_at_rate(20.0e6);
        println!(
            "{label}: {:.3}% dropped, {:.1} Mrps goodput",
            report.drop_rate() * 100.0,
            report.throughput_mrps()
        );
    }

    println!(
        "\nShallow rings drop under spikes; deep rings without Sweeper leak.\n\
         Deep rings *with* Sweeper give burst resilience at full throughput —\n\
         no expert buffer sizing required."
    );
}
