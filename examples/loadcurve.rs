//! Load–latency "hockey-stick" curves: baseline DDIO vs Sweeper.
//!
//! Sweeps the offered load geometrically and prints throughput, p99
//! latency, memory bandwidth, and leak counts at every point — the full
//! curve behind the paper's single peak-throughput numbers, with the knee
//! detector marking where queueing starts for each configuration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example loadcurve
//! ```

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::loadsweep::{LoadSweep, RateGrid};
use sweeper::core::server::{RunOptions, SweeperMode};
use sweeper::workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

fn sweep(sweeper: SweeperMode) -> LoadSweep {
    let cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .rx_buffers_per_core(1024)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(RunOptions {
            warmup_requests: 30_000,
            measure_requests: 15_000,
            max_cycles: 240_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    let exp = Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default()));
    LoadSweep::run(&exp, &RateGrid::geometric(4.0e6, 80.0e6, 9), true)
}

fn print_sweep(label: &str, sweep: &LoadSweep) {
    println!("-- {label} --");
    println!(
        "{:>9}  {:>8}  {:>10}  {:>8}  {:>10}",
        "offered", "achieved", "p99 (cyc)", "GB/s", "leaks/req"
    );
    for p in sweep.points() {
        println!(
            "{:>6.1} M   {:>6.2} M  {:>10}  {:>8.1}  {:>10.2}",
            p.offered_rate / 1e6,
            p.throughput_mrps,
            p.latency_p99,
            p.memory_gbps,
            p.rx_leaks_per_request
        );
    }
    match sweep.knee() {
        Some(knee) => println!("knee (p99 doubled): ~{:.1} Mrps\n", knee.offered_rate / 1e6),
        None => println!("no knee within the sweep\n"),
    }
}

fn main() {
    println!("MICA KVS, 1KB items, 1024 RX buffers/core, 2-way DDIO\n");
    let base = sweep(SweeperMode::Disabled);
    print_sweep("baseline DDIO", &base);
    let swept = sweep(SweeperMode::Enabled);
    print_sweep("DDIO + Sweeper", &swept);
    println!(
        "Sweeper moves the knee to a much higher offered load: the memory\n\
         bandwidth freed from consumed-buffer writebacks delays queueing."
    );
}
