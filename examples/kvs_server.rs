//! KVS capacity planning: find each configuration's peak sustainable
//! throughput under the paper's SLO rule.
//!
//! Sweeps the buffer-provisioning axis (the tradeoff Sweeper breaks, §VI-A):
//! deeper rings are more resilient to bursts but, without Sweeper, leak more
//! consumed buffers and lose peak throughput. With Sweeper, peak throughput
//! becomes insensitive to provisioning — deploy deep buffers for free.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kvs_server
//! ```

use sweeper::core::experiment::{Experiment, ExperimentConfig, PeakCriteria};
use sweeper::core::server::{RunOptions, SweeperMode};
use sweeper::workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

fn peak_for(buffers: usize, sweeper: SweeperMode) -> f64 {
    let cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .rx_buffers_per_core(buffers)
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(RunOptions {
            warmup_requests: (buffers as u64 * 24 * 12) / 10,
            measure_requests: 20_000,
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    let exp = Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default()));
    exp.find_peak(PeakCriteria::default()).throughput_mrps()
}

fn main() {
    println!("Peak KVS throughput under the p99 ≤ 100×service SLO (2-way DDIO):\n");
    println!("{:>10}  {:>12}  {:>12}  {:>7}", "RX/core", "baseline", "+ Sweeper", "boost");
    for buffers in [512usize, 1024, 2048] {
        let base = peak_for(buffers, SweeperMode::Disabled);
        let swept = peak_for(buffers, SweeperMode::Enabled);
        println!(
            "{:>10}  {:>9.1} Mrps  {:>9.1} Mrps  {:>6.2}x",
            buffers,
            base,
            swept,
            swept / base
        );
    }
    println!(
        "\nDeep buffers cost the baseline its throughput; with Sweeper the\n\
         peak barely moves — the shallow-vs-deep provisioning tradeoff is gone."
    );
}
