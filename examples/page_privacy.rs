//! The `clsweep` page-recycling privacy concern and its mitigations (§V-B).
//!
//! Dropping dirty lines without writeback is safe for network buffers, but
//! the paper's shepherd pointed out a subtle OS interaction: if the kernel
//! zeroes a recycled page *through the caches* and hands it to a process
//! holding `clsweep` permission, that process can sweep the still-dirty
//! zeros and read the previous owner's data from DRAM.
//!
//! This example demonstrates the attack against an unprotected kernel and
//! verifies all three mitigations the paper proposes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example page_privacy
//! ```

use sweeper::core::os::{probe_page_recycling, Os, PageZeroMode, PAGE_BYTES};
use sweeper::core::sweep::relinquish;
use sweeper::sim::hierarchy::{MachineConfig, MemorySystem};

fn main() {
    println!("Page-recycling privacy probe (4 KB pages, Table I machine)\n");

    // --- The attack, against a kernel with no clsweep awareness ---
    let mut mem = MemorySystem::new(MachineConfig::paper_default());
    let mut os = Os::new(PageZeroMode::CachedStores);
    let victim = os.create_process(false);
    let page = os.allocate_page(victim, &mut mem, 0).expect("victim alive");
    mem.cpu_write(0, page, PAGE_BYTES, 10); // victim's secrets
    os.free_page(victim, page).expect("victim owns page");
    // Kernel recycles to a *non-registered* process: zeroing stays cached.
    let attacker = os.create_process(false);
    let got = os.allocate_page(attacker, &mut mem, 1_000).expect("alive");
    assert_eq!(got, page, "page recycled");
    let before = mem.stats().sweep_saved_writebacks;
    relinquish(&mut mem, page, PAGE_BYTES, 2_000); // illegitimate sweep
    let leaked = mem.stats().sweep_saved_writebacks - before;
    println!(
        "unprotected kernel : {} of {} zeroed blocks swept before reaching DRAM — BREACH",
        leaked,
        PAGE_BYTES / 64
    );
    assert!(leaked > 0, "the attack must work against an unprotected kernel");

    // --- The paper's mitigations ---
    for (name, mode) in [
        ("CLWB-for-clsweep-users", PageZeroMode::CachedStores),
        ("CLWB-always           ", PageZeroMode::CachedStoresWithClwb),
        ("DMA zeroing           ", PageZeroMode::DmaBypass),
    ] {
        let mut mem = MemorySystem::new(MachineConfig::paper_default());
        let probe = probe_page_recycling(&mut mem, mode);
        println!(
            "{name} : {} blocks leaked — {}",
            probe.leaked_blocks,
            if probe.breached() { "BREACH" } else { "safe" }
        );
        assert!(!probe.breached());
    }

    println!("\nAll three mitigations close the breach; the targeted variant");
    println!("(CLWB only for processes registered via the clsweep syscall)");
    println!("avoids the extra writebacks for everyone else.");
}
