//! Per-endpoint (VIA/RDMA) buffer provisioning — the §II-C bloat amplifier.
//!
//! RDMA-style stacks allocate dedicated receive rings per communicating
//! endpoint, not just per core. With even a modest ring depth, the
//! *aggregate* footprint scales with connection count and quickly exceeds
//! the LLC — the paper's "can be in the range of 100 MB" scenario. This
//! example fixes the per-ring depth (128 entries) and scales the endpoint
//! count per core, showing the baseline's leak rate grow with footprint
//! while Sweeper stays flat.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example endpoint_scaling
//! ```

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::server::{RunOptions, RunReport, SweeperMode};
use sweeper::sim::stats::TrafficClass;
use sweeper::workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

fn run(endpoints: usize, sweeper: SweeperMode) -> (RunReport, f64) {
    let cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .endpoints_per_core(endpoints)
        .rx_buffers_per_core(128) // modest per-connection ring
        .packet_bytes(1024 + HEADER_BYTES)
        .run_options(RunOptions {
            warmup_requests: (24 * endpoints as u64 * 128 * 12) / 10,
            measure_requests: 20_000,
            max_cycles: 240_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    let footprint_mb = cfg.rx_footprint_bytes() as f64 / (1024.0 * 1024.0);
    let report = Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default()))
        .run_at_rate(18.0e6);
    (report, footprint_mb)
}

fn main() {
    println!("KVS at 18 Mrps, 2-way DDIO, 128-entry rings per endpoint\n");
    println!(
        "{:>9}  {:>9}  {:>22}  {:>22}",
        "endpoints", "footprint", "baseline", "+ Sweeper"
    );
    println!(
        "{:>9}  {:>9}  {:>9} {:>12}  {:>9} {:>12}",
        "per core", "", "GB/s", "RxEvct/req", "GB/s", "RxEvct/req"
    );
    for endpoints in [1usize, 4, 8, 16, 32] {
        let (base, mb) = run(endpoints, SweeperMode::Disabled);
        let (swept, _) = run(endpoints, SweeperMode::Enabled);
        let leaks = |r: &RunReport| {
            r.class_counts()[TrafficClass::RxEvct] as f64 / r.completed.max(1) as f64
        };
        println!(
            "{endpoints:>9}  {mb:>6.0} MB  {:>9.1} {:>12.2}  {:>9.1} {:>12.2}",
            base.memory_bandwidth_gbps(),
            leaks(&base),
            swept.memory_bandwidth_gbps(),
            leaks(&swept),
        );
    }
    println!(
        "\nThe baseline's leak rate tracks the aggregate footprint (connection\n\
         count), even though each ring is only 128 entries deep. Sweeper is\n\
         footprint-insensitive: dead buffers never reach memory."
    );
}
