//! Quickstart: measure what Sweeper does to a loaded key-value store.
//!
//! Builds the paper's 24-core server (Table I), runs the MICA-style KVS
//! under 2-way DDIO at a fixed load with and without Sweeper, and prints
//! throughput, memory bandwidth, and the per-request memory-access
//! breakdown — a miniature of the paper's Figure 5.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::server::{RunOptions, SweeperMode};
use sweeper::sim::stats::TrafficClass;
use sweeper::workloads::kvs::{KvsConfig, MicaKvs, HEADER_BYTES};

fn main() {
    let rate = 20.0e6; // 20 M requests/s offered
    println!("MICA KVS, 1KB items, 1024 RX buffers/core, 2-way DDIO, {} Mrps offered\n", rate / 1e6);

    for sweeper in [SweeperMode::Disabled, SweeperMode::Enabled] {
        let cfg = ExperimentConfig::paper_default()
            .ddio_ways(2)
            .sweeper(sweeper)
            .rx_buffers_per_core(1024)
            .packet_bytes(1024 + HEADER_BYTES)
            .run_options(RunOptions {
                warmup_requests: 30_000,
                measure_requests: 30_000,
                max_cycles: 60_000_000_000,
                min_warmup_cycles: 0,
                min_measure_cycles: 0,
            });
        let exp = Experiment::new(cfg, || MicaKvs::new(KvsConfig::paper_default()));
        let report = exp.run_at_rate(rate);

        println!("== DDIO 2 ways{} ==", sweeper.suffix());
        println!("  throughput        : {:>7.2} Mrps", report.throughput_mrps());
        println!("  memory bandwidth  : {:>7.2} GB/s", report.memory_bandwidth_gbps());
        println!("  accesses/request  : {:>7.2}", report.total_accesses_per_request());
        println!("  p99 latency       : {:>7} cycles", report.request_latency.percentile(0.99));
        for (class, v) in report.accesses_per_request() {
            if v > 0.01 {
                println!("    {class:<14}: {v:.2}");
            }
        }
        if sweeper.is_enabled() {
            let saved = report.mem.sweep_saved_writebacks as f64 / report.completed as f64;
            println!("  writebacks saved  : {saved:.2} per request");
            // §VI-C identity: any residual RX evictions are premature, so
            // they are matched by CPU RX read misses.
            let counts = report.class_counts();
            assert!(
                counts[TrafficClass::RxEvct] <= counts[TrafficClass::CpuRxRd] + 64,
                "with Sweeper, residual RX evictions must be premature"
            );
        }
        println!();
    }
    println!("Sweeper eliminates the 'RX Evct' class: consumed network buffers");
    println!("are invalidated without writebacks, freeing memory bandwidth.");
}
