//! Multi-tenant collocation: a network function sharing the LLC with a
//! memory-intensive neighbour (§VI-E).
//!
//! 12 cores forward packets (L3fwd); 12 cores run X-Mem over private 2 MB
//! datasets. The LLC is partitioned CAT-style: DDIO gets ways `0..A`, X-Mem
//! ways `A..12`. The example prints both tenants' performance across
//! partitionings, with and without Sweeper — the Pareto frontier of
//! Figure 9a.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example collocation
//! ```

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::server::{RunOptions, RunReport, SweeperMode};
use sweeper::sim::cache::WayMask;
use sweeper::workloads::l3fwd::{L3Forwarder, L3fwdConfig};
use sweeper::workloads::xmem::{Xmem, XmemConfig};

const NET_CORES: u16 = 12;

fn run(ddio_ways: u32, sweeper: SweeperMode) -> RunReport {
    let cfg = ExperimentConfig::paper_default()
        .active_cores(NET_CORES)
        .ddio_ways(ddio_ways)
        .sweeper(sweeper)
        .rx_buffers_per_core(2048)
        .packet_bytes(1024)
        .run_options(RunOptions {
            warmup_requests: 30_000,
            measure_requests: 20_000,
            max_cycles: 240_000_000_000,
            min_warmup_cycles: 24_000_000,
            min_measure_cycles: 40_000_000,
        });
    let net_mask = WayMask::first(ddio_ways);
    let xmem_mask = WayMask::range(ddio_ways, 12);
    Experiment::new(cfg, || L3Forwarder::new(L3fwdConfig::l1_resident()))
        .with_background(|| Xmem::new(XmemConfig::paper_default()))
        .with_server_hook(move |server| {
            let mem = server.memory_mut();
            for core in 0..NET_CORES {
                mem.set_cpu_llc_mask(core, net_mask);
            }
            for core in NET_CORES..24 {
                mem.set_cpu_llc_mask(core, xmem_mask);
            }
        })
        .run_keep_queued(16)
}

fn main() {
    println!("12 x L3fwd + 12 x X-Mem, disjoint LLC partitions (A DDIO ways, 12-A X-Mem ways)\n");
    println!(
        "{:>7}  {:>16}  {:>22}",
        "(A,B)", "baseline", "+ Sweeper"
    );
    println!(
        "{:>7}  {:>7} {:>8}  {:>7} {:>8}",
        "", "l3fwd", "xmem", "l3fwd", "xmem"
    );
    for a in [2u32, 4, 6, 8, 10] {
        let base = run(a, SweeperMode::Disabled);
        let swept = run(a, SweeperMode::Enabled);
        println!(
            "({a:>2},{:>2})  {:>7.1} {:>8.2}  {:>7.1} {:>8.2}",
            12 - a,
            base.throughput_mrps(),
            base.background_mips(),
            swept.throughput_mrps(),
            swept.background_mips(),
        );
    }
    println!(
        "\n(l3fwd in Mrps, X-Mem in M iterations/s.) Sweeper's frontier sits\n\
         up and to the right of the baseline's: both tenants win at once."
    );
}
