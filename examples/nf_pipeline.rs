//! Zero-copy network function with NIC-driven sweeping (§V-D).
//!
//! An L3 forwarder that transmits packets *in place* (no RX→TX copy) cannot
//! call `relinquish` itself — the RX buffer stays live until the NIC has
//! read it on the transmit path. Sweeper's transmit extension moves the
//! sweep to the NIC: the Work Queue entry's `SweepBuffer` flag (Figure 4)
//! tells the NIC to inject the sweep after transmission completes.
//!
//! This example compares the zero-copy NF with and without NIC-driven
//! sweeping, and against the copy-out variant.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example nf_pipeline
//! ```

use sweeper::core::experiment::{Experiment, ExperimentConfig};
use sweeper::core::server::{RunOptions, RunReport, SweeperMode};
use sweeper::sim::stats::TrafficClass;
use sweeper::workloads::l3fwd::{L3Forwarder, L3fwdConfig};

fn run(zero_copy: bool, sweeper: SweeperMode) -> RunReport {
    let cfg = ExperimentConfig::paper_default()
        .ddio_ways(2)
        .sweeper(sweeper)
        .rx_buffers_per_core(2048)
        .packet_bytes(1024)
        .run_options(RunOptions {
            warmup_requests: 60_000,
            measure_requests: 30_000,
            max_cycles: 120_000_000_000,
            min_warmup_cycles: 0,
            min_measure_cycles: 0,
        });
    let l3_cfg = if zero_copy {
        L3fwdConfig::l2_resident().with_zero_copy()
    } else {
        L3fwdConfig::l2_resident()
    };
    Experiment::new(cfg, move || L3Forwarder::new(l3_cfg)).run_keep_queued(32)
}

fn print_report(label: &str, report: &RunReport) {
    let counts = report.class_counts();
    println!(
        "{label:<34} {:>7.1} Mrps  bw {:>6.1} GB/s  RxEvct/pkt {:>5.2}  TxEvct/pkt {:>5.2}",
        report.throughput_mrps(),
        report.memory_bandwidth_gbps(),
        counts[TrafficClass::RxEvct] as f64 / report.completed as f64,
        counts[TrafficClass::TxEvct] as f64 / report.completed as f64,
    );
}

fn main() {
    println!("L3 forwarder NF, 1KB packets, 2048 RX buffers/core, batching 32, 2-way DDIO\n");

    let copy_base = run(false, SweeperMode::Disabled);
    print_report("copy-out, baseline", &copy_base);

    let copy_sweep = run(false, SweeperMode::Enabled);
    print_report("copy-out, CPU relinquish", &copy_sweep);

    let zc_base = run(true, SweeperMode::Disabled);
    print_report("zero-copy, baseline", &zc_base);

    let zc_sweep = run(true, SweeperMode::Enabled);
    print_report("zero-copy, NIC-driven sweep (§V-D)", &zc_sweep);

    println!(
        "\nIn zero-copy mode the buffer dies only after the NIC's TX read, so\n\
         the sweep rides the Work Queue's SweepBuffer flag instead of a CPU\n\
         relinquish — and still eliminates the consumed-buffer writebacks."
    );
    assert!(
        zc_sweep.class_counts()[TrafficClass::RxEvct]
            <= zc_base.class_counts()[TrafficClass::RxEvct],
        "NIC-driven sweeping must not increase RX evictions"
    );
}
